//! `sync` — the virtual-synchrony flush protocol.
//!
//! Before a view change, all surviving members must agree on the set of
//! messages delivered in the closing view. The coordinator's `Block`
//! (from `gmp` above) triggers:
//!
//! 1. coordinator casts `Flush{suspects}` (and blocks itself);
//! 2. every member, on delivering `Flush`, surfaces `Block` to the
//!    application and, once `BlockOk` comes back down, casts
//!    `FlushOk{seen}` where `seen` is its per-origin delivered-cast vector;
//! 3. each member holds the coordinator's `NewView` announcement until it
//!    has collected the `FlushOk` rows of every *unsuspected* member
//!    *and* its own delivered vector has caught up to the element-wise
//!    maximum of those rows over the unsuspected columns (the reliable
//!    layers below repair remaining gaps — every `FlushOk` cast advances
//!    `mnak`'s per-origin frontier, exposing trailing losses);
//! 4. the coordinator additionally reports `FlushDone` upward so `gmp`
//!    can announce the view.
//!
//! Simplifications relative to Ensemble, by design: gaps in a *dead*
//! member's stream cannot be repaired (our `mnak` NAKs only the origin),
//! so suspected columns are excluded from the completion condition; and
//! this layer sits below `local`, so its own control casts are handled
//! locally rather than via loopback.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, GmpHdr, Msg, SyncHdr, UpEvent, ViewState};
use ensemble_util::{Rank, Time};

/// Flush progress within the current view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Normal operation.
    Idle,
    /// `Flush` delivered; waiting for the application's `BlockOk`.
    Blocking,
    /// `FlushOk` sent; collecting rows and catching up.
    Collecting,
    /// Flush complete (coordinator has reported `FlushDone`).
    Done,
}

/// The flush layer.
pub struct Sync {
    my_rank: Rank,
    phase: Phase,
    /// Per-origin data casts delivered at this level.
    seen: Vec<u64>,
    /// FlushOk rows collected (None until a member reports).
    rows: Vec<Option<Vec<u64>>>,
    /// Ranks excluded from the completion condition.
    suspects: Vec<usize>,
    /// A NewView announcement held until the flush condition is met.
    held_view: Option<UpEvent>,
    flush_cast_sent: bool,
}

impl Sync {
    /// Builds the layer.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        let n = vs.nmembers();
        Sync {
            my_rank: vs.rank,
            phase: Phase::Idle,
            seen: vec![0; n],
            rows: vec![None; n],
            suspects: Vec::new(),
            held_view: None,
            flush_cast_sent: false,
        }
    }

    /// The current flush phase name (observability).
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Idle => "idle",
            Phase::Blocking => "blocking",
            Phase::Collecting => "collecting",
            Phase::Done => "done",
        }
    }

    fn note_suspects(&mut self, ranks: &[usize]) {
        for r in ranks {
            if !self.suspects.contains(r) {
                self.suspects.push(*r);
            }
        }
    }

    fn counted(&self, idx: usize) -> bool {
        !self.suspects.contains(&idx)
    }

    /// Whether this process is the acting coordinator: the lowest
    /// unsuspected rank (the original coordinator may be the one that
    /// died — leadership follows `elect`'s rule).
    fn am_acting_coord(&self) -> bool {
        (0..self.seen.len()).find(|i| self.counted(*i)) == Some(self.my_rank.index())
    }

    fn all_rows_in(&self) -> bool {
        self.rows
            .iter()
            .enumerate()
            .all(|(i, r)| !self.counted(i) || r.is_some())
    }

    fn caught_up(&self) -> bool {
        if !self.all_rows_in() {
            return false;
        }
        let n = self.seen.len();
        (0..n).filter(|c| self.counted(*c)).all(|col| {
            let max = self
                .rows
                .iter()
                .enumerate()
                .filter(|(i, _)| self.counted(*i))
                .filter_map(|(_, r)| r.as_ref().map(|v| v.get(col).copied().unwrap_or(0)))
                .max()
                .unwrap_or(0);
            self.seen[col] >= max
        })
    }

    /// Re-evaluates completion after any delivery or row arrival.
    fn check_complete(&mut self, out: &mut Effects) {
        if self.phase != Phase::Collecting || !self.caught_up() {
            return;
        }
        self.phase = Phase::Done;
        if self.am_acting_coord() {
            out.up(UpEvent::FlushDone);
        }
        if let Some(view_ev) = self.held_view.take() {
            out.up(view_ev);
        }
    }

    /// Enters the blocking phase (both via a received `Flush` and, at the
    /// coordinator, directly when it initiates the flush).
    fn enter_blocking(&mut self, out: &mut Effects) {
        if self.phase == Phase::Idle {
            self.phase = Phase::Blocking;
            out.up(UpEvent::Block);
        }
    }

    fn begin_flush(&mut self, out: &mut Effects) {
        if self.flush_cast_sent {
            return;
        }
        self.flush_cast_sent = true;
        let mut flush = Msg::control();
        flush.push_frame(Frame::Sync(SyncHdr::Flush {
            suspects: self.suspects.iter().map(|s| *s as u64).collect(),
        }));
        out.dn(DnEvent::Cast(flush));
        // No loopback below this layer: handle our own flush directly.
        self.enter_blocking(out);
    }
}

impl Layer for Sync {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                match frame {
                    Frame::Sync(SyncHdr::Pass) => {
                        self.seen[origin.index()] += 1;
                        // A NewView from `gmp` above is held until the
                        // flush condition is met. Peeking at the next
                        // frame is the layer-coordination point Ensemble
                        // expresses through shared event fields.
                        let is_new_view =
                            matches!(msg.peek_frame(), Some(Frame::Gmp(GmpHdr::NewView { .. })));
                        if is_new_view && self.phase != Phase::Done {
                            self.held_view = Some(ev);
                            self.check_complete(out);
                        } else {
                            out.up(ev);
                            self.check_complete(out);
                        }
                    }
                    Frame::Sync(SyncHdr::Flush { suspects }) => {
                        let s: Vec<usize> = suspects.iter().map(|s| *s as usize).collect();
                        self.note_suspects(&s);
                        self.enter_blocking(out);
                    }
                    Frame::Sync(SyncHdr::FlushOk { seen }) => {
                        self.rows[origin.index()] = Some(seen);
                        self.check_complete(out);
                    }
                    other => panic!("sync: expected Sync frame, got {other:?}"),
                }
            }
            UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "sync pushes NoHdr on sends");
                out.up(ev);
            }
            UpEvent::Suspect(ranks) => {
                let s: Vec<usize> = ranks.iter().map(|r| r.index()).collect();
                self.note_suspects(&s);
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::Sync(SyncHdr::Pass));
                self.seen[self.my_rank.index()] += 1;
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Suspect { ranks } => {
                let s: Vec<usize> = ranks.iter().map(|r| r.index()).collect();
                self.note_suspects(&s);
                out.dn(ev);
            }
            DnEvent::Block => {
                // The coordinator's gmp starts the flush.
                self.begin_flush(out);
            }
            DnEvent::BlockOk => {
                if self.phase == Phase::Blocking {
                    self.phase = Phase::Collecting;
                    let mut ok = Msg::control();
                    ok.push_frame(Frame::Sync(SyncHdr::FlushOk {
                        seen: self.seen.clone(),
                    }));
                    out.dn(DnEvent::Cast(ok));
                    // Record our own row directly (no loopback below us).
                    self.rows[self.my_rank.index()] = Some(self.seen.clone());
                    self.check_complete(out);
                } else {
                    out.dn(ev);
                }
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{up_cast, Harness};
    use ensemble_event::Payload;

    fn h(rank: u16, n: usize) -> Harness<Sync> {
        Harness::new(Sync::new(
            &ViewState::initial(n).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    fn flush(suspects: Vec<u64>) -> Msg {
        let mut m = Msg::control();
        m.push_frame(Frame::Sync(SyncHdr::Flush { suspects }));
        m
    }

    fn flush_ok(seen: Vec<u64>) -> Msg {
        let mut m = Msg::control();
        m.push_frame(Frame::Sync(SyncHdr::FlushOk { seen }));
        m
    }

    fn data() -> Msg {
        let mut m = Msg::data(Payload::from_slice(b"d"));
        m.push_frame(Frame::Sync(SyncHdr::Pass));
        m
    }

    #[test]
    fn block_starts_flush_and_blocks_locally() {
        let mut h = h(0, 2);
        let out = h.dn(DnEvent::Block);
        assert!(out.dn.iter().any(|e| matches!(e, DnEvent::Cast(m)
            if matches!(m.peek_frame(), Some(Frame::Sync(SyncHdr::Flush { .. }))))));
        assert!(out.up.contains(&UpEvent::Block), "coordinator blocks too");
        assert_eq!(h.layer.phase_name(), "blocking");
        // Idempotent.
        h.dn(DnEvent::Block).assert_silent();
    }

    #[test]
    fn flush_blocks_application_and_records_suspects() {
        let mut h = h(1, 3);
        let out = h.up(up_cast(0, flush(vec![2])));
        assert_eq!(out.up, vec![UpEvent::Block]);
        assert_eq!(h.layer.phase_name(), "blocking");
        assert_eq!(h.layer.suspects, vec![2]);
    }

    #[test]
    fn block_ok_casts_flush_ok_and_records_own_row() {
        let mut h = h(1, 2);
        h.up(up_cast(0, flush(vec![])));
        let out = h.dn(DnEvent::BlockOk);
        assert!(out.dn.iter().any(|e| matches!(e, DnEvent::Cast(m)
            if matches!(m.peek_frame(), Some(Frame::Sync(SyncHdr::FlushOk { .. }))))));
        assert_eq!(h.layer.phase_name(), "collecting");
        assert!(h.layer.rows[1].is_some(), "own row recorded directly");
    }

    #[test]
    fn coordinator_reports_flush_done_when_rows_complete() {
        let mut h = h(0, 2);
        h.dn(DnEvent::Block);
        h.dn(DnEvent::BlockOk);
        // Peer's row arrives.
        let out = h.up(up_cast(1, flush_ok(vec![0, 0])));
        assert!(out.up.contains(&UpEvent::FlushDone));
        assert_eq!(h.layer.phase_name(), "done");
    }

    #[test]
    fn suspected_members_are_not_waited_for() {
        let mut h = h(0, 3);
        h.dn(DnEvent::Suspect {
            ranks: vec![Rank(2)],
        });
        h.dn(DnEvent::Block);
        h.dn(DnEvent::BlockOk);
        // Only rank 1's row is needed.
        let out = h.up(up_cast(1, flush_ok(vec![0, 0, 0])));
        assert!(out.up.contains(&UpEvent::FlushDone), "dead member skipped");
    }

    #[test]
    fn holds_completion_until_caught_up() {
        let mut h = h(0, 2);
        h.dn(DnEvent::Block);
        h.dn(DnEvent::BlockOk);
        // Peer claims it saw 2 casts from origin 1; we have seen none.
        let out = h.up(up_cast(1, flush_ok(vec![0, 2])));
        assert!(!out.up.contains(&UpEvent::FlushDone), "must catch up");
        // Repairs arrive (2 data casts from origin 1): completion fires.
        h.up(up_cast(1, data()));
        let out = h.up(up_cast(1, data()));
        assert!(out.up.contains(&UpEvent::FlushDone));
    }

    #[test]
    fn member_does_not_report_flush_done() {
        let mut h = h(1, 2);
        h.up(up_cast(0, flush(vec![])));
        h.dn(DnEvent::BlockOk);
        let out = h.up(up_cast(0, flush_ok(vec![0, 0])));
        assert!(!out.up.contains(&UpEvent::FlushDone));
        assert_eq!(h.layer.phase_name(), "done");
    }

    #[test]
    fn data_counted_and_passed() {
        let mut h = h(0, 2);
        let out = h.up(up_cast(1, data()));
        assert_eq!(out.up.len(), 1);
        assert_eq!(h.layer.seen, vec![0, 1]);
        h.dn(crate::harness::cast(b"mine"));
        assert_eq!(h.layer.seen, vec![1, 1]);
    }
}
