//! `sign` — per-message integrity MACs.
//!
//! Ensemble's library includes signing micro-protocols; this layer appends
//! a keyed FNV-1a MAC over the payload to down-going messages and verifies
//! (and strips) it on the way up, dropping forgeries.
//!
//! The MAC is a *stand-in* for a real HMAC: the goal is to exercise a
//! data-touching layer (cf. the Integrated Layer Processing discussion in
//! §5), not to provide cryptographic security.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, Msg, UpEvent, ViewState};
use ensemble_util::Time;

/// The signing layer.
pub struct Sign {
    key: u64,
    /// Messages dropped due to MAC mismatch.
    pub rejected: u64,
}

impl Sign {
    /// Builds a signing layer with the configured key.
    pub fn new(_vs: &ViewState, cfg: &LayerConfig) -> Self {
        Sign {
            key: cfg.sign_key,
            rejected: 0,
        }
    }

    fn mac(&self, msg: &Msg) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ self.key;
        for seg in msg.payload().segments() {
            for &b in seg {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        // Fold in the header depth so a frame-stripping attack is caught.
        h ^= msg.depth() as u64;
        h.wrapping_mul(0x0000_0100_0000_01B3)
    }
}

impl Layer for Sign {
    fn name(&self) -> &'static str {
        "sign"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { msg, .. } | UpEvent::Send { msg, .. } => {
                let frame = msg.pop_frame();
                let expect = self.mac(msg);
                match frame {
                    Frame::Sign { mac } if mac == expect => out.up(ev),
                    Frame::Sign { .. } => self.rejected += 1,
                    other => panic!("sign: expected Sign frame, got {other:?}"),
                }
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                let mac = self.mac(msg);
                msg.push_frame(Frame::Sign { mac });
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                let mac = self.mac(msg);
                msg.push_frame(Frame::Sign { mac });
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, Harness};
    use ensemble_event::Payload;

    fn h() -> Harness<Sign> {
        Harness::new(Sign::new(&ViewState::initial(2), &LayerConfig::default()))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut h = h();
        let ev = h.dn(cast(b"payload")).sole_dn();
        let msg = match ev {
            DnEvent::Cast(m) => m,
            other => panic!("{other:?}"),
        };
        assert!(matches!(msg.peek_frame(), Some(Frame::Sign { .. })));
        let up = h.up(up_cast(1, msg)).sole_up();
        assert_eq!(up.msg().unwrap().payload().gather(), b"payload");
        assert_eq!(h.layer.rejected, 0);
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut h = h();
        let ev = h.dn(cast(b"payload")).sole_dn();
        let mut msg = match ev {
            DnEvent::Cast(m) => m,
            other => panic!("{other:?}"),
        };
        msg.set_payload(Payload::from_slice(b"PAYLOAD"));
        h.up(up_cast(1, msg)).assert_silent();
        assert_eq!(h.layer.rejected, 1);
    }

    #[test]
    fn different_keys_disagree() {
        let cfg_a = LayerConfig::default();
        let cfg_b = LayerConfig {
            sign_key: 42,
            ..LayerConfig::default()
        };
        let vs = ViewState::initial(2);
        let mut ha = Harness::new(Sign::new(&vs, &cfg_a));
        let mut hb = Harness::new(Sign::new(&vs, &cfg_b));
        let ev = ha.dn(cast(b"m")).sole_dn();
        let msg = match ev {
            DnEvent::Cast(m) => m,
            other => panic!("{other:?}"),
        };
        hb.up(up_cast(1, msg)).assert_silent();
        assert_eq!(hb.layer.rejected, 1);
    }

    #[test]
    fn control_events_pass() {
        let mut h = h();
        h.up(UpEvent::Block).sole_up();
        h.dn(DnEvent::BlockOk).sole_dn();
    }
}
