//! `gmp` — group membership.
//!
//! The coordinator reacts to suspicion (filtered by `elect` so exactly one
//! process acts) by blocking the group, waiting for the flush protocol
//! below ([`crate::sync`]) to complete, and then announcing the successor
//! view with the suspected members removed. Every member installs the view
//! by emitting [`UpEvent::View`]; the runtime responds by building fresh
//! stacks for the new view (Ensemble likewise instantiates a new stack per
//! view).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, GmpHdr, Msg, UpEvent, ViewState};
use ensemble_util::{Endpoint, Rank, Time};

/// The membership layer.
pub struct Gmp {
    view: ViewState,
    suspects: Vec<Rank>,
    /// Endpoints to admit at the next view change (partition healing).
    pending_merge: Vec<Endpoint>,
    in_progress: bool,
}

impl Gmp {
    /// Builds the layer.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        Gmp {
            view: vs.clone(),
            suspects: Vec::new(),
            pending_merge: Vec::new(),
            in_progress: false,
        }
    }

    /// Whether a view change is under way.
    pub fn changing(&self) -> bool {
        self.in_progress
    }

    /// The successor view: current members minus suspects, plus any
    /// pending merge admissions, sorted so every installer agrees on
    /// ranks. Duplicate ids keep the highest incarnation — a rejoining
    /// member supersedes its dead predecessor.
    fn successor_view(&mut self) -> ViewState {
        if self.pending_merge.is_empty() {
            return self.view.next_view(&self.suspects);
        }
        let me = self.view.my_endpoint();
        let mut members: Vec<Endpoint> = self
            .view
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.suspects.iter().any(|r| r.index() == *i))
            .map(|(_, ep)| *ep)
            .collect();
        members.append(&mut self.pending_merge);
        members.sort();
        members.reverse();
        members.dedup_by_key(|ep| ep.id());
        members.reverse();
        let rank = members
            .iter()
            .position(|&ep| ep == me)
            .expect("gmp: merge coordinator vanished from its own merged view");
        ViewState {
            group: self.view.group,
            view_id: ensemble_util::ViewId {
                ltime: self.view.view_id.ltime + 1,
                coord: members[0],
            },
            members,
            rank: Rank(rank as u16),
        }
    }
}

impl Layer for Gmp {
    fn name(&self) -> &'static str {
        "gmp"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Suspect(ranks) => {
                // Reached us ⇒ `elect` decided we are the acting
                // coordinator.
                for r in ranks.iter() {
                    if !self.suspects.contains(r) {
                        self.suspects.push(*r);
                    }
                }
                out.up(UpEvent::Suspect(ranks.clone()));
                if !self.in_progress && !self.suspects.is_empty() {
                    self.in_progress = true;
                    // Inform the flush layer of the suspect set before
                    // starting it.
                    out.dn(DnEvent::Suspect {
                        ranks: self.suspects.clone(),
                    });
                    out.dn(DnEvent::Block);
                }
            }
            UpEvent::FlushDone => {
                // The flush is complete: announce the successor view and
                // install it locally (there is no loopback below us).
                let next = self.successor_view();
                let mut ann = Msg::control();
                ann.push_frame(Frame::Gmp(GmpHdr::NewView {
                    view_id_ltime: next.view_id.ltime,
                    coord: next.view_id.coord,
                    members: next.members.clone(),
                }));
                out.dn(DnEvent::Cast(ann));
                self.in_progress = false;
                out.up(UpEvent::View(next));
            }
            UpEvent::Cast { msg, .. } => {
                let frame = msg.pop_frame();
                match frame {
                    Frame::Gmp(GmpHdr::Pass) => out.up(ev),
                    Frame::Gmp(GmpHdr::NewView {
                        view_id_ltime,
                        coord,
                        members,
                    }) => {
                        let me = self.view.my_endpoint();
                        match members.iter().position(|&ep| ep == me) {
                            Some(idx) => {
                                let vs = ViewState {
                                    group: self.view.group,
                                    view_id: ensemble_util::ViewId {
                                        ltime: view_id_ltime,
                                        coord,
                                    },
                                    members: members.clone(),
                                    rank: Rank(idx as u16),
                                };
                                self.in_progress = false;
                                out.up(UpEvent::View(vs));
                            }
                            None => {
                                // We were excluded: the group goes on
                                // without us.
                                out.up(UpEvent::Exit);
                            }
                        }
                    }
                    other => panic!("gmp: expected Gmp frame, got {other:?}"),
                }
            }
            UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "gmp pushes NoHdr on sends");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                // Own announcements are framed in `up`; everything from
                // above is data.
                if !matches!(msg.peek_frame(), Some(Frame::Gmp(_))) {
                    msg.push_frame(Frame::Gmp(GmpHdr::Pass));
                }
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Suspect { .. } => out.dn(ev),
            DnEvent::Merge { members } => {
                // Reached us ⇒ the cluster driver (the acting merge
                // coordinator) decided to admit a healed component.
                for ep in members.drain(..) {
                    if !self.pending_merge.contains(&ep) {
                        self.pending_merge.push(ep);
                    }
                }
                if !self.in_progress && !self.pending_merge.is_empty() {
                    self.in_progress = true;
                    // No new suspects: the flush runs over the current
                    // view; the admissions join at announcement time.
                    out.dn(DnEvent::Block);
                }
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{up_cast, Harness};
    use ensemble_util::Endpoint;

    fn h(rank: u16, n: usize) -> Harness<Gmp> {
        Harness::new(Gmp::new(
            &ViewState::initial(n).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    #[test]
    fn suspicion_starts_block() {
        let mut h = h(0, 3);
        let out = h.up(UpEvent::Suspect(vec![Rank(2)]));
        assert!(out.dn.contains(&DnEvent::Block));
        assert!(out.dn.contains(&DnEvent::Suspect {
            ranks: vec![Rank(2)]
        }));
        assert!(h.layer.changing());
        // Further suspicion does not restart.
        let out = h.up(UpEvent::Suspect(vec![Rank(2)]));
        assert!(!out.dn.contains(&DnEvent::Block));
    }

    #[test]
    fn flush_done_announces_new_view() {
        let mut h = h(0, 3);
        h.up(UpEvent::Suspect(vec![Rank(2)]));
        let out = h.up(UpEvent::FlushDone);
        assert_eq!(out.dn.len(), 1);
        // The coordinator installs the view locally as well.
        assert!(out.up.iter().any(|e| matches!(e, UpEvent::View(v)
            if v.nmembers() == 2)));
        match &out.dn[0] {
            DnEvent::Cast(m) => match m.peek_frame() {
                Some(Frame::Gmp(GmpHdr::NewView {
                    members,
                    view_id_ltime,
                    ..
                })) => {
                    assert_eq!(*view_id_ltime, 1);
                    assert_eq!(members.len(), 2);
                    assert!(!members.contains(&Endpoint::new(2)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn member_installs_announced_view() {
        let mut h = h(1, 3);
        let mut ann = Msg::control();
        ann.push_frame(Frame::Gmp(GmpHdr::NewView {
            view_id_ltime: 1,
            coord: Endpoint::new(0),
            members: vec![Endpoint::new(0), Endpoint::new(1)],
        }));
        let ev = h.up(up_cast(0, ann)).sole_up();
        match ev {
            UpEvent::View(vs) => {
                assert_eq!(vs.nmembers(), 2);
                assert_eq!(vs.rank, Rank(1));
                assert_eq!(vs.view_id.ltime, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn excluded_member_exits() {
        let mut h = h(2, 3);
        let mut ann = Msg::control();
        ann.push_frame(Frame::Gmp(GmpHdr::NewView {
            view_id_ltime: 1,
            coord: Endpoint::new(0),
            members: vec![Endpoint::new(0), Endpoint::new(1)],
        }));
        let ev = h.up(up_cast(0, ann)).sole_up();
        assert_eq!(ev, UpEvent::Exit);
    }

    #[test]
    fn merge_starts_block_without_suspects() {
        let mut h = h(0, 3);
        let out = h.dn(DnEvent::Merge {
            members: vec![Endpoint::new(7)],
        });
        assert!(out.dn.contains(&DnEvent::Block));
        assert!(
            !out.dn.iter().any(|e| matches!(e, DnEvent::Suspect { .. })),
            "a pure merge suspects nobody"
        );
        assert!(h.layer.changing());
    }

    #[test]
    fn flush_done_after_merge_announces_grown_sorted_view() {
        let mut h = h(1, 3);
        h.dn(DnEvent::Merge {
            members: vec![Endpoint::new(7), Endpoint::new(5)],
        });
        let out = h.up(UpEvent::FlushDone);
        let vs = out
            .up
            .iter()
            .find_map(|e| match e {
                UpEvent::View(v) => Some(v.clone()),
                _ => None,
            })
            .expect("merged view installed locally");
        assert_eq!(
            vs.members,
            vec![
                Endpoint::new(0),
                Endpoint::new(1),
                Endpoint::new(2),
                Endpoint::new(5),
                Endpoint::new(7),
            ]
        );
        assert_eq!(vs.view_id.ltime, 1);
        assert_eq!(vs.view_id.coord, Endpoint::new(0));
        assert_eq!(vs.rank, Rank(1), "rank follows the sorted position");
    }

    #[test]
    fn merge_prefers_the_fresh_incarnation_of_an_id() {
        let mut h = h(0, 3);
        // ep2 rejoins with a bumped incarnation while still listed.
        h.dn(DnEvent::Merge {
            members: vec![Endpoint::new(2).reincarnate()],
        });
        let out = h.up(UpEvent::FlushDone);
        let vs = out
            .up
            .iter()
            .find_map(|e| match e {
                UpEvent::View(v) => Some(v.clone()),
                _ => None,
            })
            .expect("merged view installed locally");
        assert_eq!(vs.nmembers(), 3);
        assert!(vs.members.contains(&Endpoint::new(2).reincarnate()));
        assert!(!vs.members.contains(&Endpoint::new(2)));
    }

    #[test]
    fn merge_combined_with_suspicion_removes_and_admits() {
        let mut h = h(0, 3);
        h.up(UpEvent::Suspect(vec![Rank(2)]));
        h.dn(DnEvent::Merge {
            members: vec![Endpoint::new(9)],
        });
        let out = h.up(UpEvent::FlushDone);
        let vs = out
            .up
            .iter()
            .find_map(|e| match e {
                UpEvent::View(v) => Some(v.clone()),
                _ => None,
            })
            .expect("view installed");
        assert_eq!(
            vs.members,
            vec![Endpoint::new(0), Endpoint::new(1), Endpoint::new(9)]
        );
    }

    #[test]
    fn data_passes_with_pass_frame() {
        let mut h = h(0, 2);
        let ev = h.dn(crate::harness::cast(b"m")).sole_dn();
        assert_eq!(
            ev.msg().unwrap().peek_frame(),
            Some(&Frame::Gmp(GmpHdr::Pass))
        );
    }
}
