//! `gmp` — group membership.
//!
//! The coordinator reacts to suspicion (filtered by `elect` so exactly one
//! process acts) by blocking the group, waiting for the flush protocol
//! below ([`crate::sync`]) to complete, and then announcing the successor
//! view with the suspected members removed. Every member installs the view
//! by emitting [`UpEvent::View`]; the runtime responds by building fresh
//! stacks for the new view (Ensemble likewise instantiates a new stack per
//! view).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, GmpHdr, Msg, UpEvent, ViewState};
use ensemble_util::{Rank, Time};

/// The membership layer.
pub struct Gmp {
    view: ViewState,
    suspects: Vec<Rank>,
    in_progress: bool,
}

impl Gmp {
    /// Builds the layer.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        Gmp {
            view: vs.clone(),
            suspects: Vec::new(),
            in_progress: false,
        }
    }

    /// Whether a view change is under way.
    pub fn changing(&self) -> bool {
        self.in_progress
    }
}

impl Layer for Gmp {
    fn name(&self) -> &'static str {
        "gmp"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Suspect(ranks) => {
                // Reached us ⇒ `elect` decided we are the acting
                // coordinator.
                for r in ranks.iter() {
                    if !self.suspects.contains(r) {
                        self.suspects.push(*r);
                    }
                }
                out.up(UpEvent::Suspect(ranks.clone()));
                if !self.in_progress && !self.suspects.is_empty() {
                    self.in_progress = true;
                    // Inform the flush layer of the suspect set before
                    // starting it.
                    out.dn(DnEvent::Suspect {
                        ranks: self.suspects.clone(),
                    });
                    out.dn(DnEvent::Block);
                }
            }
            UpEvent::FlushDone => {
                // The flush is complete: announce the successor view and
                // install it locally (there is no loopback below us).
                let next = self.view.next_view(&self.suspects);
                let mut ann = Msg::control();
                ann.push_frame(Frame::Gmp(GmpHdr::NewView {
                    view_id_ltime: next.view_id.ltime,
                    coord: next.view_id.coord,
                    members: next.members.clone(),
                }));
                out.dn(DnEvent::Cast(ann));
                self.in_progress = false;
                out.up(UpEvent::View(next));
            }
            UpEvent::Cast { msg, .. } => {
                let frame = msg.pop_frame();
                match frame {
                    Frame::Gmp(GmpHdr::Pass) => out.up(ev),
                    Frame::Gmp(GmpHdr::NewView {
                        view_id_ltime,
                        coord,
                        members,
                    }) => {
                        let me = self.view.my_endpoint();
                        match members.iter().position(|&ep| ep == me) {
                            Some(idx) => {
                                let vs = ViewState {
                                    group: self.view.group,
                                    view_id: ensemble_util::ViewId {
                                        ltime: view_id_ltime,
                                        coord,
                                    },
                                    members: members.clone(),
                                    rank: Rank(idx as u16),
                                };
                                self.in_progress = false;
                                out.up(UpEvent::View(vs));
                            }
                            None => {
                                // We were excluded: the group goes on
                                // without us.
                                out.up(UpEvent::Exit);
                            }
                        }
                    }
                    other => panic!("gmp: expected Gmp frame, got {other:?}"),
                }
            }
            UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "gmp pushes NoHdr on sends");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                // Own announcements are framed in `up`; everything from
                // above is data.
                if !matches!(msg.peek_frame(), Some(Frame::Gmp(_))) {
                    msg.push_frame(Frame::Gmp(GmpHdr::Pass));
                }
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Suspect { .. } => out.dn(ev),
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{up_cast, Harness};
    use ensemble_util::Endpoint;

    fn h(rank: u16, n: usize) -> Harness<Gmp> {
        Harness::new(Gmp::new(
            &ViewState::initial(n).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    #[test]
    fn suspicion_starts_block() {
        let mut h = h(0, 3);
        let out = h.up(UpEvent::Suspect(vec![Rank(2)]));
        assert!(out.dn.contains(&DnEvent::Block));
        assert!(out.dn.contains(&DnEvent::Suspect {
            ranks: vec![Rank(2)]
        }));
        assert!(h.layer.changing());
        // Further suspicion does not restart.
        let out = h.up(UpEvent::Suspect(vec![Rank(2)]));
        assert!(!out.dn.contains(&DnEvent::Block));
    }

    #[test]
    fn flush_done_announces_new_view() {
        let mut h = h(0, 3);
        h.up(UpEvent::Suspect(vec![Rank(2)]));
        let out = h.up(UpEvent::FlushDone);
        assert_eq!(out.dn.len(), 1);
        // The coordinator installs the view locally as well.
        assert!(out.up.iter().any(|e| matches!(e, UpEvent::View(v)
            if v.nmembers() == 2)));
        match &out.dn[0] {
            DnEvent::Cast(m) => match m.peek_frame() {
                Some(Frame::Gmp(GmpHdr::NewView {
                    members,
                    view_id_ltime,
                    ..
                })) => {
                    assert_eq!(*view_id_ltime, 1);
                    assert_eq!(members.len(), 2);
                    assert!(!members.contains(&Endpoint::new(2)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn member_installs_announced_view() {
        let mut h = h(1, 3);
        let mut ann = Msg::control();
        ann.push_frame(Frame::Gmp(GmpHdr::NewView {
            view_id_ltime: 1,
            coord: Endpoint::new(0),
            members: vec![Endpoint::new(0), Endpoint::new(1)],
        }));
        let ev = h.up(up_cast(0, ann)).sole_up();
        match ev {
            UpEvent::View(vs) => {
                assert_eq!(vs.nmembers(), 2);
                assert_eq!(vs.rank, Rank(1));
                assert_eq!(vs.view_id.ltime, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn excluded_member_exits() {
        let mut h = h(2, 3);
        let mut ann = Msg::control();
        ann.push_frame(Frame::Gmp(GmpHdr::NewView {
            view_id_ltime: 1,
            coord: Endpoint::new(0),
            members: vec![Endpoint::new(0), Endpoint::new(1)],
        }));
        let ev = h.up(up_cast(0, ann)).sole_up();
        assert_eq!(ev, UpEvent::Exit);
    }

    #[test]
    fn data_passes_with_pass_frame() {
        let mut h = h(0, 2);
        let ev = h.dn(crate::harness::cast(b"m")).sole_dn();
        assert_eq!(
            ev.msg().unwrap().peek_frame(),
            Some(&Frame::Gmp(GmpHdr::Pass))
        );
    }
}
