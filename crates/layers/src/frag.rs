//! `frag` — fragmentation and reassembly.
//!
//! Splits messages larger than [`LayerConfig::frag_max`] into numbered
//! pieces, each carrying a copy of the upper layers' frames, and
//! reassembles them at the receiver. Small messages travel whole with a
//! constant `Whole` header — the common case the bypass specializes for
//! (the paper's CCPs assume "messages ... are not fragmented", §4.2).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, FragHdr, Frame, Msg, Payload, UpEvent, ViewState};
use ensemble_util::{Rank, Time};
use std::collections::HashMap;

/// Reassembly state for one in-progress logical message.
struct Partial {
    pieces: Vec<Option<Payload>>,
    received: u16,
    frames: Vec<Frame>,
}

/// The fragmentation layer.
pub struct Frag {
    max: usize,
    next_msg_id: u32,
    /// Keyed by (origin, is_cast, msg_id).
    partials: HashMap<(Rank, bool, u32), Partial>,
}

impl Frag {
    /// Builds a fragmentation layer.
    pub fn new(_vs: &ViewState, cfg: &LayerConfig) -> Self {
        Frag {
            max: cfg.frag_max,
            next_msg_id: 0,
            partials: HashMap::new(),
        }
    }

    /// Number of partially reassembled messages held.
    pub fn partial_count(&self) -> usize {
        self.partials.len()
    }

    fn fragment(&mut self, msg: Msg) -> Vec<Msg> {
        if msg.payload().len() <= self.max {
            let mut m = msg;
            m.push_frame(Frame::Frag(FragHdr::Whole));
            return vec![m];
        }
        let (frames, payload) = msg.into_parts();
        let pieces = payload.split_into(self.max);
        let total = pieces.len() as u16;
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        pieces
            .into_iter()
            .enumerate()
            .map(|(i, piece)| {
                let mut m = Msg::from_parts(frames.clone(), piece);
                m.push_frame(Frame::Frag(FragHdr::Piece {
                    msg_id,
                    idx: i as u16,
                    total,
                }));
                m
            })
            .collect()
    }

    /// Processes an arriving piece; returns the whole message when complete.
    fn reassemble(
        &mut self,
        origin: Rank,
        is_cast: bool,
        msg_id: u32,
        idx: u16,
        total: u16,
        msg: Msg,
    ) -> Option<Msg> {
        let key = (origin, is_cast, msg_id);
        let (frames, payload) = msg.into_parts();
        let entry = self.partials.entry(key).or_insert_with(|| Partial {
            pieces: vec![None; total as usize],
            received: 0,
            frames,
        });
        let slot = entry.pieces.get_mut(idx as usize)?;
        if slot.is_none() {
            *slot = Some(payload);
            entry.received += 1;
        }
        if entry.received as usize != entry.pieces.len() {
            return None;
        }
        let done = self.partials.remove(&key).expect("just inserted");
        let mut whole = Payload::empty();
        for p in done.pieces {
            whole = whole.appended(p.expect("all pieces received"));
        }
        Some(Msg::from_parts(done.frames, whole))
    }
}

impl Layer for Frag {
    fn name(&self) -> &'static str {
        "frag"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        let (origin, is_cast) = match &ev {
            UpEvent::Cast { origin, .. } => (*origin, true),
            UpEvent::Send { origin, .. } => (*origin, false),
            _ => {
                out.up(ev);
                return;
            }
        };
        let msg = ev.msg_mut().expect("cast/send carries a message");
        match msg.pop_frame() {
            Frame::Frag(FragHdr::Whole) => out.up(ev),
            Frame::Frag(FragHdr::Piece { msg_id, idx, total }) => {
                let piece = std::mem::take(msg);
                if let Some(whole) = self.reassemble(origin, is_cast, msg_id, idx, total, piece) {
                    if is_cast {
                        out.up(UpEvent::Cast { origin, msg: whole });
                    } else {
                        out.up(UpEvent::Send { origin, msg: whole });
                    }
                }
            }
            other => panic!("frag: expected Frag frame, got {other:?}"),
        }
    }

    fn dn(&mut self, _now: Time, ev: DnEvent, out: &mut Effects) {
        match ev {
            DnEvent::Cast(msg) => {
                for m in self.fragment(msg) {
                    out.dn(DnEvent::Cast(m));
                }
            }
            DnEvent::Send { dst, msg } => {
                for m in self.fragment(msg) {
                    out.dn(DnEvent::Send { dst, msg: m });
                }
            }
            other => out.dn(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, up_send, Harness};

    fn h(max: usize) -> Harness<Frag> {
        let cfg = LayerConfig {
            frag_max: max,
            ..LayerConfig::default()
        };
        Harness::new(Frag::new(&ViewState::initial(2), &cfg))
    }

    #[test]
    fn small_messages_travel_whole() {
        let mut h = h(100);
        let ev = h.dn(cast(b"small")).sole_dn();
        assert_eq!(
            ev.msg().unwrap().peek_frame(),
            Some(&Frame::Frag(FragHdr::Whole))
        );
    }

    #[test]
    fn large_messages_fragment_and_reassemble() {
        let mut h = h(10);
        let body: Vec<u8> = (0..35u8).collect();
        let out = h.dn(DnEvent::Cast(Msg::data(Payload::from_slice(&body))));
        assert_eq!(out.dn.len(), 4, "35 bytes / 10 = 4 pieces");
        // Feed the pieces back in as if from the network.
        let mut delivered = Vec::new();
        for ev in out.dn {
            let m = match ev {
                DnEvent::Cast(m) => m,
                other => panic!("{other:?}"),
            };
            let o = h.up(up_cast(1, m));
            delivered.extend(o.up);
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].msg().unwrap().payload().gather(), body);
        assert_eq!(h.layer.partial_count(), 0);
    }

    #[test]
    fn out_of_order_pieces_reassemble() {
        let mut h = h(4);
        let body = b"0123456789AB";
        let out = h.dn(DnEvent::Cast(Msg::data(Payload::from_slice(body))));
        let mut pieces: Vec<Msg> = out
            .dn
            .into_iter()
            .map(|e| match e {
                DnEvent::Cast(m) => m,
                other => panic!("{other:?}"),
            })
            .collect();
        pieces.reverse();
        let mut delivered = Vec::new();
        for m in pieces {
            delivered.extend(h.up(up_cast(1, m)).up);
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].msg().unwrap().payload().gather(), body);
    }

    #[test]
    fn duplicate_piece_ignored() {
        let mut h = h(4);
        let out = h.dn(DnEvent::Cast(Msg::data(Payload::from_slice(b"01234567"))));
        let pieces: Vec<Msg> = out
            .dn
            .into_iter()
            .map(|e| match e {
                DnEvent::Cast(m) => m,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(pieces.len(), 2);
        h.up(up_cast(1, pieces[0].clone())).assert_silent();
        h.up(up_cast(1, pieces[0].clone())).assert_silent();
        let done = h.up(up_cast(1, pieces[1].clone()));
        assert_eq!(done.up.len(), 1);
    }

    #[test]
    fn interleaved_senders_do_not_mix() {
        let mut h = h(4);
        let out_a = h.dn(DnEvent::Cast(Msg::data(Payload::from_slice(b"AAAABBBB"))));
        let pieces_a: Vec<Msg> = out_a
            .dn
            .into_iter()
            .map(|e| match e {
                DnEvent::Cast(m) => m,
                other => panic!("{other:?}"),
            })
            .collect();
        // Same msg_id arriving from two different origins must not merge.
        h.up(up_cast(1, pieces_a[0].clone()));
        h.up(up_cast(2, pieces_a[0].clone()));
        let d1 = h.up(up_cast(1, pieces_a[1].clone()));
        assert_eq!(d1.up.len(), 1);
        assert_eq!(h.layer.partial_count(), 1, "origin 2 still partial");
    }

    #[test]
    fn sends_fragment_too() {
        let mut h = h(4);
        let out = h.dn(DnEvent::Send {
            dst: Rank(1),
            msg: Msg::data(Payload::from_slice(b"0123456789")),
        });
        assert_eq!(out.dn.len(), 3);
        let mut delivered = Vec::new();
        for ev in out.dn {
            let m = match ev {
                DnEvent::Send { msg, .. } => msg,
                other => panic!("{other:?}"),
            };
            delivered.extend(h.up(up_send(1, m)).up);
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(
            delivered[0].msg().unwrap().payload().gather(),
            b"0123456789"
        );
    }

    #[test]
    fn upper_frames_survive_fragmentation() {
        let mut h = h(4);
        let mut m = Msg::data(Payload::from_slice(b"0123456789"));
        m.push_frame(Frame::NoHdr); // Pretend an upper layer framed it.
        let out = h.dn(DnEvent::Cast(m));
        let mut delivered = Vec::new();
        for ev in out.dn {
            let m = match ev {
                DnEvent::Cast(m) => m,
                other => panic!("{other:?}"),
            };
            delivered.extend(h.up(up_cast(1, m)).up);
        }
        assert_eq!(delivered[0].msg().unwrap().frames(), &[Frame::NoHdr]);
    }
}
