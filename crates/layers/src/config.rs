//! Per-stack protocol parameters.
//!
//! §1 of the paper notes that configuring a component system includes "the
//! parameterization of the individual components". All tunables live here
//! so a stack is fully described by (layer names, `LayerConfig`).

use ensemble_util::Duration;

/// Tunable parameters shared by all layers of one stack instance.
#[derive(Clone, Debug)]
pub struct LayerConfig {
    /// `pt2ptw`: initial per-destination send credits (messages).
    pub pt2pt_window: u64,
    /// `mflow`: multicast send window (messages outstanding beyond the
    /// slowest receiver's cumulative grant).
    pub mflow_window: u64,
    /// `frag`: maximum fragment payload size in bytes.
    pub frag_max: usize,
    /// `collect`: gossip the delivered-vector after this many casts.
    pub collect_every: u64,
    /// `pt2pt`: retransmission timeout.
    pub retrans_timeout: Duration,
    /// `mnak`: interval between NAK re-sends for outstanding gaps.
    pub nak_timeout: Duration,
    /// `suspect`: ping interval.
    pub suspect_interval: Duration,
    /// `suspect`: rounds without contact before a member is suspected.
    pub suspect_misses: u32,
    /// `stable`: gossip interval.
    pub stable_interval: Duration,
    /// `sign`: MAC key.
    pub sign_key: u64,
    /// `encrypt`: key identifier.
    pub encrypt_key: u32,
    /// `top`: automatically answer `Block` with `BlockOk` (most
    /// applications want this; interactive apps may take over).
    pub auto_block_ok: bool,
}

impl Default for LayerConfig {
    fn default() -> Self {
        LayerConfig {
            pt2pt_window: 64,
            mflow_window: 64,
            frag_max: 1400,
            collect_every: 16,
            retrans_timeout: Duration::from_millis(10),
            nak_timeout: Duration::from_millis(5),
            suspect_interval: Duration::from_millis(50),
            suspect_misses: 4,
            stable_interval: Duration::from_millis(20),
            sign_key: 0x5EED_5EED_5EED_5EED,
            encrypt_key: 1,
            auto_block_ok: true,
        }
    }
}

impl LayerConfig {
    /// A configuration with aggressive timers, for fast-converging tests.
    pub fn fast() -> Self {
        LayerConfig {
            retrans_timeout: Duration::from_micros(500),
            nak_timeout: Duration::from_micros(300),
            suspect_interval: Duration::from_millis(5),
            suspect_misses: 3,
            stable_interval: Duration::from_millis(2),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = LayerConfig::default();
        assert!(c.pt2pt_window > 0);
        assert!(c.frag_max > 0);
        assert!(c.retrans_timeout > Duration::ZERO);
        assert!(c.auto_block_ok);
    }

    #[test]
    fn fast_shrinks_timers() {
        let f = LayerConfig::fast();
        let d = LayerConfig::default();
        assert!(f.retrans_timeout < d.retrans_timeout);
        assert!(f.suspect_interval < d.suspect_interval);
        assert_eq!(f.pt2pt_window, d.pt2pt_window);
    }
}
