//! `pt2pt` — reliable, FIFO point-to-point delivery.
//!
//! A positive-acknowledgment sliding-window protocol, per peer: data
//! messages carry `(seqno, piggybacked cumulative ack)`; receivers buffer
//! out-of-order arrivals, deliver contiguously, and acknowledge; senders
//! retransmit unacknowledged messages on a timer. This is the protocol
//! whose concrete IOA specification (`FifoProtocol`) appears in Figure 3
//! of the paper; `ensemble-ioa` checks that it refines `FifoNetwork` over
//! `LossyNetwork`.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, Msg, Pt2PtHdr, UpEvent, ViewState};
use ensemble_util::{Duration, Rank, Seqno, Time};
use std::collections::BTreeMap;

/// Per-peer connection state.
#[derive(Default)]
struct Conn {
    /// Next seqno to assign to an outgoing message.
    send_next: u64,
    /// Sent but unacknowledged messages, keyed by seqno.
    unacked: BTreeMap<u64, Msg>,
    /// Next seqno expected from the peer.
    recv_next: u64,
    /// Out-of-order arrivals buffered for later delivery.
    recv_buf: BTreeMap<u64, Msg>,
}

/// The reliable point-to-point layer.
pub struct Pt2Pt {
    conns: Vec<Conn>,
    rto: Duration,
    timer_armed: bool,
    /// Retransmissions performed (observability for tests/benches).
    pub retransmissions: u64,
}

impl Pt2Pt {
    /// Builds a pt2pt layer for a view of `n` members.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        Pt2Pt {
            conns: (0..vs.nmembers()).map(|_| Conn::default()).collect(),
            rto: cfg.retrans_timeout,
            timer_armed: false,
            retransmissions: 0,
        }
    }

    /// Outstanding (sent, unacknowledged) message count across peers.
    pub fn unacked_count(&self) -> usize {
        self.conns.iter().map(|c| c.unacked.len()).sum()
    }

    fn arm_timer(&mut self, now: Time, out: &mut Effects) {
        if !self.timer_armed {
            self.timer_armed = true;
            out.timer(now + self.rto);
        }
    }

    fn deliver_ready(conn: &mut Conn, origin: Rank, out: &mut Effects) {
        while let Some(msg) = conn.recv_buf.remove(&conn.recv_next) {
            conn.recv_next += 1;
            out.up(UpEvent::Send { origin, msg });
        }
    }

    fn process_ack(conn: &mut Conn, ack: Seqno) {
        // Cumulative: everything below `ack` is delivered at the peer.
        conn.unacked = conn.unacked.split_off(&ack.0);
    }
}

impl Layer for Pt2Pt {
    fn name(&self) -> &'static str {
        "pt2pt"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Send { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                let conn = &mut self.conns[origin.index()];
                match frame {
                    Frame::Pt2Pt(Pt2PtHdr::Data { seqno, ack }) => {
                        Self::process_ack(conn, ack);
                        if seqno.0 < conn.recv_next {
                            // Duplicate of an already delivered message:
                            // re-ack so the sender can prune.
                            let mut reply = Msg::control();
                            reply.push_frame(Frame::Pt2Pt(Pt2PtHdr::Ack {
                                ack: Seqno(conn.recv_next),
                            }));
                            out.dn(DnEvent::Send {
                                dst: origin,
                                msg: reply,
                            });
                            return;
                        }
                        let msg = std::mem::take(msg);
                        conn.recv_buf.insert(seqno.0, msg);
                        Self::deliver_ready(conn, origin, out);
                        // Acknowledge the new contiguous frontier.
                        let mut reply = Msg::control();
                        reply.push_frame(Frame::Pt2Pt(Pt2PtHdr::Ack {
                            ack: Seqno(conn.recv_next),
                        }));
                        out.dn(DnEvent::Send {
                            dst: origin,
                            msg: reply,
                        });
                    }
                    Frame::Pt2Pt(Pt2PtHdr::Ack { ack }) => {
                        Self::process_ack(conn, ack);
                        // Consumed: acks never reach the layer above.
                    }
                    other => panic!("pt2pt: expected Pt2Pt frame, got {other:?}"),
                }
            }
            UpEvent::Cast { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "pt2pt pushes NoHdr on casts");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Send { dst, msg } => {
                let conn = &mut self.conns[dst.index()];
                let seqno = Seqno(conn.send_next);
                conn.send_next += 1;
                msg.push_frame(Frame::Pt2Pt(Pt2PtHdr::Data {
                    seqno,
                    ack: Seqno(conn.recv_next),
                }));
                conn.unacked.insert(seqno.0, msg.clone());
                out.dn(ev);
                self.arm_timer(now, out);
            }
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }

    fn timer(&mut self, now: Time, out: &mut Effects) {
        self.timer_armed = false;
        let mut any_outstanding = false;
        for (i, conn) in self.conns.iter_mut().enumerate() {
            for msg in conn.unacked.values() {
                self.retransmissions += 1;
                out.dn(DnEvent::Send {
                    dst: Rank(i as u16),
                    msg: msg.clone(),
                });
            }
            any_outstanding |= !conn.unacked.is_empty();
        }
        if any_outstanding {
            self.arm_timer(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{send, up_send, Harness};
    use ensemble_event::Payload;

    fn h() -> Harness<Pt2Pt> {
        Harness::new(Pt2Pt::new(&ViewState::initial(3), &LayerConfig::default()))
    }

    fn data_msg(h: &mut Harness<Pt2Pt>, dst: u16, body: &[u8]) -> Msg {
        let out = h.dn(send(dst, body));
        match out.dn.into_iter().next().unwrap() {
            DnEvent::Send { msg, .. } => msg,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numbers_outgoing_sends_per_peer() {
        let mut h = h();
        let m1 = data_msg(&mut h, 1, b"a");
        let m2 = data_msg(&mut h, 1, b"b");
        let m3 = data_msg(&mut h, 2, b"c");
        let seq = |m: &Msg| match m.peek_frame() {
            Some(Frame::Pt2Pt(Pt2PtHdr::Data { seqno, .. })) => seqno.0,
            other => panic!("{other:?}"),
        };
        assert_eq!(seq(&m1), 0);
        assert_eq!(seq(&m2), 1);
        assert_eq!(seq(&m3), 0, "per-peer numbering");
    }

    #[test]
    fn in_order_delivery_with_ack() {
        let mut h = h();
        let mut m = Msg::data(Payload::from_slice(b"x"));
        m.push_frame(Frame::Pt2Pt(Pt2PtHdr::Data {
            seqno: Seqno(0),
            ack: Seqno(0),
        }));
        let out = h.up(up_send(1, m));
        assert_eq!(out.up.len(), 1, "delivered");
        assert_eq!(out.dn.len(), 1, "acked");
        match &out.dn[0] {
            DnEvent::Send { dst, msg } => {
                assert_eq!(*dst, Rank(1));
                assert_eq!(
                    msg.peek_frame(),
                    Some(&Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(1) }))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_order_buffered_then_delivered() {
        let mut h = h();
        let mk = |s: u64| {
            let mut m = Msg::data(Payload::from_slice(&[s as u8]));
            m.push_frame(Frame::Pt2Pt(Pt2PtHdr::Data {
                seqno: Seqno(s),
                ack: Seqno(0),
            }));
            m
        };
        let out = h.up(up_send(1, mk(1)));
        assert!(out.up.is_empty(), "gap: buffered");
        let out = h.up(up_send(1, mk(0)));
        assert_eq!(out.up.len(), 2, "gap filled: both delivered in order");
        let bodies: Vec<Vec<u8>> = out
            .up
            .iter()
            .map(|e| e.msg().unwrap().payload().gather())
            .collect();
        assert_eq!(bodies, vec![vec![0], vec![1]]);
    }

    #[test]
    fn duplicate_reacked_not_redelivered() {
        let mut h = h();
        let mut m = Msg::data(Payload::from_slice(b"x"));
        m.push_frame(Frame::Pt2Pt(Pt2PtHdr::Data {
            seqno: Seqno(0),
            ack: Seqno(0),
        }));
        h.up(up_send(1, m.clone()));
        let out = h.up(up_send(1, m));
        assert!(out.up.is_empty(), "no duplicate delivery");
        assert_eq!(out.dn.len(), 1, "but re-acked");
    }

    #[test]
    fn ack_prunes_unacked() {
        let mut h = h();
        data_msg(&mut h, 1, b"a");
        data_msg(&mut h, 1, b"b");
        assert_eq!(h.layer.unacked_count(), 2);
        let mut ack = Msg::control();
        ack.push_frame(Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(2) }));
        h.up(up_send(1, ack)).assert_silent();
        assert_eq!(h.layer.unacked_count(), 0);
    }

    #[test]
    fn retransmits_until_acked() {
        let mut h = h();
        data_msg(&mut h, 1, b"a");
        let out = h.advance(Time(0) + LayerConfig::default().retrans_timeout);
        assert_eq!(out.dn.len(), 1, "retransmitted");
        assert_eq!(h.layer.retransmissions, 1);
        assert!(!h.timers.is_empty(), "timer re-armed while outstanding");
        // Ack arrives; next timer fires nothing and disarms.
        let mut ack = Msg::control();
        ack.push_frame(Frame::Pt2Pt(Pt2PtHdr::Ack { ack: Seqno(1) }));
        h.up(up_send(1, ack));
        let t2 = h.timers[0];
        let out = h.advance(t2);
        assert!(out.dn.is_empty());
        assert!(h.timers.is_empty());
    }

    #[test]
    fn piggybacked_ack_processed() {
        let mut h = h();
        data_msg(&mut h, 1, b"a");
        assert_eq!(h.layer.unacked_count(), 1);
        // Peer's data carries ack=1, acknowledging our message.
        let mut m = Msg::data(Payload::from_slice(b"y"));
        m.push_frame(Frame::Pt2Pt(Pt2PtHdr::Data {
            seqno: Seqno(0),
            ack: Seqno(1),
        }));
        h.up(up_send(1, m));
        assert_eq!(h.layer.unacked_count(), 0);
    }

    #[test]
    fn casts_pass_through_with_nohdr() {
        let mut h = h();
        let out = h.dn(crate::harness::cast(b"c"));
        let ev = out.sole_dn();
        assert_eq!(ev.msg().unwrap().peek_frame(), Some(&Frame::NoHdr));
    }
}
