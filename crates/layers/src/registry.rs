//! Layer registry and stack presets.
//!
//! Stacks are described by lists of layer names, mirroring the paper's
//! dynamic optimization input ("requires only the names of the protocol
//! layers that occur in the application stack", §4.1.1). The two presets
//! are the stacks benchmarked in §4.2:
//!
//! * [`STACK_4`] — the 4-layer virtually synchronous reliable multicast
//!   stack of Figure 4: `top, pt2pt, mnak, bottom`;
//! * [`STACK_10`] — the 10-layer stack of Tables 1(a)/2(b), additionally
//!   providing total order, flow control, and fragmentation.
//!
//! (The 10-layer preset orders `frag` above the flow-control layers and
//! `collect` directly above them so that stability counts stay in `mnak`
//! sequence units; Table 2(b) lists the same layer *set*.)

use crate::bottom::Bottom;
use crate::collect::Collect;
use crate::config::LayerConfig;
use crate::elect::Elect;
use crate::encrypt::Encrypt;
use crate::frag::Frag;
use crate::gmp::Gmp;
use crate::layer::Layer;
use crate::local::Local;
use crate::mflow::MFlow;
use crate::mnak::Mnak;
use crate::partial_appl::PartialAppl;
use crate::pt2pt::Pt2Pt;
use crate::pt2ptw::Pt2PtW;
use crate::sign::Sign;
use crate::stable::Stable;
use crate::suspect::Suspect;
use crate::sync::Sync;
use crate::top::Top;
use crate::total::Total;
use ensemble_event::ViewState;
use std::fmt;

/// Every registered layer name.
pub const LAYER_NAMES: &[&str] = &[
    "top",
    "gmp",
    "sync",
    "elect",
    "suspect",
    "partial_appl",
    "total",
    "total_buggy",
    "local",
    "frag",
    "collect",
    "stable",
    "pt2ptw",
    "mflow",
    "pt2pt",
    "mnak",
    "sign",
    "encrypt",
    "bottom",
];

/// The paper's 4-layer stack (Figure 4), top first.
pub const STACK_4: &[&str] = &["top", "pt2pt", "mnak", "bottom"];

/// The paper's 10-layer stack (Tables 1(a), 2(b)), top first: exactly the
/// ten layers Table 2(b) lists sizes for (`partial_appl` is the topmost —
/// the application adapter — and `bottom` the lowest).
pub const STACK_10: &[&str] = &[
    "partial_appl",
    "total",
    "local",
    "frag",
    "collect",
    "pt2ptw",
    "mflow",
    "pt2pt",
    "mnak",
    "bottom",
];

/// The full virtually-synchronous membership stack used by the examples.
///
/// The membership layers sit *below* `total`/`local`: their control casts
/// must not depend on the total-order sequencer (which may be the very
/// member that died), only on the reliable FIFO layers beneath.
pub const STACK_VSYNC: &[&str] = &[
    "top",
    "partial_appl",
    "total",
    "local",
    "gmp",
    "sync",
    "elect",
    "suspect",
    "frag",
    "collect",
    "pt2ptw",
    "mflow",
    "pt2pt",
    "mnak",
    "bottom",
];

/// Errors from stack construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackError {
    /// A layer name is not registered.
    UnknownLayer(String),
    /// The stack is empty.
    Empty,
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::UnknownLayer(n) => write!(f, "unknown layer {n:?}"),
            StackError::Empty => write!(f, "empty stack"),
        }
    }
}

impl std::error::Error for StackError {}

/// Instantiates one layer by name.
pub fn make_layer(
    name: &str,
    vs: &ViewState,
    cfg: &LayerConfig,
) -> Result<Box<dyn Layer>, StackError> {
    Ok(match name {
        "top" => Box::new(Top::new(vs, cfg)),
        "gmp" => Box::new(Gmp::new(vs, cfg)),
        "sync" => Box::new(Sync::new(vs, cfg)),
        "elect" => Box::new(Elect::new(vs, cfg)),
        "suspect" => Box::new(Suspect::new(vs, cfg)),
        "partial_appl" => Box::new(PartialAppl::new(vs, cfg)),
        "total" => Box::new(Total::new(vs, cfg)),
        "total_buggy" => Box::new(Total::new_buggy(vs, cfg)),
        "local" => Box::new(Local::new(vs, cfg)),
        "frag" => Box::new(Frag::new(vs, cfg)),
        "collect" => Box::new(Collect::new(vs, cfg)),
        "stable" => Box::new(Stable::new(vs, cfg)),
        "pt2ptw" => Box::new(Pt2PtW::new(vs, cfg)),
        "mflow" => Box::new(MFlow::new(vs, cfg)),
        "pt2pt" => Box::new(Pt2Pt::new(vs, cfg)),
        "mnak" => Box::new(Mnak::new(vs, cfg)),
        "sign" => Box::new(Sign::new(vs, cfg)),
        "encrypt" => Box::new(Encrypt::new(vs, cfg)),
        "bottom" => Box::new(Bottom::new(vs, cfg)),
        other => return Err(StackError::UnknownLayer(other.to_owned())),
    })
}

/// Instantiates a whole stack, top first, appending `bottom` if absent.
///
/// # Examples
///
/// ```
/// use ensemble_event::ViewState;
/// use ensemble_layers::{make_stack, LayerConfig, STACK_4};
/// let stack = make_stack(STACK_4, &ViewState::initial(2), &LayerConfig::default()).unwrap();
/// assert_eq!(stack.len(), 4);
/// ```
pub fn make_stack(
    names: &[&str],
    vs: &ViewState,
    cfg: &LayerConfig,
) -> Result<Vec<Box<dyn Layer>>, StackError> {
    if names.is_empty() {
        return Err(StackError::Empty);
    }
    let mut layers: Vec<Box<dyn Layer>> = names
        .iter()
        .map(|n| make_layer(n, vs, cfg))
        .collect::<Result<_, _>>()?;
    if names.last() != Some(&"bottom") {
        layers.push(make_layer("bottom", vs, cfg)?);
    }
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_construct() {
        let vs = ViewState::initial(3);
        let cfg = LayerConfig::default();
        for name in LAYER_NAMES {
            let l = make_layer(name, &vs, &cfg).unwrap();
            assert_eq!(
                &l.name(),
                if *name == "total_buggy" {
                    &"total"
                } else {
                    name
                }
            );
        }
    }

    #[test]
    fn unknown_name_rejected() {
        let vs = ViewState::initial(2);
        match make_layer("nope", &vs, &LayerConfig::default()) {
            Err(e) => assert_eq!(e, StackError::UnknownLayer("nope".into())),
            Ok(_) => panic!("unknown layer accepted"),
        }
    }

    #[test]
    fn presets_build() {
        let vs = ViewState::initial(3);
        let cfg = LayerConfig::default();
        assert_eq!(make_stack(STACK_4, &vs, &cfg).unwrap().len(), 4);
        assert_eq!(make_stack(STACK_10, &vs, &cfg).unwrap().len(), 10);
        assert_eq!(make_stack(STACK_VSYNC, &vs, &cfg).unwrap().len(), 15);
    }

    #[test]
    fn empty_stack_rejected() {
        let vs = ViewState::initial(2);
        match make_stack(&[], &vs, &LayerConfig::default()) {
            Err(e) => assert_eq!(e, StackError::Empty),
            Ok(_) => panic!("empty stack accepted"),
        }
    }
}
