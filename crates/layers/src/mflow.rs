//! `mflow` — credit-based flow control for multicasts.
//!
//! A sender may have at most [`LayerConfig::mflow_window`] casts
//! outstanding beyond the *slowest* receiver's cumulative grant. Receivers
//! grant credit (their cumulative consumed count) back to the origin
//! point-to-point after every half window. Casts without credit queue.
//!
//! Suspected members stop gating the window. A partitioned receiver's
//! grant freezes, so once the window drains every later cast queues —
//! including the `sync` flush casts the view change needs to remove that
//! very member and rebuild this layer. Dropping suspects from the
//! `min(granted)` floor (on the `DnEvent::Suspect` that membership
//! forwards down) breaks the deadlock: the queue drains toward the live
//! members and the flush can complete.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, FlowHdr, Frame, Msg, UpEvent, ViewState};
use ensemble_util::{Rank, Time};
use std::collections::VecDeque;

/// The multicast flow-control layer.
pub struct MFlow {
    window: u64,
    my_rank: Rank,
    /// Casts I have sent.
    sent: u64,
    /// Per-member cumulative grants for my casts.
    granted: Vec<u64>,
    /// Per-origin casts consumed (cumulative / since last grant).
    consumed_total: Vec<u64>,
    consumed_since_grant: Vec<u64>,
    /// Members whose grants no longer gate the window.
    suspected: Vec<bool>,
    /// Credit-starved casts.
    queue: VecDeque<Msg>,
}

impl MFlow {
    /// Builds the layer for a view of `n` members.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        let n = vs.nmembers();
        MFlow {
            window: cfg.mflow_window,
            my_rank: vs.rank,
            sent: 0,
            granted: vec![0; n],
            consumed_total: vec![0; n],
            consumed_since_grant: vec![0; n],
            suspected: vec![false; n],
            queue: VecDeque::new(),
        }
    }

    /// Number of casts waiting for credit.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    fn min_granted(&self) -> u64 {
        self.granted
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.my_rank.index() && !self.suspected[*i])
            .map(|(_, &g)| g)
            .min()
            .unwrap_or(u64::MAX)
    }

    fn drain_queue(&mut self, out: &mut Effects) {
        while !self.queue.is_empty() && self.may_send() {
            let msg = self.queue.pop_front().expect("checked non-empty");
            self.transmit(msg, out);
        }
    }

    fn may_send(&self) -> bool {
        self.sent - self.min_granted().min(self.sent) < self.window
    }

    fn transmit(&mut self, mut msg: Msg, out: &mut Effects) {
        self.sent += 1;
        msg.push_frame(Frame::MFlow(FlowHdr::Data));
        out.dn(DnEvent::Cast(msg));
    }
}

impl Layer for MFlow {
    fn name(&self) -> &'static str {
        "mflow"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                let f = msg.pop_frame();
                debug_assert_eq!(
                    f,
                    Frame::MFlow(FlowHdr::Data),
                    "mflow casts carry the Data frame"
                );
                let i = origin.index();
                self.consumed_total[i] += 1;
                self.consumed_since_grant[i] += 1;
                if self.consumed_since_grant[i] >= self.window / 2 && origin != self.my_rank {
                    self.consumed_since_grant[i] = 0;
                    let mut grant = Msg::control();
                    grant.push_frame(Frame::MFlow(FlowHdr::Credit {
                        granted: self.consumed_total[i],
                    }));
                    out.dn(DnEvent::Send {
                        dst: origin,
                        msg: grant,
                    });
                }
                out.up(ev);
            }
            UpEvent::Send { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                match frame {
                    Frame::MFlow(FlowHdr::Credit { granted }) => {
                        let g = &mut self.granted[origin.index()];
                        *g = (*g).max(granted);
                        self.drain_queue(out);
                    }
                    Frame::NoHdr => out.up(ev),
                    other => panic!("mflow: unexpected frame {other:?}"),
                }
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                if self.may_send() {
                    let msg = std::mem::take(msg);
                    self.transmit(msg, out);
                } else {
                    self.queue.push_back(std::mem::take(msg));
                }
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Suspect { ranks } => {
                for r in ranks.iter() {
                    if r.index() < self.suspected.len() {
                        self.suspected[r.index()] = true;
                    }
                }
                self.drain_queue(out);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, up_send, Harness};
    use ensemble_event::Payload;

    fn h(window: u64, rank: u16, n: usize) -> Harness<MFlow> {
        let cfg = LayerConfig {
            mflow_window: window,
            ..LayerConfig::default()
        };
        Harness::new(MFlow::new(
            &ViewState::initial(n).for_rank(Rank(rank)),
            &cfg,
        ))
    }

    #[test]
    fn casts_within_window_pass() {
        let mut h = h(3, 0, 3);
        for _ in 0..3 {
            let ev = h.dn(cast(b"c")).sole_dn();
            assert_eq!(
                ev.msg().unwrap().peek_frame(),
                Some(&Frame::MFlow(FlowHdr::Data))
            );
        }
        h.dn(cast(b"blocked")).assert_silent();
        assert_eq!(h.layer.queued_count(), 1);
    }

    #[test]
    fn slowest_receiver_gates_sending() {
        let mut h = h(2, 0, 3);
        h.dn(cast(b"1"));
        h.dn(cast(b"2"));
        h.dn(cast(b"3")).assert_silent();
        // Receiver 1 grants 2, but receiver 2 has granted nothing.
        let mut g = Msg::control();
        g.push_frame(Frame::MFlow(FlowHdr::Credit { granted: 2 }));
        let out = h.up(up_send(1, g));
        assert!(out.dn.is_empty(), "min(granted) still 0");
        // Receiver 2 grants too: now the queued cast flows.
        let mut g = Msg::control();
        g.push_frame(Frame::MFlow(FlowHdr::Credit { granted: 2 }));
        let out = h.up(up_send(2, g));
        assert_eq!(out.dn.len(), 1);
    }

    #[test]
    fn suspected_member_stops_gating_window() {
        let mut h = h(2, 0, 3);
        h.dn(cast(b"1"));
        h.dn(cast(b"2"));
        h.dn(cast(b"3")).assert_silent();
        // Receiver 1 is current; receiver 2 is partitioned, grant frozen.
        let mut g = Msg::control();
        g.push_frame(Frame::MFlow(FlowHdr::Credit { granted: 2 }));
        h.up(up_send(1, g));
        assert_eq!(h.layer.queued_count(), 1, "still gated by receiver 2");
        // Membership suspects 2: the queue drains toward the live member
        // and the suspicion continues down the stack.
        let out = h.dn(DnEvent::Suspect {
            ranks: vec![Rank(2)],
        });
        assert_eq!(h.layer.queued_count(), 0);
        assert_eq!(out.dn.len(), 2, "drained cast + forwarded suspicion");
        assert!(matches!(out.dn[1], DnEvent::Suspect { .. }));
    }

    #[test]
    fn receiver_grants_after_half_window() {
        let mut h = h(4, 1, 3);
        let mk = || {
            let mut m = Msg::data(Payload::from_slice(b"d"));
            m.push_frame(Frame::MFlow(FlowHdr::Data));
            m
        };
        let out = h.up(up_cast(0, mk()));
        assert_eq!(out.up.len(), 1);
        assert!(out.dn.is_empty());
        let out = h.up(up_cast(0, mk()));
        assert_eq!(out.dn.len(), 1, "grant after 2 of window 4");
        match &out.dn[0] {
            DnEvent::Send { dst, msg } => {
                assert_eq!(*dst, Rank(0));
                assert_eq!(
                    msg.peek_frame(),
                    Some(&Frame::MFlow(FlowHdr::Credit { granted: 2 }))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn own_loopback_casts_never_granted() {
        let mut h = h(2, 1, 3);
        let mk = || {
            let mut m = Msg::data(Payload::from_slice(b"d"));
            m.push_frame(Frame::MFlow(FlowHdr::Data));
            m
        };
        // Our own casts come back via `local`; granting credit to
        // ourselves point-to-point would be wasted traffic.
        let out = h.up(up_cast(1, mk()));
        assert_eq!(out.up.len(), 1);
        let out = h.up(up_cast(1, mk()));
        assert!(out.dn.is_empty(), "no self-grant");
    }

    #[test]
    fn single_member_view_never_blocks() {
        let mut h = h(2, 0, 1);
        for _ in 0..10 {
            h.dn(cast(b"solo")).sole_dn();
        }
        assert_eq!(h.layer.queued_count(), 0);
    }

    #[test]
    fn sends_pass_with_nohdr() {
        let mut h = h(2, 0, 3);
        let ev = h.dn(crate::harness::send(1, b"s")).sole_dn();
        assert_eq!(ev.msg().unwrap().peek_frame(), Some(&Frame::NoHdr));
        let mut m = Msg::data(Payload::from_slice(b"r"));
        m.push_frame(Frame::NoHdr);
        h.up(up_send(1, m)).sole_up();
    }
}
