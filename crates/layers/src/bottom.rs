//! `bottom` — the lowest layer, interfacing the stack to the transport.
//!
//! Wraps outgoing messages with a view-stamp so that receivers can discard
//! packets from defunct views, and absorbs non-message control events that
//! reached the bottom of the stack. This mirrors the paper's Bottom layer,
//! whose optimization theorem appears in §4.1.3: a down-going send leaves
//! the state untouched and extends the header with `Full_nohdr(hdr)`.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, UpEvent, ViewState};
use ensemble_util::Time;

/// The bottom layer.
pub struct Bottom {
    view_ltime: u64,
    enabled: bool,
    /// Packets dropped because they carried a stale view stamp.
    pub stale_drops: u64,
}

impl Bottom {
    /// Builds a bottom layer for the given view.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        Bottom {
            view_ltime: vs.view_id.ltime,
            enabled: true,
            stale_drops: 0,
        }
    }
}

impl Layer for Bottom {
    fn name(&self) -> &'static str {
        "bottom"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        if !self.enabled {
            return;
        }
        match &mut ev {
            UpEvent::Cast { msg, .. } | UpEvent::Send { msg, .. } => {
                match msg.pop_frame() {
                    Frame::Bottom { view_ltime } if view_ltime == self.view_ltime => {
                        out.up(ev);
                    }
                    Frame::Bottom { .. } => {
                        // A packet from an earlier or later view; drop it.
                        self.stale_drops += 1;
                    }
                    other => panic!("bottom: expected Bottom frame, got {other:?}"),
                }
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        if !self.enabled {
            return;
        }
        match &mut ev {
            DnEvent::Cast(msg) => {
                msg.push_frame(Frame::Bottom {
                    view_ltime: self.view_ltime,
                });
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::Bottom {
                    view_ltime: self.view_ltime,
                });
                out.dn(ev);
            }
            // Timers continue to the engine.
            DnEvent::Timer { .. } => out.dn(ev),
            DnEvent::Leave => {
                self.enabled = false;
                out.up(UpEvent::Exit);
            }
            // Control events that reached the bottom are absorbed.
            DnEvent::Block
            | DnEvent::BlockOk
            | DnEvent::Suspect { .. }
            | DnEvent::Merge { .. }
            | DnEvent::Stable(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, send, up_cast, Harness};
    use ensemble_event::{Msg, Payload};

    fn h() -> Harness<Bottom> {
        Harness::new(Bottom::new(&ViewState::initial(3), &LayerConfig::default()))
    }

    #[test]
    fn stamps_casts_down() {
        let mut h = h();
        let ev = h.dn(cast(b"m")).sole_dn();
        let msg = ev.msg().unwrap();
        assert_eq!(msg.peek_frame(), Some(&Frame::Bottom { view_ltime: 0 }));
    }

    #[test]
    fn stamps_sends_down() {
        let mut h = h();
        let ev = h.dn(send(2, b"m")).sole_dn();
        assert!(matches!(ev, DnEvent::Send { .. }));
        assert_eq!(
            ev.msg().unwrap().peek_frame(),
            Some(&Frame::Bottom { view_ltime: 0 })
        );
    }

    #[test]
    fn accepts_current_view_up() {
        let mut h = h();
        let mut m = Msg::data(Payload::from_slice(b"x"));
        m.push_frame(Frame::Bottom { view_ltime: 0 });
        let ev = h.up(up_cast(1, m)).sole_up();
        // Frame was popped.
        assert_eq!(ev.msg().unwrap().depth(), 0);
    }

    #[test]
    fn drops_stale_view_up() {
        let mut h = h();
        let mut m = Msg::data(Payload::from_slice(b"x"));
        m.push_frame(Frame::Bottom { view_ltime: 7 });
        h.up(up_cast(1, m)).assert_silent();
        assert_eq!(h.layer.stale_drops, 1);
    }

    #[test]
    fn absorbs_control_events() {
        let mut h = h();
        h.dn(DnEvent::Block).assert_silent();
        h.dn(DnEvent::Stable(vec![])).assert_silent();
        h.dn(DnEvent::Suspect { ranks: vec![] }).assert_silent();
    }

    #[test]
    fn leave_disables_and_exits() {
        let mut h = h();
        let ev = h.dn(DnEvent::Leave).sole_up();
        assert_eq!(ev, UpEvent::Exit);
        // Disabled: everything is swallowed.
        h.dn(cast(b"m")).assert_silent();
        let mut m = Msg::data(Payload::empty());
        m.push_frame(Frame::Bottom { view_ltime: 0 });
        h.up(up_cast(1, m)).assert_silent();
    }

    #[test]
    fn timer_passes_to_engine() {
        let mut h = h();
        let ev = h.dn(DnEvent::Timer { deadline: Time(9) }).sole_dn();
        assert_eq!(ev, DnEvent::Timer { deadline: Time(9) });
    }
}
