//! The common micro-protocol interface.

use ensemble_event::{DnEvent, Effects, UpEvent};
use ensemble_util::Time;

/// One micro-protocol component.
///
/// A layer communicates exclusively through events: the engine invokes
/// [`Layer::up`] for events arriving from the layer below, [`Layer::dn`]
/// for events from the layer above, and [`Layer::timer`] when a deadline
/// the layer requested (via [`Effects::timer`]) expires. Handlers append
/// their output events to the supplied [`Effects`].
///
/// Layers are single-threaded and owned by their stack; no interior
/// locking is needed (the paper's configurations deliberately do not
/// leverage concurrency, §4.2).
pub trait Layer {
    /// The layer's registry name (e.g. `"mnak"`).
    fn name(&self) -> &'static str;

    /// Called once after construction; may schedule initial timers.
    fn init(&mut self, now: Time, out: &mut Effects) {
        let _ = (now, out);
    }

    /// Handles an event arriving from the layer below.
    fn up(&mut self, now: Time, ev: UpEvent, out: &mut Effects);

    /// Handles an event arriving from the layer above.
    fn dn(&mut self, now: Time, ev: DnEvent, out: &mut Effects);

    /// Handles an expired timer previously requested by this layer.
    fn timer(&mut self, now: Time, out: &mut Effects) {
        let _ = (now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Layer for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn up(&mut self, _now: Time, ev: UpEvent, out: &mut Effects) {
            out.up(ev);
        }
        fn dn(&mut self, _now: Time, ev: DnEvent, out: &mut Effects) {
            out.dn(ev);
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut e = Echo;
        let mut fx = Effects::new();
        e.init(Time::ZERO, &mut fx);
        e.timer(Time::ZERO, &mut fx);
        assert!(fx.is_empty());
        assert_eq!(e.name(), "echo");
    }

    #[test]
    fn echo_passes_through() {
        let mut e = Echo;
        let mut fx = Effects::new();
        e.dn(Time::ZERO, DnEvent::Leave, &mut fx);
        assert_eq!(fx.take_dn(), vec![DnEvent::Leave]);
    }
}
