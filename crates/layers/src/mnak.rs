//! `mnak` — reliable multicast via negative acknowledgments.
//!
//! Every cast carries a per-origin sequence number. Receivers deliver
//! contiguously per origin; a gap triggers a NAK to the origin, answered
//! by point-to-point retransmission. All casts (sent and delivered) are
//! buffered until the stability protocol (`collect` or `stable`) reports
//! them delivered everywhere, at which point a down-travelling
//! [`DnEvent::Stable`] vector prunes the store. Outstanding gaps are
//! re-NAKed on a timer.
//!
//! The CCP for this layer's bypass path is exactly the paper's example:
//! "the event is a Deliver event, and the low end of the receiver's
//! sliding window is equal to the sequence number in the event" (§4.1).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, MnakHdr, Msg, UpEvent, ViewState};
use ensemble_util::{Duration, Rank, Seqno, Time};
use std::collections::BTreeMap;

/// Per-origin receive and retransmission state.
#[derive(Default)]
struct Origin {
    /// Next seqno expected for contiguous delivery.
    next: u64,
    /// Out-of-order casts awaiting the gap to fill.
    pending: BTreeMap<u64, Msg>,
    /// Delivered (or sent, for our own rank) casts retained for
    /// retransmission until stable.
    store: BTreeMap<u64, Msg>,
}

/// The reliable multicast layer.
pub struct Mnak {
    my_rank: Rank,
    origins: Vec<Origin>,
    /// My next cast seqno.
    cast_next: u64,
    nak_timeout: Duration,
    timer_armed: bool,
    /// Consecutive heartbeats without local progress (bounded so idle
    /// groups quiesce; see [`Mnak::HEARTBEAT_BUDGET`]).
    quiet_rounds: u32,
    /// NAKs sent (observability).
    pub naks_sent: u64,
    /// Retransmissions answered (observability).
    pub retrans_sent: u64,
    /// Heartbeats cast (observability).
    pub heartbeats_sent: u64,
}

impl Mnak {
    /// Heartbeats sent without progress before the layer goes quiet
    /// (bounds recovery attempts so idle groups reach quiescence; real
    /// deployments would beat forever alongside the failure detector).
    pub const HEARTBEAT_BUDGET: u32 = 5;

    /// Builds an mnak layer for the view.
    pub fn new(vs: &ViewState, cfg: &LayerConfig) -> Self {
        Mnak {
            my_rank: vs.rank,
            origins: (0..vs.nmembers()).map(|_| Origin::default()).collect(),
            cast_next: 0,
            nak_timeout: cfg.nak_timeout,
            timer_armed: false,
            quiet_rounds: 0,
            naks_sent: 0,
            retrans_sent: 0,
            heartbeats_sent: 0,
        }
    }

    fn own_unstable(&self) -> bool {
        !self.origins[self.my_rank.index()].store.is_empty()
    }

    /// Messages retained in the retransmission store.
    pub fn store_size(&self) -> usize {
        self.origins.iter().map(|o| o.store.len()).sum()
    }

    /// The per-origin contiguous delivery frontier (own rank: casts sent).
    pub fn delivered_vector(&self) -> Vec<Seqno> {
        self.origins
            .iter()
            .enumerate()
            .map(|(i, o)| {
                if i == self.my_rank.index() {
                    Seqno(self.cast_next)
                } else {
                    Seqno(o.next)
                }
            })
            .collect()
    }

    fn arm_timer(&mut self, now: Time, out: &mut Effects) {
        if !self.timer_armed {
            self.timer_armed = true;
            out.timer(now + self.nak_timeout);
        }
    }

    fn nak_gap(&mut self, origin: Rank, lo: u64, hi: u64, out: &mut Effects) {
        self.naks_sent += 1;
        let mut nak = Msg::control();
        nak.push_frame(Frame::Mnak(MnakHdr::Nak {
            origin,
            lo: Seqno(lo),
            hi: Seqno(hi),
        }));
        // Ask the origin itself; any member holding the casts could answer,
        // but the origin is guaranteed to hold its own until stability.
        out.dn(DnEvent::Send {
            dst: origin,
            msg: nak,
        });
    }

    /// Handles an arriving data cast (fresh or retransmitted).
    fn ingest(&mut self, now: Time, origin: Rank, seqno: u64, msg: Msg, out: &mut Effects) {
        let o = &mut self.origins[origin.index()];
        if seqno < o.next || o.pending.contains_key(&seqno) {
            return; // Duplicate.
        }
        o.pending.insert(seqno, msg);
        // Deliver the contiguous prefix.
        while let Some(msg) = o.pending.remove(&o.next) {
            o.store.insert(o.next, msg.clone());
            o.next += 1;
            out.up(UpEvent::Cast { origin, msg });
        }
        // Whatever remains pending implies a gap [next, first_pending).
        if let Some((&first, _)) = self.origins[origin.index()].pending.iter().next() {
            let lo = self.origins[origin.index()].next;
            self.nak_gap(origin, lo, first, out);
            self.arm_timer(now, out);
        }
    }
}

impl Layer for Mnak {
    fn name(&self) -> &'static str {
        "mnak"
    }

    fn up(&mut self, now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                match frame {
                    Frame::Mnak(MnakHdr::Data { seqno }) => {
                        let msg = std::mem::take(msg);
                        self.ingest(now, origin, seqno.0, msg, out);
                    }
                    Frame::Mnak(MnakHdr::Heartbeat { next }) => {
                        // A trailing gap becomes visible here.
                        let o = &self.origins[origin.index()];
                        if origin != self.my_rank && o.next < next.0 {
                            let lo = o.next;
                            self.nak_gap(origin, lo, next.0, out);
                            self.arm_timer(now, out);
                        }
                    }
                    other => panic!("mnak: expected Mnak frame on cast, got {other:?}"),
                }
            }
            UpEvent::Send { origin, msg } => {
                let requester = *origin;
                let frame = msg.pop_frame();
                match frame {
                    Frame::Mnak(MnakHdr::Nak { origin, lo, hi }) => {
                        // Answer from our store with point-to-point
                        // retransmissions.
                        let o = &self.origins[origin.index()];
                        let mut replies = Vec::new();
                        for (&s, stored) in o.store.range(lo.0..hi.0) {
                            let mut m = stored.clone();
                            m.push_frame(Frame::Mnak(MnakHdr::Retrans {
                                origin,
                                seqno: Seqno(s),
                            }));
                            replies.push(m);
                        }
                        for m in replies {
                            self.retrans_sent += 1;
                            out.dn(DnEvent::Send {
                                dst: requester,
                                msg: m,
                            });
                        }
                    }
                    Frame::Mnak(MnakHdr::Retrans { origin, seqno }) => {
                        let msg = std::mem::take(msg);
                        self.ingest(now, origin, seqno.0, msg, out);
                    }
                    Frame::NoHdr => out.up(ev),
                    other => panic!("mnak: unexpected frame on send {other:?}"),
                }
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, now: Time, mut ev: DnEvent, out: &mut Effects) {
        let _now = now;
        match &mut ev {
            DnEvent::Cast(msg) => {
                let seqno = Seqno(self.cast_next);
                self.cast_next += 1;
                // Retain the unframed message for retransmission.
                self.origins[self.my_rank.index()]
                    .store
                    .insert(seqno.0, msg.clone());
                msg.push_frame(Frame::Mnak(MnakHdr::Data { seqno }));
                out.dn(ev);
                self.quiet_rounds = 0;
                self.arm_timer(_now, out);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            DnEvent::Stable(vec) => {
                // Prune everything below the stability floor.
                for (i, floor) in vec.iter().enumerate() {
                    if let Some(o) = self.origins.get_mut(i) {
                        o.store = o.store.split_off(&floor.0);
                    }
                }
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }

    fn timer(&mut self, now: Time, out: &mut Effects) {
        self.timer_armed = false;
        // Re-NAK outstanding gaps.
        let gaps: Vec<(Rank, u64, u64)> = self
            .origins
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.pending
                    .keys()
                    .next()
                    .map(|&first| (Rank(i as u16), o.next, first))
            })
            .collect();
        let any_gap = !gaps.is_empty();
        for (origin, lo, hi) in gaps {
            self.nak_gap(origin, lo, hi, out);
        }
        // Heartbeat while our own casts may still be missing somewhere.
        let mut beating = false;
        if self.own_unstable() && self.quiet_rounds < Self::HEARTBEAT_BUDGET {
            self.quiet_rounds += 1;
            self.heartbeats_sent += 1;
            let mut hb = Msg::control();
            hb.push_frame(Frame::Mnak(MnakHdr::Heartbeat {
                next: Seqno(self.cast_next),
            }));
            out.dn(DnEvent::Cast(hb));
            beating = self.quiet_rounds < Self::HEARTBEAT_BUDGET;
        }
        if any_gap || beating {
            self.arm_timer(now, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, up_send, Harness};
    use ensemble_event::Payload;

    fn h(rank: u16) -> Harness<Mnak> {
        Harness::new(Mnak::new(
            &ViewState::initial(3).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    fn data(seq: u64, body: &[u8]) -> Msg {
        let mut m = Msg::data(Payload::from_slice(body));
        m.push_frame(Frame::Mnak(MnakHdr::Data { seqno: Seqno(seq) }));
        m
    }

    #[test]
    fn numbers_and_stores_own_casts() {
        let mut h = h(0);
        let e1 = h.dn(cast(b"a")).sole_dn();
        let e2 = h.dn(cast(b"b")).sole_dn();
        let seq = |e: &DnEvent| match e.msg().unwrap().peek_frame() {
            Some(Frame::Mnak(MnakHdr::Data { seqno })) => seqno.0,
            other => panic!("{other:?}"),
        };
        assert_eq!(seq(&e1), 0);
        assert_eq!(seq(&e2), 1);
        assert_eq!(h.layer.store_size(), 2);
    }

    #[test]
    fn in_order_casts_deliver() {
        let mut h = h(0);
        let out = h.up(up_cast(1, data(0, b"x")));
        assert_eq!(out.up.len(), 1);
        let out = h.up(up_cast(1, data(1, b"y")));
        assert_eq!(out.up.len(), 1);
        assert_eq!(h.layer.delivered_vector()[1], Seqno(2));
    }

    #[test]
    fn gap_naks_then_recovers() {
        let mut h = h(0);
        // Seqno 1 arrives before 0: buffered, NAK [0,1) to origin.
        let out = h.up(up_cast(1, data(1, b"later")));
        assert!(out.up.is_empty());
        assert_eq!(out.dn.len(), 1);
        match &out.dn[0] {
            DnEvent::Send { dst, msg } => {
                assert_eq!(*dst, Rank(1));
                assert_eq!(
                    msg.peek_frame(),
                    Some(&Frame::Mnak(MnakHdr::Nak {
                        origin: Rank(1),
                        lo: Seqno(0),
                        hi: Seqno(1),
                    }))
                );
            }
            other => panic!("{other:?}"),
        }
        // The retransmission arrives: both deliver, in order.
        let mut rt = Msg::data(Payload::from_slice(b"first"));
        rt.push_frame(Frame::Mnak(MnakHdr::Retrans {
            origin: Rank(1),
            seqno: Seqno(0),
        }));
        let out = h.up(up_send(1, rt));
        assert_eq!(out.up.len(), 2);
        assert_eq!(out.up[0].msg().unwrap().payload().gather(), b"first");
        assert_eq!(out.up[1].msg().unwrap().payload().gather(), b"later");
    }

    #[test]
    fn answers_naks_from_store() {
        let mut h = h(0);
        h.dn(cast(b"m0"));
        h.dn(cast(b"m1"));
        let mut nak = Msg::control();
        nak.push_frame(Frame::Mnak(MnakHdr::Nak {
            origin: Rank(0),
            lo: Seqno(0),
            hi: Seqno(2),
        }));
        let out = h.up(up_send(2, nak));
        assert_eq!(out.dn.len(), 2, "both casts retransmitted");
        assert_eq!(h.layer.retrans_sent, 2);
        for ev in &out.dn {
            assert!(matches!(ev, DnEvent::Send { dst: Rank(2), .. }));
        }
    }

    #[test]
    fn duplicates_dropped() {
        let mut h = h(0);
        h.up(up_cast(1, data(0, b"x")));
        let out = h.up(up_cast(1, data(0, b"x")));
        out.assert_silent();
    }

    #[test]
    fn stability_prunes_store() {
        let mut h = h(0);
        h.dn(cast(b"a"));
        h.dn(cast(b"b"));
        h.up(up_cast(1, data(0, b"r")));
        assert_eq!(h.layer.store_size(), 3);
        let out = h.dn(DnEvent::Stable(vec![Seqno(2), Seqno(1), Seqno(0)]));
        assert_eq!(out.dn.len(), 1, "stability continues down");
        assert_eq!(h.layer.store_size(), 0);
    }

    #[test]
    fn renak_on_timer_until_filled() {
        let mut h = h(0);
        h.up(up_cast(1, data(1, b"later")));
        assert_eq!(h.layer.naks_sent, 1);
        let t = h.timers[0];
        let out = h.advance(t);
        assert_eq!(out.dn.len(), 1, "re-NAKed");
        assert_eq!(h.layer.naks_sent, 2);
        assert!(!h.timers.is_empty(), "re-armed");
        // Fill the gap; next timer is silent and disarms.
        let mut rt = Msg::data(Payload::from_slice(b"first"));
        rt.push_frame(Frame::Mnak(MnakHdr::Retrans {
            origin: Rank(1),
            seqno: Seqno(0),
        }));
        h.up(up_send(1, rt));
        let t2 = h.timers[0];
        let out = h.advance(t2);
        assert!(out.dn.is_empty());
        assert!(h.timers.is_empty());
    }

    #[test]
    fn sends_pass_through() {
        let mut h = h(0);
        let ev = h.dn(crate::harness::send(1, b"s")).sole_dn();
        assert_eq!(ev.msg().unwrap().peek_frame(), Some(&Frame::NoHdr));
        let mut m = Msg::data(Payload::from_slice(b"r"));
        m.push_frame(Frame::NoHdr);
        h.up(up_send(1, m)).sole_up();
    }

    #[test]
    fn heartbeat_reveals_trailing_gap() {
        let mut h = h(0);
        // Origin 1 announces next=3, but we have delivered nothing: the
        // whole prefix is a trailing gap, NAKed immediately.
        let mut hb = Msg::control();
        hb.push_frame(Frame::Mnak(MnakHdr::Heartbeat { next: Seqno(3) }));
        let out = h.up(up_cast(1, hb));
        assert_eq!(out.dn.len(), 1);
        match &out.dn[0] {
            DnEvent::Send { dst, msg } => {
                assert_eq!(*dst, Rank(1));
                assert_eq!(
                    msg.peek_frame(),
                    Some(&Frame::Mnak(MnakHdr::Nak {
                        origin: Rank(1),
                        lo: Seqno(0),
                        hi: Seqno(3),
                    }))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heartbeat_when_caught_up_is_silent() {
        let mut h = h(0);
        h.up(up_cast(1, data(0, b"a")));
        let mut hb = Msg::control();
        hb.push_frame(Frame::Mnak(MnakHdr::Heartbeat { next: Seqno(1) }));
        h.up(up_cast(1, hb)).assert_silent();
    }

    #[test]
    fn sender_heartbeats_while_unstable_then_quiets() {
        let mut h = h(0);
        h.dn(cast(b"a"));
        let mut beats = 0;
        // Drive timers until the budget exhausts.
        for _ in 0..(Mnak::HEARTBEAT_BUDGET + 3) {
            let Some(&t) = h.timers.first() else { break };
            let out = h.advance(t);
            beats += out
                .dn
                .iter()
                .filter(|e| {
                    matches!(e, DnEvent::Cast(m)
                    if matches!(m.peek_frame(), Some(Frame::Mnak(MnakHdr::Heartbeat { .. }))))
                })
                .count();
        }
        assert_eq!(beats as u32, Mnak::HEARTBEAT_BUDGET);
        assert!(h.timers.is_empty(), "quiesced after the budget");
        // Stability prunes the store: no further beats even after new
        // timer arms from fresh casts... (a new cast resets the budget).
        h.dn(DnEvent::Stable(vec![Seqno(1), Seqno(0), Seqno(0)]));
        assert_eq!(h.layer.store_size(), 0);
    }

    #[test]
    fn delivered_vector_counts_own_sends() {
        let mut h = h(2);
        h.dn(cast(b"a"));
        h.dn(cast(b"b"));
        assert_eq!(h.layer.delivered_vector()[2], Seqno(2));
    }
}
