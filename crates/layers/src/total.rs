//! `total` — totally ordered multicast (sequencer-based).
//!
//! All members deliver all casts in one global order. The view coordinator
//! acts as the *sequencer*:
//!
//! * the sequencer stamps its own casts with the next global order — the
//!   common case the bypass specializes for;
//! * other members cast with a local sequence number; the sequencer, upon
//!   receiving such an unordered cast, casts an `Order` announcement
//!   binding `(origin, local)` to the next global order;
//! * everybody (sequencer included, via the `local` loopback below this
//!   layer) buffers and delivers strictly in global order.
//!
//! A deliberately buggy variant ([`Total::new_buggy`]) reproduces the
//! paper's account of a subtle total-ordering bug found by formal
//! verification (§1, ref. \[11\] of the paper): it optimistically delivers a member's own
//! casts at send time, which violates the agreed order whenever another
//! member's cast is sequenced in between. The `ensemble-ioa` refinement
//! checker exhibits exactly this interleaving.

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Frame, Msg, TotalHdr, UpEvent, ViewState};
use ensemble_util::{Rank, Seqno, Time};
use std::collections::{BTreeMap, HashMap};

/// The total-ordering layer.
pub struct Total {
    my_rank: Rank,
    sequencer: Rank,
    /// Sequencer: next global order to assign.
    order_next: u64,
    /// My next local (pre-order) cast number.
    local_next: u64,
    /// Next global order to deliver.
    deliver_next: u64,
    /// Casts with a known order, awaiting their turn.
    holding: BTreeMap<u64, (Rank, Msg)>,
    /// Casts without an order yet, keyed by (origin, local).
    unordered: HashMap<(Rank, u64), Msg>,
    /// Order announcements that arrived before their cast.
    order_early: HashMap<(Rank, u64), u64>,
    /// If set, deliver own casts immediately at send time (the seeded bug).
    buggy_eager_self_delivery: bool,
}

impl Total {
    /// Builds the correct total-order layer.
    pub fn new(vs: &ViewState, _cfg: &LayerConfig) -> Self {
        Total {
            my_rank: vs.rank,
            sequencer: vs.coord(),
            order_next: 0,
            local_next: 0,
            deliver_next: 0,
            holding: BTreeMap::new(),
            unordered: HashMap::new(),
            order_early: HashMap::new(),
            buggy_eager_self_delivery: false,
        }
    }

    /// Builds the buggy variant used by the verification experiments.
    pub fn new_buggy(vs: &ViewState, cfg: &LayerConfig) -> Self {
        Total {
            buggy_eager_self_delivery: true,
            ..Self::new(vs, cfg)
        }
    }

    fn am_sequencer(&self) -> bool {
        self.my_rank == self.sequencer
    }

    /// Number of casts buffered awaiting order or turn.
    pub fn buffered(&self) -> usize {
        self.holding.len() + self.unordered.len()
    }

    fn deliver_ready(&mut self, out: &mut Effects) {
        while let Some((origin, msg)) = self.holding.remove(&self.deliver_next) {
            self.deliver_next += 1;
            out.up(UpEvent::Cast { origin, msg });
        }
    }

    fn place(&mut self, order: u64, origin: Rank, msg: Msg, out: &mut Effects) {
        self.holding.insert(order, (origin, msg));
        self.deliver_ready(out);
    }
}

impl Layer for Total {
    fn name(&self) -> &'static str {
        "total"
    }

    fn up(&mut self, _now: Time, mut ev: UpEvent, out: &mut Effects) {
        match &mut ev {
            UpEvent::Cast { origin, msg } => {
                let origin = *origin;
                let frame = msg.pop_frame();
                match frame {
                    Frame::Total(TotalHdr::Ordered { order }) => {
                        let msg = std::mem::take(msg);
                        self.place(order.0, origin, msg, out);
                    }
                    Frame::Total(TotalHdr::Unordered { local }) => {
                        let msg = std::mem::take(msg);
                        if let Some(order) = self.order_early.remove(&(origin, local.0)) {
                            self.place(order, origin, msg, out);
                        } else {
                            self.unordered.insert((origin, local.0), msg);
                        }
                        if self.am_sequencer() {
                            let order = Seqno(self.order_next);
                            self.order_next += 1;
                            let mut ann = Msg::control();
                            ann.push_frame(Frame::Total(TotalHdr::Order {
                                origin,
                                local,
                                order,
                            }));
                            out.dn(DnEvent::Cast(ann));
                        }
                    }
                    Frame::Total(TotalHdr::Order {
                        origin: o,
                        local,
                        order,
                    }) => {
                        // Announcements are consumed here, never delivered.
                        if let Some(msg) = self.unordered.remove(&(o, local.0)) {
                            self.place(order.0, o, msg, out);
                        } else {
                            self.order_early.insert((o, local.0), order.0);
                        }
                    }
                    other => panic!("total: expected Total frame, got {other:?}"),
                }
            }
            UpEvent::Send { msg, .. } => {
                let f = msg.pop_frame();
                debug_assert_eq!(f, Frame::NoHdr, "total pushes NoHdr on sends");
                out.up(ev);
            }
            _ => out.up(ev),
        }
    }

    fn dn(&mut self, _now: Time, mut ev: DnEvent, out: &mut Effects) {
        match &mut ev {
            DnEvent::Cast(msg) => {
                if self.buggy_eager_self_delivery {
                    // BUG (deliberate): deliver our own cast right now,
                    // outside the global order. Caught by the refinement
                    // checker; see crate docs.
                    out.up(UpEvent::Cast {
                        origin: self.my_rank,
                        msg: msg.clone(),
                    });
                }
                if self.am_sequencer() {
                    let order = Seqno(self.order_next);
                    self.order_next += 1;
                    msg.push_frame(Frame::Total(TotalHdr::Ordered { order }));
                } else {
                    let local = Seqno(self.local_next);
                    self.local_next += 1;
                    msg.push_frame(Frame::Total(TotalHdr::Unordered { local }));
                }
                out.dn(ev);
            }
            DnEvent::Send { msg, .. } => {
                msg.push_frame(Frame::NoHdr);
                out.dn(ev);
            }
            _ => out.dn(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, Harness};
    use ensemble_event::Payload;

    fn h(rank: u16) -> Harness<Total> {
        Harness::new(Total::new(
            &ViewState::initial(3).for_rank(Rank(rank)),
            &LayerConfig::default(),
        ))
    }

    fn ordered(order: u64, body: &[u8]) -> Msg {
        let mut m = Msg::data(Payload::from_slice(body));
        m.push_frame(Frame::Total(TotalHdr::Ordered {
            order: Seqno(order),
        }));
        m
    }

    fn unordered(local: u64, body: &[u8]) -> Msg {
        let mut m = Msg::data(Payload::from_slice(body));
        m.push_frame(Frame::Total(TotalHdr::Unordered {
            local: Seqno(local),
        }));
        m
    }

    fn order_ann(origin: u16, local: u64, order: u64) -> Msg {
        let mut m = Msg::control();
        m.push_frame(Frame::Total(TotalHdr::Order {
            origin: Rank(origin),
            local: Seqno(local),
            order: Seqno(order),
        }));
        m
    }

    #[test]
    fn sequencer_stamps_own_casts() {
        let mut h = h(0);
        let e = h.dn(cast(b"a")).sole_dn();
        assert_eq!(
            e.msg().unwrap().peek_frame(),
            Some(&Frame::Total(TotalHdr::Ordered { order: Seqno(0) }))
        );
        let e = h.dn(cast(b"b")).sole_dn();
        assert_eq!(
            e.msg().unwrap().peek_frame(),
            Some(&Frame::Total(TotalHdr::Ordered { order: Seqno(1) }))
        );
    }

    #[test]
    fn member_casts_unordered() {
        let mut h = h(1);
        let e = h.dn(cast(b"a")).sole_dn();
        assert_eq!(
            e.msg().unwrap().peek_frame(),
            Some(&Frame::Total(TotalHdr::Unordered { local: Seqno(0) }))
        );
    }

    #[test]
    fn delivers_in_global_order() {
        let mut h = h(1);
        // Order 1 arrives first: held.
        let out = h.up(up_cast(0, ordered(1, b"second")));
        assert!(out.up.is_empty());
        // Order 0 arrives: both deliver, in order.
        let out = h.up(up_cast(0, ordered(0, b"first")));
        assert_eq!(out.up.len(), 2);
        assert_eq!(out.up[0].msg().unwrap().payload().gather(), b"first");
        assert_eq!(out.up[1].msg().unwrap().payload().gather(), b"second");
    }

    #[test]
    fn sequencer_orders_unordered_casts() {
        let mut h = h(0);
        let out = h.up(up_cast(2, unordered(0, b"x")));
        assert!(out.up.is_empty(), "held until the announcement loops back");
        assert_eq!(out.dn.len(), 1);
        match &out.dn[0] {
            DnEvent::Cast(m) => assert_eq!(
                m.peek_frame(),
                Some(&Frame::Total(TotalHdr::Order {
                    origin: Rank(2),
                    local: Seqno(0),
                    order: Seqno(0),
                }))
            ),
            other => panic!("{other:?}"),
        }
        // The announcement loops back (via `local` below) and releases it.
        let out = h.up(up_cast(0, order_ann(2, 0, 0)));
        assert_eq!(out.up.len(), 1);
        assert_eq!(out.up[0].origin(), Some(Rank(2)));
    }

    #[test]
    fn announcement_before_data_is_handled() {
        let mut h = h(1);
        let out = h.up(up_cast(0, order_ann(2, 0, 0)));
        assert!(out.up.is_empty());
        let out = h.up(up_cast(2, unordered(0, b"x")));
        assert_eq!(out.up.len(), 1, "early order applied on arrival");
    }

    #[test]
    fn interleaves_orders_across_origins() {
        let mut h = h(1);
        // Global order: 0 from rank 0, 1 from rank 2, 2 from rank 0.
        let out = h.up(up_cast(0, ordered(0, b"a")));
        assert_eq!(out.up.len(), 1);
        h.up(up_cast(2, unordered(0, b"b")));
        let out = h.up(up_cast(0, order_ann(2, 0, 1)));
        assert_eq!(out.up.len(), 1);
        let out = h.up(up_cast(0, ordered(2, b"c")));
        assert_eq!(out.up.len(), 1);
    }

    #[test]
    fn buggy_variant_delivers_early() {
        let vs = ViewState::initial(3).for_rank(Rank(1));
        let mut h = Harness::new(Total::new_buggy(&vs, &LayerConfig::default()));
        let out = h.dn(cast(b"mine"));
        // The bug: an immediate self-delivery alongside the network cast.
        assert_eq!(out.up.len(), 1);
        assert_eq!(out.dn.len(), 1);
    }

    #[test]
    fn buffered_counts() {
        let mut h = h(1);
        h.up(up_cast(0, ordered(5, b"far")));
        h.up(up_cast(2, unordered(0, b"no-order")));
        assert_eq!(h.layer.buffered(), 2);
    }
}
