//! `top` — the highest layer, interfacing the stack to the application.
//!
//! Routes deliveries to the application boundary and, by default, answers
//! membership `Block` requests on the application's behalf (configurable
//! via [`LayerConfig::auto_block_ok`]).

use crate::config::LayerConfig;
use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, UpEvent, ViewState};
use ensemble_util::Time;

/// The top layer.
pub struct Top {
    auto_block_ok: bool,
    blocked: bool,
}

impl Top {
    /// Builds a top layer.
    pub fn new(_vs: &ViewState, cfg: &LayerConfig) -> Self {
        Top {
            auto_block_ok: cfg.auto_block_ok,
            blocked: false,
        }
    }

    /// Whether a `Block` has been seen and not yet resolved by a view.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }
}

impl Layer for Top {
    fn name(&self) -> &'static str {
        "top"
    }

    fn up(&mut self, _now: Time, ev: UpEvent, out: &mut Effects) {
        match ev {
            UpEvent::Block => {
                self.blocked = true;
                // Surface the block to the application regardless, so it
                // can quiesce; answer for it if configured to.
                out.up(UpEvent::Block);
                if self.auto_block_ok {
                    out.dn(DnEvent::BlockOk);
                }
            }
            UpEvent::View(vs) => {
                self.blocked = false;
                out.up(UpEvent::View(vs));
            }
            other => out.up(other),
        }
    }

    fn dn(&mut self, _now: Time, ev: DnEvent, out: &mut Effects) {
        out.dn(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{cast, up_cast, Harness};
    use ensemble_event::Msg;

    fn h(auto: bool) -> Harness<Top> {
        let cfg = LayerConfig {
            auto_block_ok: auto,
            ..LayerConfig::default()
        };
        Harness::new(Top::new(&ViewState::initial(2), &cfg))
    }

    #[test]
    fn passes_data_both_ways() {
        let mut h = h(true);
        h.dn(cast(b"m")).sole_dn();
        h.up(up_cast(1, Msg::control())).sole_up();
    }

    #[test]
    fn auto_block_ok_answers() {
        let mut h = h(true);
        let out = h.up(UpEvent::Block);
        assert_eq!(out.up, vec![UpEvent::Block]);
        assert_eq!(out.dn, vec![DnEvent::BlockOk]);
        assert!(h.layer.is_blocked());
    }

    #[test]
    fn manual_block_defers_to_app() {
        let mut h = h(false);
        let out = h.up(UpEvent::Block);
        assert_eq!(out.up, vec![UpEvent::Block]);
        assert!(out.dn.is_empty());
    }

    #[test]
    fn view_clears_block() {
        let mut h = h(true);
        h.up(UpEvent::Block);
        assert!(h.layer.is_blocked());
        h.up(UpEvent::View(ViewState::initial(2))).sole_up();
        assert!(!h.layer.is_blocked());
    }
}
