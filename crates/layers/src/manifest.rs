//! Per-layer header manifests.
//!
//! Each layer declares, as data, the set of header constructors it may
//! put on a message — the layer's slice of the header namespace. The
//! names follow the IR models in `ensemble_ir::models` (for layers that
//! have models) and the [`ensemble_event::Frame`] variants otherwise, so
//! the static header-space analysis in `ensemble-analyze` can check its
//! *inferred* header usage against this declared ground truth, and check
//! disjointness across a whole stack (including layers the IR cannot
//! model yet, such as the membership suite).
//!
//! `NoHdr` is the shared pass-through marker every transparent layer may
//! push; it deliberately belongs to no layer and is excluded from
//! disjointness checking.

/// The declared header namespace of one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeaderManifest {
    /// Registry name of the layer.
    pub layer: &'static str,
    /// Header constructors the layer may push (IR naming; `"NoHdr"` for
    /// transparent paths).
    pub pushes: &'static [&'static str],
    /// Whether the layer rewrites payload bytes (e.g. `encrypt`). Such
    /// layers must sit *above* `frag`: transforming each fragment can
    /// grow it past `frag_max`, and compression-based bypasses cannot
    /// cross them.
    pub transforms_payload: bool,
}

const fn m(
    layer: &'static str,
    pushes: &'static [&'static str],
    transforms_payload: bool,
) -> HeaderManifest {
    HeaderManifest {
        layer,
        pushes,
        transforms_payload,
    }
}

/// The manifest for `layer`, or `None` for unregistered names.
pub fn manifest(layer: &str) -> Option<HeaderManifest> {
    Some(match layer {
        "top" => m("top", &["NoHdr"], false),
        "partial_appl" => m("partial_appl", &["NoHdr"], false),
        "local" => m("local", &["NoHdr"], false),
        "elect" => m("elect", &["NoHdr"], false),
        "total" => m(
            "total",
            &["TotalOrdered", "TotalUnordered", "TotalOrder", "NoHdr"],
            false,
        ),
        "total_buggy" => m(
            "total_buggy",
            &["TotalOrdered", "TotalUnordered", "TotalOrder", "NoHdr"],
            false,
        ),
        "frag" => m("frag", &["FragWhole", "FragPiece"], false),
        "collect" => m("collect", &["CollectPass", "CollectGossip", "NoHdr"], false),
        "stable" => m("stable", &["StablePass", "StableGossip", "NoHdr"], false),
        "pt2ptw" => m("pt2ptw", &["PtwData", "PtwCredit", "NoHdr"], false),
        "mflow" => m("mflow", &["MFlowData", "MFlowCredit", "NoHdr"], false),
        "pt2pt" => m("pt2pt", &["Pt2PtData", "Pt2PtAck", "NoHdr"], false),
        "mnak" => m(
            "mnak",
            &[
                "MnakData",
                "MnakNak",
                "MnakRetrans",
                "MnakHeartbeat",
                "NoHdr",
            ],
            false,
        ),
        "suspect" => m(
            "suspect",
            &["SuspectPass", "SuspectPing", "SuspectPong", "NoHdr"],
            false,
        ),
        "sync" => m(
            "sync",
            &["SyncPass", "SyncFlush", "SyncFlushOk", "NoHdr"],
            false,
        ),
        "gmp" => m("gmp", &["GmpPass", "GmpNewView", "NoHdr"], false),
        "sign" => m("sign", &["SignHdr"], false),
        "encrypt" => m("encrypt", &["EncryptHdr"], true),
        "bottom" => m("bottom", &["BottomHdr"], false),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::LAYER_NAMES;
    use std::collections::HashMap;

    #[test]
    fn every_registered_layer_has_a_manifest() {
        for name in LAYER_NAMES {
            let mf = manifest(name).unwrap_or_else(|| panic!("{name} has no manifest"));
            assert_eq!(mf.layer, *name);
            assert!(!mf.pushes.is_empty(), "{name} declares no headers");
        }
        assert!(manifest("mystery").is_none());
    }

    #[test]
    fn non_nohdr_headers_are_disjoint_across_layers() {
        // total_buggy is a variant implementation of total; it shares
        // total's namespace by design and is excluded here.
        let mut owner: HashMap<&str, &str> = HashMap::new();
        for name in LAYER_NAMES.iter().filter(|n| **n != "total_buggy") {
            let mf = manifest(name).unwrap();
            for h in mf.pushes.iter().filter(|h| **h != "NoHdr") {
                if let Some(prev) = owner.insert(h, name) {
                    panic!("header {h} claimed by both {prev} and {name}");
                }
            }
        }
    }

    #[test]
    fn only_encrypt_transforms_payload() {
        for name in LAYER_NAMES {
            let mf = manifest(name).unwrap();
            assert_eq!(mf.transforms_payload, *name == "encrypt", "{name}");
        }
    }
}
