//! A single-layer test driver.
//!
//! Unit tests for each layer drive events through one layer instance in
//! isolation and assert on the emitted effects. The harness also tracks
//! requested timers so tests can fire them deterministically.
//!
//! With [`Harness::trace_into`], every handler invocation additionally
//! records a [`ensemble_obs::EventKind::HandlerRun`] span into a shared
//! flight recorder: the event is stamped with the harness's *virtual*
//! time, attributed to the layer by its [`Layer::name`], and carries the
//! wall-clock handler duration in `aux` (nanoseconds).

use crate::layer::Layer;
use ensemble_event::{DnEvent, Effects, Msg, Payload, UpEvent};
use ensemble_obs::{now_ns, Direction, Event, EventKind, Recorder, Tag};
use ensemble_util::{Rank, Time};
use std::sync::Arc;

/// Drives one layer instance and records its outputs.
pub struct Harness<L> {
    /// The layer under test.
    pub layer: L,
    /// Current virtual time supplied to handlers.
    pub now: Time,
    /// Timer deadlines the layer has requested (sorted, pending).
    pub timers: Vec<Time>,
    /// When set, handler invocations record spans here.
    obs: Option<(Arc<Recorder>, Tag)>,
}

/// The effects of one handler invocation, split by direction.
#[derive(Debug, Default)]
pub struct Out {
    /// Events emitted towards the application.
    pub up: Vec<UpEvent>,
    /// Events emitted towards the network.
    pub dn: Vec<DnEvent>,
}

impl<L: Layer> Harness<L> {
    /// Wraps `layer`, invoking its `init` hook.
    pub fn new(mut layer: L) -> Self {
        let mut fx = Effects::new();
        layer.init(Time::ZERO, &mut fx);
        let mut h = Harness {
            layer,
            now: Time::ZERO,
            timers: Vec::new(),
            obs: None,
        };
        h.absorb_timers(&mut fx);
        assert!(
            fx.peek_up().is_empty() && fx.peek_dn().is_empty(),
            "init must not emit events"
        );
        h
    }

    fn absorb_timers(&mut self, fx: &mut Effects) {
        self.timers.extend(fx.take_timers());
        self.timers.sort_unstable();
    }

    fn split(&mut self, mut fx: Effects) -> Out {
        self.absorb_timers(&mut fx);
        Out {
            up: fx.take_up(),
            dn: fx.take_dn(),
        }
    }

    /// Starts recording one [`EventKind::HandlerRun`] span per handler
    /// invocation into shard 0 of `rec`, attributed to the layer's name.
    pub fn trace_into(&mut self, rec: Arc<Recorder>) {
        let tag = rec.register(self.layer.name());
        self.obs = Some((rec, tag));
    }

    fn span(&self, dir: Direction, started_ns: u64) {
        if let Some((rec, tag)) = &self.obs {
            rec.record(
                0,
                &Event {
                    t_ns: self.now.0,
                    layer: *tag,
                    kind: EventKind::HandlerRun,
                    dir,
                    group: 0,
                    seqno: 0,
                    ccp: ensemble_obs::CcpFailure::None,
                    aux: now_ns().saturating_sub(started_ns),
                },
            );
        }
    }

    /// Sends an event down into the layer (from the layer above).
    pub fn dn(&mut self, ev: DnEvent) -> Out {
        let started = now_ns();
        let mut fx = Effects::new();
        self.layer.dn(self.now, ev, &mut fx);
        self.span(Direction::Dn, started);
        self.split(fx)
    }

    /// Sends an event up into the layer (from the layer below).
    pub fn up(&mut self, ev: UpEvent) -> Out {
        let started = now_ns();
        let mut fx = Effects::new();
        self.layer.up(self.now, ev, &mut fx);
        self.span(Direction::Up, started);
        self.split(fx)
    }

    /// Advances time to `t` and fires every timer due by then.
    pub fn advance(&mut self, t: Time) -> Out {
        self.now = t;
        let mut all = Out::default();
        while let Some(&d) = self.timers.first() {
            if d > t {
                break;
            }
            self.timers.remove(0);
            let started = now_ns();
            let mut fx = Effects::new();
            self.layer.timer(self.now, &mut fx);
            self.span(Direction::None, started);
            let out = self.split(fx);
            all.up.extend(out.up);
            all.dn.extend(out.dn);
        }
        all
    }
}

/// Builds a data-cast down event with the given payload bytes.
pub fn cast(bytes: &[u8]) -> DnEvent {
    DnEvent::Cast(Msg::data(Payload::from_slice(bytes)))
}

/// Builds a point-to-point send down event.
pub fn send(dst: u16, bytes: &[u8]) -> DnEvent {
    DnEvent::Send {
        dst: Rank(dst),
        msg: Msg::data(Payload::from_slice(bytes)),
    }
}

/// Builds an up-going cast delivery carrying `msg` from `origin`.
pub fn up_cast(origin: u16, msg: Msg) -> UpEvent {
    UpEvent::Cast {
        origin: Rank(origin),
        msg,
    }
}

/// Builds an up-going send delivery carrying `msg` from `origin`.
pub fn up_send(origin: u16, msg: Msg) -> UpEvent {
    UpEvent::Send {
        origin: Rank(origin),
        msg,
    }
}

impl Out {
    /// Asserts exactly one down event was emitted and returns it.
    pub fn sole_dn(mut self) -> DnEvent {
        assert_eq!(self.dn.len(), 1, "expected 1 dn event, got {:?}", self.dn);
        assert!(self.up.is_empty(), "unexpected up events: {:?}", self.up);
        self.dn.remove(0)
    }

    /// Asserts exactly one up event was emitted and returns it.
    pub fn sole_up(mut self) -> UpEvent {
        assert_eq!(self.up.len(), 1, "expected 1 up event, got {:?}", self.up);
        assert!(self.dn.is_empty(), "unexpected dn events: {:?}", self.dn);
        self.up.remove(0)
    }

    /// Asserts nothing was emitted.
    pub fn assert_silent(&self) {
        assert!(
            self.up.is_empty() && self.dn.is_empty(),
            "expected silence, got up={:?} dn={:?}",
            self.up,
            self.dn
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom::Bottom;
    use crate::LayerConfig;
    use ensemble_event::ViewState;

    #[test]
    fn traced_harness_records_named_handler_spans() {
        let rec = Arc::new(Recorder::new(1, 64));
        let mut h = Harness::new(Bottom::new(&ViewState::initial(3), &LayerConfig::default()));
        h.trace_into(Arc::clone(&rec));
        h.now = Time(5);
        let _ = h.dn(cast(b"m"));
        let _ = h.dn(send(2, b"m"));
        let spans = rec.drain();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            assert_eq!(s.layer, "bottom", "span carries the layer's name");
            assert_eq!(s.kind, EventKind::HandlerRun);
            assert_eq!(s.t_ns, 5, "stamped with harness virtual time");
        }
        assert!(
            spans.iter().all(|s| s.dir == Direction::Dn),
            "direction follows the handler"
        );
    }

    #[test]
    fn untraced_harness_records_nothing() {
        let mut h = Harness::new(Bottom::new(&ViewState::initial(3), &LayerConfig::default()));
        let _ = h.dn(cast(b"x"));
        assert!(h.obs.is_none());
    }
}
