//! The imperative (IMP) engine: a central event scheduler.
//!
//! §4.2: "Ensemble has a central event scheduler. It instantiates each
//! protocol layer individually, and hands events to the layers as they
//! come out of the scheduler." Events live in one reusable deque; layer
//! outputs are enqueued with their destination layer index. No allocation
//! happens per boundary crossing beyond the deque's amortized growth —
//! this is what makes IMP measurably faster than FUNC in Table 1.

use crate::engine::{Boundary, Engine};
use ensemble_event::{DnEvent, Effects, UpEvent};
use ensemble_layers::Layer;
use ensemble_util::Time;
use std::collections::VecDeque;

enum Item {
    /// Deliver as an up event to layer `idx`.
    Up(usize, UpEvent),
    /// Deliver as a down event to layer `idx`.
    Dn(usize, DnEvent),
}

/// The central-scheduler engine.
pub struct ImpEngine {
    layers: Vec<Box<dyn Layer>>,
    queue: VecDeque<Item>,
    fx: Effects,
}

impl ImpEngine {
    /// Wraps a stack (top first).
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "cannot run an empty stack");
        ImpEngine {
            layers,
            queue: VecDeque::with_capacity(64),
            fx: Effects::new(),
        }
    }

    /// The layer names, top first.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    fn route_effects(&mut self, idx: usize, out: &mut Boundary) {
        for t in self.fx.take_timers() {
            out.timers.push((idx, t));
        }
        for ev in self.fx.take_up() {
            if idx == 0 {
                out.app.push(ev);
            } else {
                self.queue.push_back(Item::Up(idx - 1, ev));
            }
        }
        for ev in self.fx.take_dn() {
            if idx + 1 == self.layers.len() {
                out.wire.push(ev);
            } else {
                self.queue.push_back(Item::Dn(idx + 1, ev));
            }
        }
    }

    fn run(&mut self, now: Time) -> Boundary {
        let mut out = Boundary::default();
        while let Some(item) = self.queue.pop_front() {
            self.fx.clear();
            match item {
                Item::Up(idx, ev) => {
                    let mut fx = std::mem::take(&mut self.fx);
                    self.layers[idx].up(now, ev, &mut fx);
                    self.fx = fx;
                    self.route_effects(idx, &mut out);
                }
                Item::Dn(idx, ev) => {
                    let mut fx = std::mem::take(&mut self.fx);
                    self.layers[idx].dn(now, ev, &mut fx);
                    self.fx = fx;
                    self.route_effects(idx, &mut out);
                }
            }
        }
        out
    }
}

impl Engine for ImpEngine {
    fn layer_count(&self) -> usize {
        self.layers.len()
    }

    fn inject_dn(&mut self, now: Time, ev: DnEvent) -> Boundary {
        self.queue.push_back(Item::Dn(0, ev));
        self.run(now)
    }

    fn inject_up(&mut self, now: Time, ev: UpEvent) -> Boundary {
        self.queue.push_back(Item::Up(self.layers.len() - 1, ev));
        self.run(now)
    }

    fn fire_timer(&mut self, now: Time, layer: usize) -> Boundary {
        let mut out = Boundary::default();
        self.fx.clear();
        let mut fx = std::mem::take(&mut self.fx);
        self.layers[layer].timer(now, &mut fx);
        self.fx = fx;
        self.route_effects(layer, &mut out);
        let rest = self.run(now);
        let mut merged = out;
        merged.merge(rest);
        merged
    }

    fn init(&mut self, now: Time) -> Boundary {
        let mut out = Boundary::default();
        for idx in 0..self.layers.len() {
            self.fx.clear();
            let mut fx = std::mem::take(&mut self.fx);
            self.layers[idx].init(now, &mut fx);
            self.fx = fx;
            self.route_effects(idx, &mut out);
        }
        let rest = self.run(now);
        out.merge(rest);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_event::{Msg, Payload, ViewState};
    use ensemble_layers::{make_stack, LayerConfig, STACK_4};

    fn engine() -> ImpEngine {
        let vs = ViewState::initial(3);
        let layers = make_stack(STACK_4, &vs, &LayerConfig::default()).unwrap();
        let mut e = ImpEngine::new(layers);
        e.init(Time::ZERO);
        e
    }

    #[test]
    fn cast_exits_the_bottom_framed() {
        let mut e = engine();
        let out = e.inject_dn(
            Time::ZERO,
            DnEvent::Cast(Msg::data(Payload::from_slice(b"hello"))),
        );
        assert_eq!(out.wire.len(), 1);
        assert!(out.app.is_empty());
        let msg = out.wire[0].msg().unwrap();
        // pt2pt, mnak, bottom each pushed one frame (`top` is the
        // application adapter and adds none).
        assert_eq!(msg.depth(), 3);
    }

    #[test]
    fn wire_cast_delivers_at_the_top() {
        let vs = ViewState::initial(3);
        // Build a sender at rank 1 and a receiver at rank 0.
        let mut sender = ImpEngine::new(
            make_stack(
                STACK_4,
                &vs.for_rank(ensemble_util::Rank(1)),
                &LayerConfig::default(),
            )
            .unwrap(),
        );
        sender.init(Time::ZERO);
        let mut receiver = engine();
        let out = sender.inject_dn(
            Time::ZERO,
            DnEvent::Cast(Msg::data(Payload::from_slice(b"hi"))),
        );
        let msg = out.wire[0].msg().unwrap().clone();
        let out = receiver.inject_up(
            Time::ZERO,
            UpEvent::Cast {
                origin: ensemble_util::Rank(1),
                msg,
            },
        );
        assert_eq!(out.app.len(), 1);
        assert_eq!(out.app[0].msg().unwrap().payload().gather(), b"hi");
    }

    #[test]
    fn send_roundtrip_produces_ack_on_wire() {
        let vs = ViewState::initial(3);
        let mut a = engine();
        let mut b = ImpEngine::new(
            make_stack(
                STACK_4,
                &vs.for_rank(ensemble_util::Rank(1)),
                &LayerConfig::default(),
            )
            .unwrap(),
        );
        b.init(Time::ZERO);
        let out = a.inject_dn(
            Time::ZERO,
            DnEvent::Send {
                dst: ensemble_util::Rank(1),
                msg: Msg::data(Payload::from_slice(b"req")),
            },
        );
        assert_eq!(out.wire.len(), 1);
        assert!(!out.timers.is_empty(), "pt2pt armed its retransmit timer");
        let msg = out.wire[0].msg().unwrap().clone();
        let out = b.inject_up(
            Time::ZERO,
            UpEvent::Send {
                origin: ensemble_util::Rank(0),
                msg,
            },
        );
        assert_eq!(out.app.len(), 1, "delivered");
        assert_eq!(out.wire.len(), 1, "explicit ack flows back");
    }

    #[test]
    fn timer_fires_retransmission() {
        let mut e = engine();
        let out = e.inject_dn(
            Time::ZERO,
            DnEvent::Send {
                dst: ensemble_util::Rank(1),
                msg: Msg::data(Payload::from_slice(b"x")),
            },
        );
        let (layer, deadline) = out.timers[0];
        let out = e.fire_timer(deadline, layer);
        assert_eq!(out.wire.len(), 1, "retransmitted through lower layers");
        assert!(!out.timers.is_empty(), "re-armed");
    }

    #[test]
    fn layer_names_reported() {
        let e = engine();
        assert_eq!(e.layer_names(), vec!["top", "pt2pt", "mnak", "bottom"]);
        assert_eq!(e.layer_count(), 4);
    }
}
