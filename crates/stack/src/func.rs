//! The functional (FUNC) engine: recursive layer composition.
//!
//! §4.2: "When two protocols are stacked on top of each other, the result
//! is a new protocol. When stacking p on top of q, one applies events
//! going down to p, and up events going up to q. The down events that come
//! out of p are applied to q, and the up events that come out of q are
//! applied to p, recursively."
//!
//! The implementation is a direct transcription: feeding an event into the
//! composition at layer `i` recursively routes each output through the
//! adjacent sub-composition. Every handler invocation allocates a fresh
//! [`Effects`] and the routing allocates intermediate vectors — the
//! composition cost the paper measures as the slowest of the three
//! configurations.

use crate::engine::{Boundary, Engine};
use ensemble_event::{DnEvent, Effects, UpEvent};
use ensemble_layers::Layer;
use ensemble_util::Time;

/// The recursive-composition engine.
pub struct FuncEngine {
    layers: Vec<Box<dyn Layer>>,
}

impl FuncEngine {
    /// Wraps a stack (top first).
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "cannot run an empty stack");
        FuncEngine { layers }
    }

    /// The layer names, top first.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Feeds a down event into the sub-composition rooted at layer `i`.
    fn dn_into(&mut self, i: usize, now: Time, ev: DnEvent) -> Boundary {
        if i >= self.layers.len() {
            return Boundary {
                wire: vec![ev],
                ..Boundary::default()
            };
        }
        // A fresh collector per invocation: the functional style.
        let mut fx = Effects::new();
        self.layers[i].dn(now, ev, &mut fx);
        self.absorb(i, now, fx)
    }

    /// Feeds an up event into the sub-composition rooted at layer `i`
    /// (entering from below).
    fn up_into(&mut self, i: usize, now: Time, ev: UpEvent) -> Boundary {
        let mut fx = Effects::new();
        self.layers[i].up(now, ev, &mut fx);
        self.absorb(i, now, fx)
    }

    /// Routes layer `i`'s outputs through the adjacent compositions.
    fn absorb(&mut self, i: usize, now: Time, mut fx: Effects) -> Boundary {
        let mut out = Boundary::default();
        for t in fx.take_timers() {
            out.timers.push((i, t));
        }
        let ups = fx.take_up();
        let dns = fx.take_dn();
        for ev in ups {
            if i == 0 {
                out.app.push(ev);
            } else {
                out.merge(self.up_into(i - 1, now, ev));
            }
        }
        for ev in dns {
            out.merge(self.dn_into(i + 1, now, ev));
        }
        out
    }
}

impl Engine for FuncEngine {
    fn layer_count(&self) -> usize {
        self.layers.len()
    }

    fn inject_dn(&mut self, now: Time, ev: DnEvent) -> Boundary {
        self.dn_into(0, now, ev)
    }

    fn inject_up(&mut self, now: Time, ev: UpEvent) -> Boundary {
        let last = self.layers.len() - 1;
        self.up_into(last, now, ev)
    }

    fn fire_timer(&mut self, now: Time, layer: usize) -> Boundary {
        let mut fx = Effects::new();
        self.layers[layer].timer(now, &mut fx);
        self.absorb(layer, now, fx)
    }

    fn init(&mut self, now: Time) -> Boundary {
        let mut out = Boundary::default();
        for i in 0..self.layers.len() {
            let mut fx = Effects::new();
            self.layers[i].init(now, &mut fx);
            out.merge(self.absorb(i, now, fx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_event::{Msg, Payload, ViewState};
    use ensemble_layers::{make_stack, LayerConfig, STACK_10, STACK_4};
    use ensemble_util::Rank;

    fn engine(names: &[&str], rank: u16) -> FuncEngine {
        let vs = ViewState::initial(3).for_rank(Rank(rank));
        let layers = make_stack(names, &vs, &LayerConfig::default()).unwrap();
        let mut e = FuncEngine::new(layers);
        e.init(Time::ZERO);
        e
    }

    #[test]
    fn cast_exits_framed() {
        let mut e = engine(STACK_4, 0);
        let out = e.inject_dn(
            Time::ZERO,
            DnEvent::Cast(Msg::data(Payload::from_slice(b"f"))),
        );
        assert_eq!(out.wire.len(), 1);
        assert_eq!(out.wire[0].msg().unwrap().depth(), 3);
    }

    #[test]
    fn ten_layer_cast_bounces_local_delivery() {
        let mut e = engine(STACK_10, 0);
        let out = e.inject_dn(
            Time::ZERO,
            DnEvent::Cast(Msg::data(Payload::from_slice(b"self"))),
        );
        // `local` bounced a copy that travelled back to the app through
        // total ordering (rank 0 is the sequencer, so it orders its own
        // cast immediately).
        assert_eq!(out.app.len(), 1, "self delivery: {:?}", out.app);
        assert_eq!(out.app[0].msg().unwrap().payload().gather(), b"self");
        assert_eq!(out.wire.len(), 1, "network copy: {:?}", out.wire);
        assert_eq!(out.wire[0].msg().unwrap().depth(), 10);
    }

    #[test]
    fn func_and_imp_agree_on_wire_output() {
        use crate::imp::ImpEngine;
        let vs = ViewState::initial(3);
        let cfg = LayerConfig::default();
        let mut f = FuncEngine::new(make_stack(STACK_4, &vs, &cfg).unwrap());
        let mut i = ImpEngine::new(make_stack(STACK_4, &vs, &cfg).unwrap());
        f.init(Time::ZERO);
        i.init(Time::ZERO);
        for k in 0..20u8 {
            let ev = DnEvent::Cast(Msg::data(Payload::from_slice(&[k])));
            let bf = f.inject_dn(Time::ZERO, ev.clone());
            let bi = i.inject_dn(Time::ZERO, ev);
            assert_eq!(bf.wire, bi.wire, "configurations must be equivalent");
            assert_eq!(bf.app, bi.app);
        }
    }

    #[test]
    fn func_and_imp_agree_on_delivery() {
        use crate::imp::ImpEngine;
        let vs = ViewState::initial(3);
        let cfg = LayerConfig::default();
        // A sender produces real wire messages to feed both receivers.
        let mut sender = FuncEngine::new(make_stack(STACK_4, &vs.for_rank(Rank(1)), &cfg).unwrap());
        sender.init(Time::ZERO);
        let mut f = FuncEngine::new(make_stack(STACK_4, &vs, &cfg).unwrap());
        let mut i = ImpEngine::new(make_stack(STACK_4, &vs, &cfg).unwrap());
        f.init(Time::ZERO);
        i.init(Time::ZERO);
        for k in 0..20u8 {
            let out = sender.inject_dn(
                Time::ZERO,
                DnEvent::Cast(Msg::data(Payload::from_slice(&[k]))),
            );
            let msg = out.wire[0].msg().unwrap().clone();
            let up = |m: Msg| UpEvent::Cast {
                origin: Rank(1),
                msg: m,
            };
            let bf = f.inject_up(Time::ZERO, up(msg.clone()));
            let bi = i.inject_up(Time::ZERO, up(msg));
            assert_eq!(bf.app, bi.app);
            assert_eq!(bf.wire, bi.wire);
            assert_eq!(bf.app.len(), 1);
        }
    }
}
