//! The execution-engine interface shared by the IMP and FUNC compositions.

use ensemble_event::{DnEvent, UpEvent};
use ensemble_layers::Layer;
use ensemble_util::Time;

/// Which composition engine runs a stack.
///
/// Shared by every harness that executes stacks — the deterministic
/// simulator (`ensemble::sim`) and the real-socket runtime
/// (`ensemble-runtime`) — so the two can be swapped without touching
/// application code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Central event scheduler (the paper's imperative configuration).
    Imp,
    /// Recursive functional composition.
    Func,
}

impl EngineKind {
    /// Binds `layers` to this execution strategy.
    pub fn build(self, layers: Vec<Box<dyn Layer>>) -> Box<dyn Engine> {
        match self {
            EngineKind::Imp => Box::new(crate::ImpEngine::new(layers)),
            EngineKind::Func => Box::new(crate::FuncEngine::new(layers)),
        }
    }
}

/// Events that crossed the stack boundary during processing.
#[derive(Debug, Default)]
pub struct Boundary {
    /// Events that exited the top of the stack (application deliveries,
    /// views, blocks, …).
    pub app: Vec<UpEvent>,
    /// Message events that exited the bottom (bound for the transport).
    pub wire: Vec<DnEvent>,
    /// Timer requests: `(layer index, deadline)`.
    pub timers: Vec<(usize, Time)>,
}

impl Boundary {
    /// Merges another boundary's events into this one, preserving order.
    pub fn merge(&mut self, other: Boundary) {
        self.app.extend(other.app);
        self.wire.extend(other.wire);
        self.timers.extend(other.timers);
    }

    /// Whether nothing crossed the boundary.
    pub fn is_empty(&self) -> bool {
        self.app.is_empty() && self.wire.is_empty() && self.timers.is_empty()
    }
}

/// A protocol stack bound to an execution strategy.
///
/// Both engines run events to quiescence: an `inject_*` call returns only
/// when every internally generated event has been consumed or has crossed
/// a boundary.
pub trait Engine {
    /// Number of layers in the stack.
    fn layer_count(&self) -> usize;

    /// Injects an application event at the top (e.g. a cast).
    fn inject_dn(&mut self, now: Time, ev: DnEvent) -> Boundary;

    /// Injects a network event at the bottom (an unmarshaled delivery).
    fn inject_up(&mut self, now: Time, ev: UpEvent) -> Boundary;

    /// Fires a previously requested timer of `layer`.
    fn fire_timer(&mut self, now: Time, layer: usize) -> Boundary;

    /// Runs every layer's `init` hook, collecting initial timers.
    fn init(&mut self, now: Time) -> Boundary;
}
