//! Property-driven stack selection.
//!
//! §3.2: "the Ensemble system contains an algorithm for calculating stacks
//! given the set of properties that an application requires. This
//! algorithm encodes knowledge of the protocol designers." This module is
//! that algorithm for our layer library: each requested [`Property`] pulls
//! in the layers that implement it plus their prerequisites, and the
//! result is ordered by the canonical layer ordering.

use std::collections::BTreeSet;

/// Application-visible protocol properties (the heuristic "knows about
/// approximately two dozen different properties"; these are ours).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Property {
    /// Reliable multicast (no loss, no duplication).
    ReliableCast,
    /// Reliable FIFO point-to-point messages.
    ReliableSend,
    /// Per-source FIFO ordering of casts.
    Fifo,
    /// A single agreed total order on casts.
    TotalOrder,
    /// Delivery of a member's own casts back to itself.
    LocalDelivery,
    /// Arbitrary-size messages (fragmentation/reassembly).
    BigMessages,
    /// Sender-side multicast flow control.
    CastFlowControl,
    /// Sender-side point-to-point flow control.
    SendFlowControl,
    /// Buffer reclamation via stability tracking.
    Stability,
    /// Heartbeat failure detection.
    FailureDetection,
    /// Automatic view changes on failure (implies virtual synchrony).
    Membership,
    /// All members deliver the same casts in a closing view.
    VirtualSynchrony,
    /// Per-message integrity MACs.
    Integrity,
    /// Payload confidentiality.
    Privacy,
}

/// The canonical top-to-bottom ordering of every layer the selector can
/// emit. Correctness constraints are encoded positionally — e.g. `total`
/// must sit above `local` (so a member's own casts are ordered) and
/// `frag` above the flow-control layers (windows count fragments).
const CANONICAL: &[&str] = &[
    "top",
    "gmp",
    "sync",
    "elect",
    "suspect",
    "partial_appl",
    "total",
    "local",
    "sign",
    "encrypt",
    "frag",
    "collect",
    "pt2ptw",
    "mflow",
    "pt2pt",
    "mnak",
    "bottom",
];

/// Computes the stack (top first) providing the requested properties.
///
/// # Examples
///
/// ```
/// use ensemble_stack::{select_stack, Property};
/// let names = select_stack(&[Property::TotalOrder]);
/// let t = names.iter().position(|n| *n == "total").unwrap();
/// let l = names.iter().position(|n| *n == "local").unwrap();
/// assert!(t < l, "total must order the loopback deliveries");
/// ```
pub fn select_stack(props: &[Property]) -> Vec<&'static str> {
    let mut want: BTreeSet<Property> = props.iter().copied().collect();

    // Property implications, applied to a fixed point.
    loop {
        let mut grew = false;
        let snapshot: Vec<Property> = want.iter().copied().collect();
        for p in snapshot {
            let implied: &[Property] = match p {
                Property::TotalOrder => &[
                    Property::ReliableCast,
                    Property::Fifo,
                    Property::LocalDelivery,
                ],
                Property::Fifo => &[Property::ReliableCast],
                Property::LocalDelivery => &[Property::ReliableCast],
                Property::Integrity | Property::Privacy => &[Property::ReliableCast],
                Property::BigMessages => &[Property::ReliableCast],
                Property::VirtualSynchrony => &[
                    Property::Membership,
                    Property::ReliableCast,
                    Property::ReliableSend,
                ],
                Property::Membership => &[
                    Property::FailureDetection,
                    Property::VirtualSynchrony,
                    Property::ReliableSend,
                ],
                Property::ReliableCast => &[Property::Stability, Property::ReliableSend],
                Property::Stability => &[Property::ReliableCast],
                Property::CastFlowControl => &[Property::ReliableCast],
                Property::SendFlowControl => &[Property::ReliableSend],
                _ => &[],
            };
            for &i in implied {
                grew |= want.insert(i);
            }
        }
        if !grew {
            break;
        }
    }

    let mut names: BTreeSet<&'static str> = ["top", "bottom", "partial_appl"].into_iter().collect();
    for p in &want {
        let layers: &[&'static str] = match p {
            Property::ReliableCast | Property::Fifo => &["mnak"],
            Property::ReliableSend => &["pt2pt"],
            Property::TotalOrder => &["total"],
            Property::LocalDelivery => &["local"],
            Property::BigMessages => &["frag"],
            Property::CastFlowControl => &["mflow"],
            Property::SendFlowControl => &["pt2ptw"],
            Property::Stability => &["collect"],
            Property::FailureDetection => &["suspect"],
            Property::Membership => &["gmp", "elect"],
            Property::VirtualSynchrony => &["sync"],
            Property::Integrity => &["sign"],
            Property::Privacy => &["encrypt"],
        };
        names.extend(layers);
    }

    CANONICAL
        .iter()
        .copied()
        .filter(|n| names.contains(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(stack: &[&str], name: &str) -> usize {
        stack
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from {stack:?}"))
    }

    #[test]
    fn minimal_request_yields_minimal_stack() {
        let s = select_stack(&[]);
        assert_eq!(s, vec!["top", "partial_appl", "bottom"]);
    }

    #[test]
    fn reliable_cast_pulls_stability() {
        let s = select_stack(&[Property::ReliableCast]);
        assert!(s.contains(&"mnak"));
        assert!(s.contains(&"collect"), "stability implied: {s:?}");
        assert!(s.contains(&"pt2pt"), "NAK repairs travel pt2pt: {s:?}");
    }

    #[test]
    fn total_order_stack_is_well_ordered() {
        let s = select_stack(&[Property::TotalOrder, Property::BigMessages]);
        assert!(pos(&s, "total") < pos(&s, "local"));
        assert!(pos(&s, "local") < pos(&s, "frag"));
        assert!(pos(&s, "frag") < pos(&s, "mnak"));
        assert!(pos(&s, "collect") < pos(&s, "mnak"));
        assert_eq!(*s.last().unwrap(), "bottom");
        assert_eq!(s[0], "top");
    }

    #[test]
    fn membership_closure() {
        let s = select_stack(&[Property::Membership]);
        for needed in ["gmp", "sync", "elect", "suspect", "mnak", "pt2pt"] {
            assert!(s.contains(&needed), "{needed} missing from {s:?}");
        }
        assert!(pos(&s, "gmp") < pos(&s, "sync"));
        assert!(pos(&s, "sync") < pos(&s, "elect"));
        assert!(pos(&s, "elect") < pos(&s, "suspect"));
    }

    #[test]
    fn security_layers_sit_between_local_and_frag() {
        let s = select_stack(&[
            Property::TotalOrder,
            Property::Integrity,
            Property::Privacy,
            Property::BigMessages,
        ]);
        assert!(pos(&s, "local") < pos(&s, "sign"));
        assert!(pos(&s, "sign") < pos(&s, "encrypt"));
        assert!(pos(&s, "encrypt") < pos(&s, "frag"));
    }

    #[test]
    fn flow_control_selection() {
        let s = select_stack(&[Property::CastFlowControl, Property::SendFlowControl]);
        assert!(pos(&s, "pt2ptw") < pos(&s, "mflow"));
        assert!(pos(&s, "mflow") < pos(&s, "pt2pt"));
    }

    #[test]
    fn selection_is_deterministic() {
        let a = select_stack(&[Property::Membership, Property::TotalOrder]);
        let b = select_stack(&[Property::TotalOrder, Property::Membership]);
        assert_eq!(a, b);
    }
}
