//! Above/Below interface compatibility checking.
//!
//! §3.2: "For each micro-protocol p, we present two abstract
//! specifications, p.Above and p.Below. … When proving the correctness of
//! a stack … we can limit ourselves to showing that, for each pair p and q
//! of adjacent protocol layers (p below q), every execution of p.Above is
//! also an execution of q.Below and vice versa."
//!
//! Here each layer declares, for each traffic kind (casts and sends
//! separately — a layer like `pt2pt` strengthens one without touching the
//! other), the abstract behaviour it *requires* from below and the
//! behaviour it *adds* above, as points in a refinement lattice. A stack
//! type-checks when, walking bottom-up, the behaviour provided so far
//! satisfies each layer's requirement. The executable counterparts of
//! these specifications (and the bounded refinement checker relating
//! them) live in `ensemble-ioa`.

use std::fmt;

/// Abstract per-kind network behaviours, ordered by strength.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecId {
    /// Messages may be lost, duplicated, and reordered (Figure 2(b)).
    LossyNet,
    /// No loss or duplication; per-source FIFO (Figure 2(a), per source).
    ReliableFifo,
    /// ReliableFifo + a member's own casts are delivered locally.
    ReliableFifoLocal,
    /// One agreed total order on casts across all members.
    TotalOrderNet,
    /// TotalOrderNet-compatible + virtually synchronous views.
    VirtualSynchrony,
}

impl SpecId {
    /// Refinement: every execution of `self` is one of `weaker`.
    pub fn satisfies(self, weaker: SpecId) -> bool {
        self >= weaker
    }
}

impl fmt::Display for SpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One layer's interface declaration.
#[derive(Clone, Copy, Debug)]
pub struct Iface {
    /// Behaviour required of casts arriving from below.
    pub req_casts: SpecId,
    /// Behaviour required of sends arriving from below.
    pub req_sends: SpecId,
    /// Behaviour this layer upgrades casts to (if any).
    pub adds_casts: Option<SpecId>,
    /// Behaviour this layer upgrades sends to (if any).
    pub adds_sends: Option<SpecId>,
}

const fn transparent(req_casts: SpecId, req_sends: SpecId) -> Iface {
    Iface {
        req_casts,
        req_sends,
        adds_casts: None,
        adds_sends: None,
    }
}

/// The `(Below, Above)` declaration of one layer, or `None` if unknown.
pub fn interface(layer: &str) -> Option<Iface> {
    use SpecId::*;
    Some(match layer {
        "bottom" => Iface {
            req_casts: LossyNet,
            req_sends: LossyNet,
            adds_casts: Some(LossyNet),
            adds_sends: Some(LossyNet),
        },
        // The retransmission protocols tolerate a lossy substrate — that
        // is their whole point — and upgrade their own traffic kind.
        "mnak" => Iface {
            req_casts: LossyNet,
            req_sends: LossyNet,
            adds_casts: Some(ReliableFifo),
            adds_sends: None,
        },
        "pt2pt" => Iface {
            req_casts: LossyNet,
            req_sends: LossyNet,
            adds_casts: None,
            adds_sends: Some(ReliableFifo),
        },
        // Flow control assumes its traffic kind is reliable (credits must
        // not be silently lost forever; cumulative grants ride sends).
        "pt2ptw" => transparent(LossyNet, ReliableFifo),
        "mflow" => transparent(ReliableFifo, ReliableFifo),
        // Fragmentation cannot tolerate lost pieces.
        "frag" => transparent(ReliableFifo, ReliableFifo),
        // Stability counts must be gap-free.
        "collect" | "stable" => transparent(ReliableFifo, LossyNet),
        "local" => Iface {
            req_casts: ReliableFifo,
            req_sends: LossyNet,
            adds_casts: Some(ReliableFifoLocal),
            adds_sends: None,
        },
        "total" | "total_buggy" => Iface {
            req_casts: ReliableFifoLocal,
            req_sends: LossyNet,
            adds_casts: Some(TotalOrderNet),
            adds_sends: None,
        },
        // Membership: view agreement rides reliable casts.
        "gmp" => Iface {
            req_casts: ReliableFifo,
            req_sends: LossyNet,
            adds_casts: Some(VirtualSynchrony),
            adds_sends: None,
        },
        "sync" => transparent(ReliableFifo, LossyNet),
        // Security layers and adapters work over anything.
        "sign" | "encrypt" | "partial_appl" | "suspect" | "elect" | "top" => {
            transparent(LossyNet, LossyNet)
        }
        _ => return None,
    })
}

/// A configuration error found by the interface check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompatError {
    /// A layer has no registered interface.
    Unknown(String),
    /// Layer `upper` requires more than the layers below provide.
    Mismatch {
        /// The layer on top.
        upper: String,
        /// Which traffic kind is under-provided.
        kind: &'static str,
        /// What it requires from below.
        requires: SpecId,
        /// What the layers underneath provide.
        provides: SpecId,
        /// The layer that last strengthened this kind (the strongest
        /// provider underneath `upper`).
        below: String,
    },
    /// The stack does not end in `bottom`.
    NoBottom,
}

impl fmt::Display for CompatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatError::Unknown(n) => write!(f, "layer {n:?} has no interface declaration"),
            CompatError::Mismatch {
                upper,
                kind,
                requires,
                provides,
                below,
            } => write!(
                f,
                "{upper} requires {requires} {kind} below, but {below} provides only {provides}"
            ),
            CompatError::NoBottom => write!(f, "stack must terminate in `bottom`"),
        }
    }
}

impl std::error::Error for CompatError {}

/// Checks every adjacent pair of the stack (top first) for interface
/// compatibility.
///
/// # Examples
///
/// ```
/// use ensemble_stack::check_stack;
/// assert!(check_stack(&["top", "pt2pt", "mnak", "bottom"]).is_ok());
/// // `total` above plain `mnak` lacks local delivery:
/// assert!(check_stack(&["top", "total", "mnak", "bottom"]).is_err());
/// ```
pub fn check_stack(names: &[&str]) -> Result<(), CompatError> {
    if names.last() != Some(&"bottom") {
        return Err(CompatError::NoBottom);
    }
    // Walk bottom-up, tracking the strongest behaviour provided per kind
    // and which layer last strengthened it (for diagnostics).
    let mut casts = SpecId::LossyNet;
    let mut sends = SpecId::LossyNet;
    let mut casts_by = "bottom";
    let mut sends_by = "bottom";
    for (i, name) in names.iter().enumerate().rev() {
        let iface = interface(name).ok_or_else(|| CompatError::Unknown((*name).to_owned()))?;
        let is_bottom = i == names.len() - 1;
        if !is_bottom {
            if !casts.satisfies(iface.req_casts) {
                return Err(CompatError::Mismatch {
                    upper: (*name).to_owned(),
                    kind: "casts",
                    requires: iface.req_casts,
                    provides: casts,
                    below: casts_by.to_owned(),
                });
            }
            if !sends.satisfies(iface.req_sends) {
                return Err(CompatError::Mismatch {
                    upper: (*name).to_owned(),
                    kind: "sends",
                    requires: iface.req_sends,
                    provides: sends,
                    below: sends_by.to_owned(),
                });
            }
        }
        if let Some(a) = iface.adds_casts {
            if a > casts {
                casts = a;
                casts_by = name;
            }
        }
        if let Some(a) = iface.adds_sends {
            if a > sends {
                sends = a;
                sends_by = name;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{select_stack, Property};
    use ensemble_layers::{STACK_10, STACK_4, STACK_VSYNC};

    #[test]
    fn lattice_orientation() {
        assert!(SpecId::ReliableFifo.satisfies(SpecId::LossyNet));
        assert!(!SpecId::LossyNet.satisfies(SpecId::ReliableFifo));
        assert!(SpecId::TotalOrderNet.satisfies(SpecId::ReliableFifoLocal));
        assert!(SpecId::VirtualSynchrony.satisfies(SpecId::ReliableFifo));
    }

    #[test]
    fn presets_type_check() {
        check_stack(STACK_4).unwrap();
        check_stack(STACK_10).unwrap();
        check_stack(STACK_VSYNC).unwrap();
    }

    #[test]
    fn selected_stacks_type_check() {
        for props in [
            vec![],
            vec![Property::TotalOrder],
            vec![Property::Membership],
            vec![Property::SendFlowControl],
            vec![
                Property::TotalOrder,
                Property::BigMessages,
                Property::Privacy,
            ],
        ] {
            let s = select_stack(&props);
            check_stack(&s).unwrap_or_else(|e| panic!("{props:?} → {s:?}: {e}"));
        }
    }

    #[test]
    fn total_without_local_rejected() {
        let err = check_stack(&["top", "total", "mnak", "bottom"]).unwrap_err();
        match &err {
            CompatError::Mismatch {
                upper,
                kind,
                requires,
                provides,
                below,
            } => {
                assert_eq!(upper, "total");
                assert_eq!(kind, &"casts");
                assert_eq!(*requires, SpecId::ReliableFifoLocal);
                assert_eq!(*provides, SpecId::ReliableFifo);
                assert_eq!(below, "mnak");
            }
            other => panic!("{other:?}"),
        }
        // The message names both layers and the unmet SpecId.
        let msg = err.to_string();
        assert!(msg.contains("total"), "{msg}");
        assert!(msg.contains("mnak"), "{msg}");
        assert!(msg.contains("ReliableFifoLocal"), "{msg}");
    }

    #[test]
    fn total_above_lossy_rejected() {
        // No mnak at all: total over a lossy network is unsound. The
        // strongest cast provider is bare `bottom`.
        let err = check_stack(&["top", "total", "local", "bottom"]).unwrap_err();
        match &err {
            CompatError::Mismatch {
                upper,
                requires,
                provides,
                below,
                ..
            } => {
                // `local` is the first layer (bottom-up) whose requirement
                // fails: it needs ReliableFifo casts over bare bottom.
                assert_eq!(upper, "local");
                assert_eq!(*requires, SpecId::ReliableFifo);
                assert_eq!(*provides, SpecId::LossyNet);
                assert_eq!(below, "bottom");
            }
            other => panic!("{other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("local") && msg.contains("bottom"), "{msg}");
        assert!(msg.contains("ReliableFifo"), "{msg}");
    }

    #[test]
    fn pt2ptw_over_mnak_names_the_send_provider() {
        // pt2ptw needs reliable *sends*; mnak only upgrades casts, so the
        // strongest send provider is still `bottom`.
        let err = check_stack(&["top", "pt2ptw", "mnak", "bottom"]).unwrap_err();
        match &err {
            CompatError::Mismatch {
                upper, kind, below, ..
            } => {
                assert_eq!(upper, "pt2ptw");
                assert_eq!(kind, &"sends");
                assert_eq!(below, "bottom");
            }
            other => panic!("{other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("pt2ptw") && msg.contains("bottom") && msg.contains("ReliableFifo"),
            "{msg}"
        );
    }

    #[test]
    fn frag_over_pt2pt_only_names_pt2pt_for_casts() {
        // frag needs reliable casts too; pt2pt upgrades only sends.
        let err = check_stack(&["top", "frag", "pt2pt", "bottom"]).unwrap_err();
        match &err {
            CompatError::Mismatch {
                upper, kind, below, ..
            } => {
                assert_eq!(upper, "frag");
                assert_eq!(kind, &"casts");
                assert_eq!(below, "bottom");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frag_needs_reliability_for_its_kind() {
        // frag over raw bottom: pieces could vanish.
        assert!(check_stack(&["top", "frag", "bottom"]).is_err());
        // With both reliable layers underneath it is fine.
        check_stack(&["top", "frag", "pt2pt", "mnak", "bottom"]).unwrap();
    }

    #[test]
    fn pt2ptw_needs_reliable_sends_only() {
        check_stack(&["top", "pt2ptw", "pt2pt", "bottom"]).unwrap();
        assert!(check_stack(&["top", "pt2ptw", "mnak", "bottom"]).is_err());
    }

    #[test]
    fn missing_bottom_rejected() {
        assert_eq!(
            check_stack(&["top", "mnak"]).unwrap_err(),
            CompatError::NoBottom
        );
    }

    #[test]
    fn unknown_layer_rejected() {
        assert!(matches!(
            check_stack(&["top", "mystery", "bottom"]).unwrap_err(),
            CompatError::Unknown(_)
        ));
    }

    #[test]
    fn strengthening_is_preserved_through_transparent_layers() {
        check_stack(&[
            "top",
            "partial_appl",
            "total",
            "local",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
        ])
        .unwrap();
    }
}
