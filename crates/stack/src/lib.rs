//! Stack composition and execution.
//!
//! The paper benchmarks the same layer stacks under different composition
//! mechanisms (§4.2). This crate provides:
//!
//! * [`ImpEngine`] — the *imperative* configuration: a central event
//!   scheduler owning one queue, dispatching events to layers in place
//!   with reused buffers;
//! * [`FuncEngine`] — the *functional* configuration: layers composed
//!   recursively, each boundary crossing allocating fresh event vectors
//!   (stacking `p` on `q` yields a new protocol whose up/down events are
//!   routed through both, exactly as described in §4.2);
//! * [`select_stack`] — the property-driven stack selection heuristic
//!   ("the Ensemble system contains an algorithm for calculating stacks
//!   given the set of properties that an application requires", §3.2);
//! * [`check_stack`] — the Above/Below interface compatibility check of
//!   §3.2: for each adjacent pair `p` below `q`, the behaviour `p`
//!   provides must satisfy the behaviour `q` requires.

#![forbid(unsafe_code)]

pub mod compat;
pub mod engine;
pub mod func;
pub mod imp;
pub mod select;

pub use compat::{check_stack, CompatError, SpecId};
pub use engine::{Boundary, Engine, EngineKind};
pub use func::FuncEngine;
pub use imp::ImpEngine;
pub use select::{select_stack, Property};
