//! Crash/restart recovery through the real replica path.
//!
//! Both tests form a three-replica durable group on fault-injecting
//! [`MemDisk`]s, kill a replica without ceremony ([`KvReplica::kill`]:
//! no courtesy WAL flush), tear the disk ([`MemDisk::crash`]), and
//! restart the replica on a reincarnated endpoint from the same disk.
//! They differ in what the disk does to the WAL:
//!
//! * **Quiet crash** — the group quiesced and the WAL fully synced
//!   before the kill, so recovery reproduces the exact group state and
//!   the rejoin Hello's resume hint makes the coordinator *skip* the
//!   snapshot (state-transfer fast path, visible as the rejoiner's
//!   `snapshots_skipped` metric).
//! * **Torn crash** — the victim's disk fails every fsync, so its whole
//!   WAL rides the volatile buffer and the crash tears it to a seeded
//!   prefix. Recovery lands strictly behind the group, the hint does
//!   not cover the coordinator's version, and the rejoiner catches up
//!   by snapshot transfer (`snapshots_installed`).
//!
//! Either way the run must end with every replica applying the same
//! operations at the same commit indices and the offline
//! linearizability replay (including the recovery invariants) clean.

use ensemble_kv::{
    KvConfig, KvLinearizabilityChecker, KvOp, KvReplica, KvResult, MemDisk, StorageFaults, Wal,
};
use ensemble_runtime::{FaultPlan, LoopbackHub};
use ensemble_util::Endpoint;
use std::time::{Duration, Instant};

const REPLICAS: usize = 3;
const VICTIM: usize = 2;
const OPS: u64 = 40;

fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Forms the durable group, one WAL per replica on its own disk.
fn form_group(control: &LoopbackHub, data: &LoopbackHub, disks: &[MemDisk]) -> Vec<KvReplica> {
    let seed_ep = Endpoint::new(0);
    let mut formers = Vec::new();
    for i in 0..REPLICAS as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = KvConfig::new(REPLICAS);
        let disk = disks[i as usize].clone();
        formers.push(std::thread::spawn(move || {
            let wal = Wal::on_mem_disk(&disk, &format!("r{i}"), cfg.wal);
            KvReplica::form_durable(ep, seed_ep, cfg, Box::new(c), Box::new(d), wal).map(|(r, _)| r)
        }));
    }
    formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("replica rendezvous completes"))
        .collect()
}

/// Commits `n` Sets through `front`-replica 0 and waits until every
/// live replica has applied them.
fn push_ops(replicas: &[&KvReplica], n: u64, from_ci: u64) {
    let front = replicas[0].front();
    for i in 0..n {
        let op = KvOp::Set(
            format!("key-{}", i % 8).into_bytes(),
            format!("v{}", from_ci + i).into_bytes(),
        );
        if let KvResult::Err(e) = front.submit_timeout(&op, Duration::from_secs(5)) {
            panic!("set {} rejected: {e:?}", from_ci + i);
        }
    }
    wait_for(
        "all replicas apply the batch",
        Duration::from_secs(20),
        || {
            replicas
                .iter()
                .all(|r| r.commit_log().last().map(|(ci, _)| *ci) >= Some(from_ci + n))
        },
    );
}

/// Kills the victim, waits for the survivors to evict its incarnation,
/// and restarts it from its own disk. Returns the reborn replica and
/// its recovered commit index.
fn crash_and_restart(
    control: &LoopbackHub,
    data: &LoopbackHub,
    disks: &[MemDisk],
    victim: KvReplica,
    survivors: &[&KvReplica],
) -> (KvReplica, u64) {
    let old_ep = victim.endpoint();
    victim.kill();
    disks[VICTIM].crash();
    // Restarting earlier risks the coordinator folding the
    // not-yet-suspected corpse into the rejoin merge flush.
    wait_for(
        "survivors evict the dead incarnation",
        Duration::from_secs(30),
        || {
            survivors.iter().all(|r| {
                r.view()
                    .is_some_and(|v| v.nmembers() == REPLICAS - 1 && !v.members.contains(&old_ep))
            })
        },
    );
    let reborn = old_ep.reincarnate();
    let (c, d) = (control.attach(reborn), data.attach(reborn));
    let mut cfg = KvConfig::new(REPLICAS);
    cfg.cluster.join_deadline = Duration::from_secs(30);
    cfg.cluster.form_timeout = Duration::from_secs(30);
    let wal = Wal::on_mem_disk(&disks[VICTIM], &format!("r{VICTIM}"), cfg.wal);
    let (replica, report) =
        KvReplica::form_durable(reborn, Endpoint::new(0), cfg, Box::new(c), Box::new(d), wal)
            .expect("restarted replica rejoins");
    wait_for("reborn replica serves", Duration::from_secs(30), || {
        replica.is_serving()
    });
    (replica, report.recovered_ci())
}

/// Replays the whole execution — the survivors' logs, the victim's
/// pre-crash log, the reborn instance's log, and the recovery itself —
/// through the linearizability checker.
fn replay_clean(
    survivors: &[&KvReplica],
    pre_crash: Vec<(u64, KvOp)>,
    reborn: &KvReplica,
    recovered_ci: u64,
) {
    let mut checker = KvLinearizabilityChecker::new();
    for r in survivors {
        let id = r.endpoint().id();
        for (ci, op) in r.commit_log() {
            checker.on_commit(id, ci, op);
        }
    }
    let victim_id = reborn.endpoint().id();
    for (ci, op) in pre_crash {
        checker.on_commit(victim_id, ci, op);
    }
    checker.on_recovery(victim_id, recovered_ci);
    for (ci, op) in reborn.commit_log() {
        checker.on_commit(victim_id, ci, op);
    }
    let violations = checker.finish();
    assert!(
        violations.is_empty(),
        "recovery violations:\n{}",
        violations.join("\n")
    );
}

#[test]
fn quiet_crash_recovers_exactly_and_skips_the_snapshot() {
    let control = LoopbackHub::with_faults(11, FaultPlan::default());
    let data = LoopbackHub::with_faults(11 ^ 0x5EED, FaultPlan::default());
    let disks: Vec<MemDisk> = (0..REPLICAS as u64)
        .map(|i| MemDisk::new(11 ^ i, StorageFaults::clean()))
        .collect();
    let mut replicas = form_group(&control, &data, &disks);

    let all: Vec<&KvReplica> = replicas.iter().collect();
    push_ops(&all, OPS, 0);
    drop(all);
    // The idle tick force-flushes the group-commit tail; once the
    // victim's disk has no volatile bytes the WAL covers all OPS
    // records and the crash can destroy nothing.
    wait_for("victim WAL fully synced", Duration::from_secs(10), || {
        disks[VICTIM].pending_len() == 0
    });

    let victim = replicas.remove(VICTIM);
    let pre_crash = victim.commit_log();
    let survivors: Vec<&KvReplica> = replicas.iter().collect();
    let (reborn, recovered_ci) = crash_and_restart(&control, &data, &disks, victim, &survivors);

    // Recovery reproduced the exact pre-crash state from the local log
    // alone, so the rejoin took the state-transfer fast path: the
    // resume hint covered the coordinator's version and no snapshot
    // crossed the wire.
    assert_eq!(recovered_ci, OPS, "quiet crash loses nothing");
    wait_for("fast path recorded", Duration::from_secs(10), || {
        reborn
            .metrics()
            .snapshots_skipped
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    });
    assert_eq!(
        reborn
            .metrics()
            .snapshots_installed
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "a caught-up rejoiner must not be shipped a snapshot"
    );

    // The reborn member participates fully in post-rejoin traffic.
    let group: Vec<&KvReplica> = replicas.iter().chain(std::iter::once(&reborn)).collect();
    push_ops(&group, 10, OPS);
    replay_clean(&survivors, pre_crash, &reborn, recovered_ci);
}

#[test]
fn torn_crash_recovers_a_prefix_and_catches_up_by_snapshot() {
    let control = LoopbackHub::with_faults(23, FaultPlan::default());
    let data = LoopbackHub::with_faults(23 ^ 0x5EED, FaultPlan::default());
    // The victim's disk fails every fsync, so its entire WAL stays in
    // the volatile buffer; the crash then tears it to a seeded prefix.
    let disks: Vec<MemDisk> = (0..REPLICAS)
        .map(|i| {
            let faults = if i == VICTIM {
                StorageFaults {
                    fsync_fail_p: 1.0,
                    torn_tail_p: 1.0,
                    ..StorageFaults::clean()
                }
            } else {
                StorageFaults::clean()
            };
            MemDisk::new(23 ^ i as u64, faults)
        })
        .collect();
    let mut replicas = form_group(&control, &data, &disks);

    let all: Vec<&KvReplica> = replicas.iter().collect();
    push_ops(&all, OPS, 0);
    drop(all);
    assert!(
        disks[VICTIM].pending_len() > 0,
        "every fsync failed, the victim's WAL must be volatile"
    );

    let victim = replicas.remove(VICTIM);
    let pre_crash = victim.commit_log();
    let survivors: Vec<&KvReplica> = replicas.iter().collect();
    let (reborn, recovered_ci) = crash_and_restart(&control, &data, &disks, victim, &survivors);

    // The torn WAL recovers only a prefix, the resume hint falls short
    // of the coordinator's version, and the grant ships the full map.
    assert!(
        recovered_ci < OPS,
        "torn tail must lose records (recovered {recovered_ci} of {OPS})"
    );
    wait_for(
        "snapshot transfer recorded",
        Duration::from_secs(10),
        || {
            reborn
                .metrics()
                .snapshots_installed
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        },
    );

    let group: Vec<&KvReplica> = replicas.iter().chain(std::iter::once(&reborn)).collect();
    push_ops(&group, 10, OPS);
    replay_clean(&survivors, pre_crash, &reborn, recovered_ci);
}
