//! End-to-end chaos gate: 3 replicas, 100 concurrent simulated clients,
//! a seeded split → minority-stall → heal → merge schedule under the
//! load, and an offline linearizability replay of the whole execution.
//!
//! This is the library-level twin of the `kv_load --chaos` CI run: it
//! proves the service keeps a linearizable history while the membership
//! underneath it fractures and heals.

use ensemble_kv::{
    KvConfig, KvError, KvLinearizabilityChecker, KvOp, KvReplica, KvResult, ReplicaFront,
};
use ensemble_runtime::{FaultPlan, LoopbackHub};
use ensemble_util::{DetRng, Endpoint};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REPLICAS: usize = 3;
const CLIENTS: usize = 100;
const OPS_PER_CLIENT: usize = 10;
const SEED: u64 = 42;
const CHAOS_ROUNDS: u32 = 2;

fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn next_op(rng: &mut DetRng, client: usize) -> KvOp {
    // A 64-key space shared by 100 clients: collisions and CAS races
    // are the point — they give the replay something to refute.
    let key = format!("key-{}", rng.below(64)).into_bytes();
    let val = format!("c{client}-{}", rng.next_u64() & 0xffff).into_bytes();
    match rng.below(100) {
        0..=44 => KvOp::Set(key, val),
        45..=69 => KvOp::Get(key),
        70..=89 => KvOp::Cas {
            key,
            expect: if rng.chance(0.5) {
                None
            } else {
                Some(val.clone())
            },
            new: val,
        },
        _ => KvOp::Del(key),
    }
}

fn run_client(
    client: usize,
    fronts: &[ReplicaFront],
    chaos_done: &AtomicBool,
) -> Vec<(KvOp, KvResult)> {
    let mut rng = DetRng::new(SEED ^ (0x9E3779B97F4A7C15u64.wrapping_mul(client as u64 + 1)));
    let mut cur = client % fronts.len();
    let mut responses = Vec::new();
    let mut done = 0;
    // Hold the load until the quota is met AND the chaos schedule has
    // run: the partition must happen under real traffic.
    while done < OPS_PER_CLIENT || !chaos_done.load(Ordering::Relaxed) {
        done += 1;
        let op = next_op(&mut rng, client);
        let mut result = KvResult::Err(KvError::Closed);
        for _attempt in 0..fronts.len() * 2 {
            result = fronts[cur].submit_timeout(&op, Duration::from_secs(2));
            match result {
                KvResult::Err(KvError::NotServing) | KvResult::Err(KvError::Timeout) => {
                    cur = (cur + 1) % fronts.len();
                }
                _ => break,
            }
        }
        responses.push((op, result));
    }
    responses
}

#[test]
fn chaos_load_stays_linearizable() {
    let control = LoopbackHub::with_faults(SEED, FaultPlan::default());
    let data = LoopbackHub::with_faults(SEED ^ 0x5EED, FaultPlan::default());
    let seed_ep = Endpoint::new(0);
    let mut formers = Vec::new();
    for i in 0..REPLICAS as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = KvConfig::new(REPLICAS);
        formers.push(std::thread::spawn(move || {
            KvReplica::form(ep, seed_ep, cfg, Box::new(c), Box::new(d))
        }));
    }
    let replicas: Vec<KvReplica> = formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("replica rendezvous completes"))
        .collect();
    let fronts: Vec<ReplicaFront> = replicas.iter().map(|r| r.front()).collect();

    // The seeded chaos schedule, with the total-order seed (endpoint 0)
    // always on the majority side.
    let chaos_done = Arc::new(AtomicBool::new(false));
    let chaos = {
        let (control, data) = (control.clone(), data.clone());
        let fronts = fronts.clone();
        let done = Arc::clone(&chaos_done);
        std::thread::spawn(move || {
            for round in 0..CHAOS_ROUNDS {
                std::thread::sleep(Duration::from_millis(150));
                let groups = vec![vec![0u32, 1], vec![2u32]];
                control.split(groups.clone());
                data.split(groups);
                wait_for(
                    &format!("round {round}: minority stalls"),
                    Duration::from_secs(20),
                    || !fronts[2].is_serving(),
                );
                std::thread::sleep(Duration::from_millis(250));
                control.heal();
                data.heal();
                wait_for(
                    &format!("round {round}: healed group serves"),
                    Duration::from_secs(30),
                    || fronts.iter().all(|f| f.is_serving()),
                );
            }
            done.store(true, Ordering::Relaxed);
        })
    };

    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let fronts = fronts.clone();
        let done = Arc::clone(&chaos_done);
        clients.push(std::thread::spawn(move || run_client(c, &fronts, &done)));
    }
    let mut responses: Vec<(KvOp, KvResult)> = Vec::new();
    for c in clients {
        responses.extend(c.join().expect("client thread completes"));
    }
    chaos.join().expect("chaos thread completes");

    // Quiesce: wait for replayed casts to finish committing before
    // snapshotting the logs.
    let mut last: Vec<usize> = Vec::new();
    wait_for("commit logs quiesce", Duration::from_secs(30), || {
        let now: Vec<usize> = replicas.iter().map(|r| r.commit_log().len()).collect();
        let stable = now == last;
        last = now;
        std::thread::sleep(Duration::from_millis(50));
        stable
    });

    let mut checker = KvLinearizabilityChecker::new();
    for r in &replicas {
        let id = r.endpoint().id();
        for (ci, op) in r.commit_log() {
            checker.on_commit(id, ci, op);
        }
    }
    let ok: Vec<(KvOp, KvResult)> = responses
        .into_iter()
        .filter(|(_, r)| !matches!(r, KvResult::Err(_)))
        .collect();
    assert!(!ok.is_empty(), "some operations must have committed");
    for (op, r) in ok {
        checker.on_response(op, r);
    }
    let violations = checker.finish();
    assert!(
        violations.is_empty(),
        "linearizability violations under chaos:\n{}",
        violations.join("\n")
    );
}
