//! The TCP client plane over real sockets: pipelining, per-request
//! timeouts, and redirect away from a stalled minority replica.
//!
//! Every test binds `127.0.0.1:0`; a sandbox that denies loopback binds
//! downgrades each test to a logged skip rather than a failure.

use ensemble_kv::{KvClient, KvConfig, KvListener, KvOp, KvReplica, KvResult};
use ensemble_runtime::{FaultPlan, LoopbackHub};
use ensemble_util::Endpoint;
use std::time::{Duration, Instant};

/// Forms an n-replica group over fresh loopback hubs and starts one TCP
/// listener per replica. `None` means the sandbox denied the bind.
fn group(
    n: usize,
    seed: u64,
) -> Option<(Vec<KvReplica>, Vec<KvListener>, LoopbackHub, LoopbackHub)> {
    let control = LoopbackHub::with_faults(seed, FaultPlan::default());
    let data = LoopbackHub::with_faults(seed ^ 0x5EED, FaultPlan::default());
    let seed_ep = Endpoint::new(0);
    let mut formers = Vec::new();
    for i in 0..n as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = KvConfig::new(n);
        formers.push(std::thread::spawn(move || {
            KvReplica::form(ep, seed_ep, cfg, Box::new(c), Box::new(d))
        }));
    }
    let replicas: Vec<KvReplica> = formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("replica rendezvous completes"))
        .collect();
    let mut listeners = Vec::new();
    for r in &replicas {
        match KvListener::start(r.front(), "127.0.0.1:0", (&KvConfig::new(n)).into()) {
            Ok(l) => listeners.push(l),
            Err(e) => {
                eprintln!("skipping TCP plane test: bind denied ({e})");
                return None;
            }
        }
    }
    Some((replicas, listeners, control, data))
}

#[test]
fn pipelined_batch_completes_in_order() {
    let Some((_replicas, listeners, _c, _d)) = group(3, 7) else {
        return;
    };
    let addrs = listeners.iter().map(|l| l.addr()).collect();
    let mut kv = KvClient::new(addrs, Duration::from_secs(5));
    // One pipelined batch: writes, reads, a delete, and a CAS whose
    // verdict depends on the write that precedes it in the pipeline.
    let ops = vec![
        KvOp::Set(b"a".to_vec(), b"1".to_vec()),
        KvOp::Set(b"b".to_vec(), b"2".to_vec()),
        KvOp::Get(b"a".to_vec()),
        KvOp::Cas {
            key: b"a".to_vec(),
            expect: Some(b"1".to_vec()),
            new: b"3".to_vec(),
        },
        KvOp::Get(b"a".to_vec()),
        KvOp::Del(b"b".to_vec()),
        KvOp::Get(b"b".to_vec()),
    ];
    let results = kv.pipeline(&ops).expect("batch completes");
    assert_eq!(results.len(), ops.len());
    assert!(matches!(&results[2], KvResult::Value { value: Some(v), .. } if v == b"1"));
    assert!(matches!(&results[3], KvResult::Cas { ok: true, .. }));
    assert!(matches!(&results[4], KvResult::Value { value: Some(v), .. } if v == b"3"));
    assert!(matches!(&results[6], KvResult::Value { value: None, .. }));
    for l in listeners {
        l.shutdown();
    }
}

#[test]
fn client_redirects_away_from_stalled_minority() {
    let Some((_replicas, listeners, control, data)) = group(3, 11) else {
        return;
    };
    let fronts: Vec<_> = _replicas.iter().map(|r| r.front()).collect();
    // Split replica 2 off; put its address FIRST so the client starts
    // on the stalled replica and must redirect to commit.
    let groups = vec![vec![0u32, 1], vec![2u32]];
    control.split(groups.clone());
    data.split(groups);
    let deadline = Instant::now() + Duration::from_secs(20);
    while fronts[2].is_serving() {
        assert!(Instant::now() < deadline, "minority never stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    let addrs = vec![
        listeners[2].addr(),
        listeners[0].addr(),
        listeners[1].addr(),
    ];
    let mut kv = KvClient::new(addrs, Duration::from_secs(5));
    let r = kv.set(b"k", b"v").expect("commits after redirecting");
    assert!(r > 0, "committed op carries a commit index");
    assert!(kv.redirects() > 0, "the stalled replica forced a redirect");
    control.heal();
    data.heal();
    for l in listeners {
        l.shutdown();
    }
}

#[test]
fn per_request_timeout_fails_fast_when_nothing_serves() {
    let Some((_replicas, listeners, control, data)) = group(3, 13) else {
        return;
    };
    let fronts: Vec<_> = _replicas.iter().map(|r| r.front()).collect();
    // Cut every replica off from every other: nobody holds quorum, so
    // no operation can commit anywhere.
    let groups = vec![vec![0u32], vec![1u32], vec![2u32]];
    control.split(groups.clone());
    data.split(groups);
    let deadline = Instant::now() + Duration::from_secs(20);
    while fronts.iter().any(|f| f.is_serving()) {
        assert!(Instant::now() < deadline, "replicas never all stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    let addrs = listeners.iter().map(|l| l.addr()).collect();
    let mut kv = KvClient::new(addrs, Duration::from_millis(300));
    let t0 = Instant::now();
    let r = kv.set(b"k", b"v");
    assert!(r.is_err(), "no quorum anywhere, the call must fail");
    // Bounded by: per-request timeout × (every replica tried twice),
    // plus scheduling slack. The point is it fails, not hangs.
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "failure was not fast: {:?}",
        t0.elapsed()
    );
    control.heal();
    data.heal();
    for l in listeners {
        l.shutdown();
    }
}
