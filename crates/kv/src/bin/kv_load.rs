//! `kv_load`: the deterministic end-to-end load generator and
//! linearizability gate for the replicated KV service.
//!
//! Forms a replica group over seeded loopback hubs, drives N simulated
//! clients (straight into [`ReplicaFront`]s) and M real TCP clients
//! (through a [`KvListener`] per replica), optionally runs a seeded
//! split → minority-stall → heal → merge partition schedule underneath
//! the load, and then replays the whole execution — every replica's
//! commit log, every client's completions — through the
//! [`KvLinearizabilityChecker`].
//!
//! With `--crash` the replicas are formed *durably* on fault-injecting
//! [`MemDisk`]s ([`StorageFaults::lossy`]: short writes, fsync
//! failures, torn tails, bit flips) and a seeded schedule of
//! crash/restart cycles runs under the load: a non-seed replica is
//! killed without warning, its disk torn mid-write, and the replica is
//! restarted on a reincarnated endpoint — recovering from its own
//! checkpoint + WAL tail and rejoining through the merge path. Every
//! recovery feeds the checker's recovery invariants (no acked write
//! lost, recovered commit index monotonic), and the run ends with a
//! final crash of every replica plus a double-recovery determinism
//! check: replaying the same log twice must yield byte-identical state.
//!
//! Emits `BENCH_kv_e2e.json` (ops/sec, p50/p99 latency, and in crash
//! mode the durability counters) and exits nonzero if the checker finds
//! a violation — which makes this binary double as the CI
//! linearizability *and* crash-recovery gate.
//!
//! ```text
//! kv_load [--replicas N] [--sim-clients N] [--tcp-clients N]
//!         [--ops N] [--seed S] [--chaos] [--crash]
//!         [--crash-cycles N] [--out PATH]
//! ```

use ensemble_kv::{
    KvClient, KvConfig, KvError, KvLinearizabilityChecker, KvListener, KvMetrics, KvOp, KvReplica,
    KvResult, MemDisk, ReplicaFront, StorageFaults, Wal,
};
use ensemble_obs::{Histogram, Json};
use ensemble_runtime::{FaultPlan, LoopbackHub};
use ensemble_util::{DetRng, Endpoint};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

struct Args {
    replicas: usize,
    sim_clients: usize,
    tcp_clients: usize,
    ops: usize,
    seed: u64,
    chaos: bool,
    chaos_rounds: u32,
    crash: bool,
    crash_cycles: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        replicas: 3,
        sim_clients: 100,
        tcp_clients: 2,
        ops: 20,
        seed: 42,
        chaos: false,
        chaos_rounds: 2,
        crash: false,
        crash_cycles: 8,
        out: "BENCH_kv_e2e.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match flag.as_str() {
            "--replicas" => args.replicas = grab("--replicas").parse().expect("--replicas: usize"),
            "--sim-clients" => {
                args.sim_clients = grab("--sim-clients").parse().expect("--sim-clients: usize")
            }
            "--tcp-clients" => {
                args.tcp_clients = grab("--tcp-clients").parse().expect("--tcp-clients: usize")
            }
            "--ops" => args.ops = grab("--ops").parse().expect("--ops: usize"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed: u64"),
            "--chaos" => args.chaos = true,
            "--chaos-rounds" => {
                args.chaos_rounds = grab("--chaos-rounds").parse().expect("--chaos-rounds: u32")
            }
            "--crash" => args.crash = true,
            "--crash-cycles" => {
                args.crash_cycles = grab("--crash-cycles").parse().expect("--crash-cycles: u32")
            }
            "--out" => args.out = grab("--out"),
            other => panic!("unknown flag: {other}"),
        }
    }
    assert!(args.replicas >= 2, "--replicas must be at least 2");
    assert!(
        !(args.chaos && args.crash),
        "--chaos and --crash are separate schedules; run them in separate invocations"
    );
    args
}

/// The live replica set: slots are replaced in place when a crashed
/// replica restarts, so clients always reach the current incarnation.
type Replicas = Arc<Mutex<Vec<Option<KvReplica>>>>;
type Fronts = Arc<RwLock<Vec<ReplicaFront>>>;
type Checker = Arc<Mutex<KvLinearizabilityChecker>>;
/// Commit logs of dead incarnations, archived for the final replay.
type LogArchive = Arc<Mutex<Vec<(u32, Vec<(u64, KvOp)>)>>>;

/// Durability counters summed across every replica incarnation (a
/// crashed incarnation's counters are harvested before it is dropped).
#[derive(Default)]
struct Totals {
    wal_appends: u64,
    wal_bytes: u64,
    wal_append_failures: u64,
    checkpoints: u64,
    torn_tail_records: u64,
    snapshot_skips: u64,
}

/// Flips the schedule-done flag when dropped — *including* on unwind,
/// so a panicking schedule thread releases the clients instead of
/// leaving them generating load forever (the join in main then
/// propagates the panic).
struct DoneGuard(Arc<AtomicBool>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

fn harvest(m: &KvMetrics, t: &mut Totals) {
    t.wal_appends += m.wal_appends.load(Ordering::Relaxed);
    t.wal_bytes += m.wal_bytes.load(Ordering::Relaxed);
    t.wal_append_failures += m.wal_append_failures.load(Ordering::Relaxed);
    t.checkpoints += m.checkpoints.load(Ordering::Relaxed);
    t.torn_tail_records += m.torn_tail_records.load(Ordering::Relaxed);
    t.snapshot_skips += m.snapshots_skipped.load(Ordering::Relaxed);
}

/// Draws the next operation for one client. Writes dominate so the
/// checker has real history to bite on; keys collide across clients on
/// purpose (a 64-key space) so CAS races actually race.
fn next_op(rng: &mut DetRng, client: usize) -> KvOp {
    let key = format!("key-{}", rng.below(64)).into_bytes();
    let val = format!("c{client}-{}", rng.next_u64() & 0xffff).into_bytes();
    match rng.below(100) {
        0..=44 => KvOp::Set(key, val),
        45..=69 => KvOp::Get(key),
        70..=89 => KvOp::Cas {
            key,
            // Blind CAS on a contended key space: most fail, some win,
            // and the replay proves each verdict matched the state.
            expect: if rng.chance(0.5) {
                None
            } else {
                Some(val.clone())
            },
            new: val,
        },
        _ => KvOp::Del(key),
    }
}

/// One simulated client: submits straight into replica fronts,
/// redirecting away from a replica that is stalled, slow, or dead — the
/// same policy [`KvClient`] applies over TCP. Completions feed the
/// shared checker immediately, attributed to the serving replica slot,
/// so a later recovery of that slot is checked against what it acked.
fn run_sim_client(
    client: usize,
    fronts: &Fronts,
    checker: &Checker,
    ops: usize,
    seed: u64,
    hist: &Histogram,
    sched_done: &AtomicBool,
) -> (u64, u64) {
    let mut rng = DetRng::new(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(client as u64 + 1)));
    let nfronts = fronts.read().expect("front table poisoned").len();
    let mut cur = client % nfronts;
    let mut ok = 0u64;
    let mut redirects = 0u64;
    let timeout = Duration::from_secs(2);
    let mut done = 0;
    // Keep generating until the quota is met AND the chaos/crash
    // schedule has finished: the faults must actually run under load.
    while done < ops || !sched_done.load(Ordering::Relaxed) {
        done += 1;
        let op = next_op(&mut rng, client);
        // At-least-once with redirect: an op that fails on one replica
        // is resubmitted to the next; the completion we keep is the one
        // commit this client actually observed.
        for _attempt in 0..nfronts * 2 {
            let front = fronts.read().expect("front table poisoned")[cur].clone();
            let t0 = Instant::now();
            let result = front.submit_timeout(&op, timeout);
            match result {
                KvResult::Err(KvError::NotServing | KvError::Timeout | KvError::Closed) => {
                    cur = (cur + 1) % nfronts;
                    redirects += 1;
                }
                r => {
                    hist.record(t0.elapsed().as_nanos() as u64);
                    ok += 1;
                    checker
                        .lock()
                        .expect("checker poisoned")
                        .on_response_at(cur as u32, op, r);
                    break;
                }
            }
        }
    }
    (ok, redirects)
}

/// One real TCP client: pipelines batches through [`KvClient`] against
/// every replica's listener. The redirecting client hides which replica
/// served each completion, so responses feed the checker unattributed.
fn run_tcp_client(
    client: usize,
    addrs: Vec<std::net::SocketAddr>,
    checker: &Checker,
    ops: usize,
    seed: u64,
    hist: &Histogram,
    sched_done: &AtomicBool,
) -> (u64, u64) {
    let mut rng = DetRng::new(seed ^ (0xD1B54A32D192ED03u64.wrapping_mul(client as u64 + 1)));
    let mut kv = KvClient::new(addrs, Duration::from_secs(2));
    let batch_size = 8;
    let mut ok = 0u64;
    let mut done = 0;
    while done < ops || !sched_done.load(Ordering::Relaxed) {
        let n = batch_size.min(ops.saturating_sub(done).max(1));
        let batch: Vec<KvOp> = (0..n).map(|_| next_op(&mut rng, 10_000 + client)).collect();
        let t0 = Instant::now();
        if let Ok(results) = kv.pipeline(&batch) {
            // Whole-batch latency amortized per op — the pipelining
            // is the point of the measurement.
            let per_op = (t0.elapsed().as_nanos() as u64) / n as u64;
            let mut c = checker.lock().expect("checker poisoned");
            for (op, r) in batch.into_iter().zip(results) {
                hist.record(per_op);
                if !matches!(r, KvResult::Err(_)) {
                    ok += 1;
                    c.on_response(op, r);
                }
            }
        }
        done += n;
    }
    (ok, kv.redirects())
}

/// Waits until `cond` holds or panics after `what` fails to materialize
/// within the deadline.
fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The seeded chaos schedule: split both planes with the seed (the
/// total-order coordinator) in the majority, hold until the minority
/// stalls, heal, and hold until every replica serves again. Runs
/// exactly `rounds` rounds; the clients keep the load up until it is
/// done (see `sched_done`).
fn run_chaos(control: &LoopbackHub, data: &LoopbackHub, fronts: &Fronts, rounds: u32) -> u32 {
    let n = fronts.read().expect("front table poisoned").len();
    let minority_len = (n - 1) / 2; // strictly less than quorum
    let majority: Vec<u32> = (0..(n - minority_len) as u32).collect();
    let minority: Vec<u32> = ((n - minority_len) as u32..n as u32).collect();
    let serving = |i: usize| fronts.read().expect("front table poisoned")[i].is_serving();
    for round in 0..rounds {
        std::thread::sleep(Duration::from_millis(150));
        println!(
            "kv_load: chaos round {}: splitting {:?} | {:?}",
            round + 1,
            majority,
            minority
        );
        let groups = vec![majority.clone(), minority.clone()];
        control.split(groups.clone());
        data.split(groups);
        wait_for(
            "minority replicas to stall",
            Duration::from_secs(20),
            || minority.iter().all(|&id| !serving(id as usize)),
        );
        // Let the load run against the degraded group for a while.
        std::thread::sleep(Duration::from_millis(250));
        control.heal();
        data.heal();
        wait_for(
            "healed group to serve everywhere",
            Duration::from_secs(30),
            || (0..n).all(serving),
        );
        println!("kv_load: chaos round {}: healed and serving", round + 1);
    }
    rounds
}

/// The seeded crash schedule: every cycle kills one non-seed replica
/// without warning (no WAL flush), tears its disk's unsynced tail, lets
/// the survivors absorb the loss under load, then restarts the replica
/// on a reincarnated endpoint. The restart recovers from the replica's
/// own checkpoint + WAL tail and rejoins through the merge path; its
/// recovered commit index feeds the checker's recovery invariants.
#[allow(clippy::too_many_arguments)]
fn run_crash(
    control: &LoopbackHub,
    data: &LoopbackHub,
    replicas: &Replicas,
    fronts: &Fronts,
    disks: &[MemDisk],
    checker: &Checker,
    logs: &LogArchive,
    totals: &Mutex<Totals>,
    cycles: u32,
) -> u32 {
    let n = disks.len();
    for cycle in 0..cycles {
        std::thread::sleep(Duration::from_millis(150));
        // Rotate over the non-seed replicas; the seed stays up so the
        // survivors always hold quorum and the rendezvous stays alive.
        let t = 1 + (cycle as usize % (n - 1));
        let victim = replicas.lock().expect("replica table poisoned")[t]
            .take()
            .expect("slot occupied between cycles");
        harvest(
            victim.metrics(),
            &mut totals.lock().expect("totals poisoned"),
        );
        logs.lock()
            .expect("log archive poisoned")
            .push((victim.endpoint().id(), victim.commit_log()));
        let old_ep = victim.endpoint();
        victim.kill();
        println!(
            "kv_load: crash cycle {}: killed replica {t} with {} unsynced bytes",
            cycle + 1,
            disks[t].pending_len()
        );
        disks[t].crash();
        // Survivors serve the load degraded until they have suspected
        // the dead incarnation and installed the shrunk view. Restarting
        // earlier risks the coordinator folding the not-yet-suspected
        // corpse into the rejoin merge flush, which then waits on a
        // dead member's flush ack.
        wait_for(
            "survivors to evict the dead incarnation",
            Duration::from_secs(30),
            || {
                let table = replicas.lock().expect("replica table poisoned");
                table.iter().flatten().all(|r| {
                    r.view()
                        .map(|v| !v.members.contains(&old_ep))
                        .unwrap_or(false)
                })
            },
        );
        std::thread::sleep(Duration::from_millis(200));
        // Restart under a supervisor's policy: a rejoin that misses the
        // form deadline (the loaded group was too busy to merge in
        // time) is retried under a fresh incarnation, like a crashing
        // service being restarted again. Recovery itself is read-only,
        // so re-running it is free of side effects.
        let mut reborn = old_ep.reincarnate();
        let mut attempt = 0;
        let (replica, report) = loop {
            attempt += 1;
            let (c, d) = (control.attach(reborn), data.attach(reborn));
            let mut cfg = KvConfig::new(n);
            // A loaded 1-core box can stretch the merge well past the
            // default 10s form deadline.
            cfg.cluster.join_deadline = Duration::from_secs(30);
            cfg.cluster.form_timeout = Duration::from_secs(30);
            let wal = Wal::on_mem_disk(&disks[t], &format!("r{t}"), cfg.wal);
            match KvReplica::form_durable(
                reborn,
                Endpoint::new(0),
                cfg,
                Box::new(c),
                Box::new(d),
                wal,
            ) {
                Ok(ok) => break ok,
                Err(e) if attempt < 5 => {
                    println!(
                        "kv_load: crash cycle {}: rejoin attempt {attempt} failed ({e}); retrying",
                        cycle + 1
                    );
                    reborn = reborn.reincarnate();
                }
                Err(e) => panic!("restarted replica never rejoined after {attempt} attempts: {e}"),
            }
        };
        println!(
            "kv_load: crash cycle {}: replica {t} recovered to ci {} \
             ({} replayed, {} torn tail records), rejoining",
            cycle + 1,
            report.recovered_ci(),
            report.replayed,
            report.torn_tail_records
        );
        checker
            .lock()
            .expect("checker poisoned")
            .on_recovery(t as u32, report.recovered_ci());
        fronts.write().expect("front table poisoned")[t] = replica.front();
        replicas.lock().expect("replica table poisoned")[t] = Some(replica);
        wait_for(
            "restarted replica to rejoin and serve",
            Duration::from_secs(60),
            || fronts.read().expect("front table poisoned")[t].is_serving(),
        );
    }
    cycles
}

fn main() {
    let args = parse_args();
    let seed_ep = Endpoint::new(0);
    let control = LoopbackHub::with_faults(args.seed, FaultPlan::default());
    let data = LoopbackHub::with_faults(args.seed ^ 0x5EED, FaultPlan::default());

    println!(
        "kv_load: {} replicas, {} sim + {} tcp clients, {} ops each, seed {}{}{}",
        args.replicas,
        args.sim_clients,
        args.tcp_clients,
        args.ops,
        args.seed,
        if args.chaos { ", chaos on" } else { "" },
        if args.crash { ", crash on" } else { "" }
    );

    // In crash mode every replica is durable: its own fault-injecting
    // in-memory disk holds the WAL and both checkpoint slots. Group
    // commit (sync_every) keeps a partial batch unsynced under load, so
    // a crash regularly lands on a non-empty tail and the torn /
    // bit-flipped tail paths actually run in every gate.
    let faults = StorageFaults {
        short_write_p: 0.05,
        fsync_fail_p: 0.1,
        torn_tail_p: 0.9,
        bit_flip_p: 0.25,
    };
    let disks: Vec<MemDisk> = (0..args.replicas)
        .map(|i| {
            MemDisk::new(
                args.seed.wrapping_add(i as u64).wrapping_mul(0x2545F491),
                faults,
            )
        })
        .collect();

    // Form the replica group (rendezvous blocks, so each former gets a
    // thread, exactly like the cluster harnesses).
    let mut formers = Vec::new();
    for i in 0..args.replicas as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = KvConfig::new(args.replicas);
        let durable = args.crash.then(|| disks[i as usize].clone());
        formers.push(std::thread::spawn(move || match durable {
            Some(disk) => {
                let wal = Wal::on_mem_disk(&disk, &format!("r{i}"), cfg.wal);
                KvReplica::form_durable(ep, seed_ep, cfg, Box::new(c), Box::new(d), wal)
                    .map(|(r, _)| r)
            }
            None => KvReplica::form(ep, seed_ep, cfg, Box::new(c), Box::new(d)),
        }));
    }
    let replicas: Vec<Option<KvReplica>> = formers
        .into_iter()
        .map(|f| Some(f.join().unwrap().expect("replica rendezvous completes")))
        .collect();
    let fronts: Fronts = Arc::new(RwLock::new(
        replicas
            .iter()
            .map(|r| r.as_ref().expect("just formed").front())
            .collect(),
    ));
    let replicas: Replicas = Arc::new(Mutex::new(replicas));
    println!("kv_load: group formed, all replicas serving");

    // One TCP listener per replica — best-effort: a sandbox that denies
    // loopback binds downgrades the run to simulated clients only.
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    let mut tcp_clients = args.tcp_clients;
    if tcp_clients > 0 {
        let table = fronts.read().expect("front table poisoned").clone();
        for front in table {
            match KvListener::start(front, "127.0.0.1:0", (&KvConfig::new(args.replicas)).into()) {
                Ok(l) => {
                    addrs.push(l.addr());
                    listeners.push(l);
                }
                Err(e) => {
                    println!("kv_load: TCP bind failed ({e}); skipping TCP clients");
                    tcp_clients = 0;
                    break;
                }
            }
        }
    }

    let hist = Arc::new(Histogram::new());
    let checker: Checker = Arc::new(Mutex::new(KvLinearizabilityChecker::new()));
    let logs: LogArchive = Arc::new(Mutex::new(Vec::new()));
    let totals: Arc<Mutex<Totals>> = Arc::new(Mutex::new(Totals::default()));
    // Flips to true once the chaos/crash schedule completes; clients
    // keep the load up until then, so the faults always run under
    // traffic.
    let sched_done = Arc::new(AtomicBool::new(!(args.chaos || args.crash)));
    let chaos = args.chaos.then(|| {
        let control = control.clone();
        let data = data.clone();
        let fronts = Arc::clone(&fronts);
        let done = Arc::clone(&sched_done);
        let rounds = args.chaos_rounds;
        std::thread::spawn(move || {
            let _done = DoneGuard(done);
            run_chaos(&control, &data, &fronts, rounds)
        })
    });
    let crash = args.crash.then(|| {
        let control = control.clone();
        let data = data.clone();
        let replicas = Arc::clone(&replicas);
        let fronts = Arc::clone(&fronts);
        let disks = disks.clone();
        let checker = Arc::clone(&checker);
        let logs = Arc::clone(&logs);
        let totals = Arc::clone(&totals);
        let done = Arc::clone(&sched_done);
        let cycles = args.crash_cycles;
        std::thread::spawn(move || {
            let _done = DoneGuard(done);
            run_crash(
                &control, &data, &replicas, &fronts, &disks, &checker, &logs, &totals, cycles,
            )
        })
    });

    // The measured load phase.
    let t0 = Instant::now();
    let mut clients = Vec::new();
    for c in 0..args.sim_clients {
        let fronts = Arc::clone(&fronts);
        let checker = Arc::clone(&checker);
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&sched_done);
        let (ops, seed) = (args.ops, args.seed);
        clients.push(std::thread::spawn(move || {
            run_sim_client(c, &fronts, &checker, ops, seed, &hist, &done)
        }));
    }
    for c in 0..tcp_clients {
        let addrs = addrs.clone();
        let checker = Arc::clone(&checker);
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&sched_done);
        let (ops, seed) = (args.ops, args.seed);
        clients.push(std::thread::spawn(move || {
            run_tcp_client(c, addrs, &checker, ops, seed, &hist, &done)
        }));
    }
    let mut ok_ops = 0u64;
    let mut redirects = 0u64;
    for c in clients {
        let (ok, rd) = c.join().expect("client thread completes");
        ok_ops += ok;
        redirects += rd;
    }
    let elapsed = t0.elapsed();

    let chaos_rounds = chaos
        .map(|t| t.join().expect("chaos thread completes"))
        .unwrap_or(0);
    let crash_cycles = crash
        .map(|t| t.join().expect("crash thread completes"))
        .unwrap_or(0);
    control.heal();
    data.heal();
    wait_for(
        "all replicas serving after load",
        Duration::from_secs(30),
        || {
            fronts
                .read()
                .expect("front table poisoned")
                .iter()
                .all(|f| f.is_serving())
        },
    );

    // Quiesce: parked minority casts replay after the merge; wait until
    // every replica's commit count stops moving before snapshotting logs.
    let mut last: Vec<usize> = Vec::new();
    wait_for("commit logs to quiesce", Duration::from_secs(30), || {
        let now: Vec<usize> = replicas
            .lock()
            .expect("replica table poisoned")
            .iter()
            .map(|r| r.as_ref().map(|r| r.commit_log().len()).unwrap_or(0))
            .collect();
        let stable = now == last;
        last = now;
        std::thread::sleep(Duration::from_millis(50));
        stable
    });

    // One replica's full exposition — runtime + cluster + KV series —
    // so CI can grep the ensemble_kv_* counters from this run. Printed
    // before teardown: the final crash pass below consumes the replicas.
    {
        let table = replicas.lock().expect("replica table poisoned");
        let r0 = table[0].as_ref().expect("seed replica alive");
        println!("{}", r0.metrics_text());
    }

    // Harvest every surviving incarnation: counters, then commit logs
    // into the archive alongside the crashed incarnations'.
    let final_replicas: Vec<KvReplica> = replicas
        .lock()
        .expect("replica table poisoned")
        .iter_mut()
        .map(|slot| slot.take().expect("slot occupied after quiesce"))
        .collect();
    {
        let mut t = totals.lock().expect("totals poisoned");
        let mut l = logs.lock().expect("log archive poisoned");
        for r in &final_replicas {
            harvest(r.metrics(), &mut t);
            l.push((r.endpoint().id(), r.commit_log()));
        }
    }

    // In crash mode, end the run the hard way: kill every replica, tear
    // its disk, and recover *twice* — the two replays must agree byte
    // for byte (deterministic recovery), and the recovered index feeds
    // the checker one last time.
    if args.crash {
        for l in listeners.drain(..) {
            l.shutdown();
        }
        for (t, r) in final_replicas.into_iter().enumerate() {
            r.kill();
            disks[t].crash();
            let cfg = KvConfig::new(args.replicas);
            let mut w1 = Wal::on_mem_disk(&disks[t], &format!("r{t}"), cfg.wal);
            let r1 = w1.recover().expect("final recovery never panics");
            let mut w2 = Wal::on_mem_disk(&disks[t], &format!("r{t}"), cfg.wal);
            let r2 = w2.recover().expect("recovery is repeatable");
            assert_eq!(
                r1.store.snapshot(),
                r2.store.snapshot(),
                "replica {t}: two replays of the same log diverged"
            );
            assert_eq!(r1.recovered_ci(), r2.recovered_ci());
            checker
                .lock()
                .expect("checker poisoned")
                .on_recovery(t as u32, r1.recovered_ci());
        }
    } else {
        for r in final_replicas {
            r.shutdown();
        }
    }

    // Replay the whole execution against the linearizability spec.
    let mut checker = Arc::try_unwrap(checker)
        .unwrap_or_else(|_| panic!("checker still shared after clients joined"))
        .into_inner()
        .expect("checker poisoned");
    for (id, log) in logs.lock().expect("log archive poisoned").drain(..) {
        for (ci, op) in log {
            checker.on_commit(id, ci, op);
        }
    }
    let total_commits = checker.commits();
    let recoveries = checker.recoveries();
    let violations = checker.finish();

    let totals = totals.lock().expect("totals poisoned");
    let s = hist.summary();
    let ops_per_sec = if elapsed.as_secs_f64() > 0.0 {
        ok_ops as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let json = Json::obj(vec![
        ("bench", Json::Str("kv_e2e".into())),
        ("replicas", Json::Int(args.replicas as i64)),
        ("sim_clients", Json::Int(args.sim_clients as i64)),
        ("tcp_clients", Json::Int(tcp_clients as i64)),
        ("seed", Json::Int(args.seed as i64)),
        ("chaos_rounds", Json::Int(chaos_rounds as i64)),
        ("crash_cycles", Json::Int(crash_cycles as i64)),
        ("recoveries", Json::Int(recoveries as i64)),
        ("wal_appends", Json::Int(totals.wal_appends as i64)),
        ("wal_bytes", Json::Int(totals.wal_bytes as i64)),
        (
            "wal_append_failures",
            Json::Int(totals.wal_append_failures as i64),
        ),
        ("checkpoints", Json::Int(totals.checkpoints as i64)),
        (
            "torn_tail_records",
            Json::Int(totals.torn_tail_records as i64),
        ),
        ("snapshot_skips", Json::Int(totals.snapshot_skips as i64)),
        ("ops_total", Json::Int(ok_ops as i64)),
        ("commits_total", Json::Int(total_commits as i64)),
        ("redirects", Json::Int(redirects as i64)),
        ("elapsed_ns", Json::Int(elapsed.as_nanos() as i64)),
        ("ops_per_sec", Json::Num(ops_per_sec)),
        ("p50_ns", Json::Int(s.p50 as i64)),
        ("p90_ns", Json::Int(s.p90 as i64)),
        ("p99_ns", Json::Int(s.p99 as i64)),
        ("max_ns", Json::Int(s.max as i64)),
        ("violations", Json::Int(violations.len() as i64)),
    ]);
    std::fs::write(&args.out, json.render()).expect("write benchmark json");
    println!(
        "kv_load: {ok_ops} ops in {:.2}s = {:.0} ops/sec, p50 {} ns, p99 {} ns, \
         {total_commits} commits, {redirects} redirects, {chaos_rounds} chaos rounds, \
         {crash_cycles} crash cycles, {recoveries} recoveries",
        elapsed.as_secs_f64(),
        ops_per_sec,
        s.p50,
        s.p99,
    );
    println!("kv_load: wrote {}", args.out);

    for l in listeners {
        l.shutdown();
    }

    if violations.is_empty() {
        println!("kv_load: linearizability check PASSED");
    } else {
        println!("kv_load: linearizability check FAILED:");
        for v in violations.iter().take(20) {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
