//! `kv_load`: the deterministic end-to-end load generator and
//! linearizability gate for the replicated KV service.
//!
//! Forms a replica group over seeded loopback hubs, drives N simulated
//! clients (straight into [`ReplicaFront`]s) and M real TCP clients
//! (through a [`KvListener`] per replica), optionally runs a seeded
//! split → minority-stall → heal → merge partition schedule underneath
//! the load, and then replays the whole execution — every replica's
//! commit log, every client's completions — through the
//! [`KvLinearizabilityChecker`].
//!
//! Emits `BENCH_kv_e2e.json`, the repo's first *wall-clock* end-to-end
//! benchmark (ops/sec plus p50/p99 per-operation latency in
//! nanoseconds), and exits nonzero if the checker finds a violation —
//! which makes this binary double as the CI linearizability gate.
//!
//! ```text
//! kv_load [--replicas N] [--sim-clients N] [--tcp-clients N]
//!         [--ops N] [--seed S] [--chaos] [--out PATH]
//! ```

use ensemble_kv::{
    KvClient, KvConfig, KvError, KvLinearizabilityChecker, KvListener, KvOp, KvReplica, KvResult,
    ReplicaFront,
};
use ensemble_obs::{Histogram, Json};
use ensemble_runtime::{FaultPlan, LoopbackHub};
use ensemble_util::{DetRng, Endpoint};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    replicas: usize,
    sim_clients: usize,
    tcp_clients: usize,
    ops: usize,
    seed: u64,
    chaos: bool,
    chaos_rounds: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        replicas: 3,
        sim_clients: 100,
        tcp_clients: 2,
        ops: 20,
        seed: 42,
        chaos: false,
        chaos_rounds: 2,
        out: "BENCH_kv_e2e.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match flag.as_str() {
            "--replicas" => args.replicas = grab("--replicas").parse().expect("--replicas: usize"),
            "--sim-clients" => {
                args.sim_clients = grab("--sim-clients").parse().expect("--sim-clients: usize")
            }
            "--tcp-clients" => {
                args.tcp_clients = grab("--tcp-clients").parse().expect("--tcp-clients: usize")
            }
            "--ops" => args.ops = grab("--ops").parse().expect("--ops: usize"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed: u64"),
            "--chaos" => args.chaos = true,
            "--chaos-rounds" => {
                args.chaos_rounds = grab("--chaos-rounds").parse().expect("--chaos-rounds: u32")
            }
            "--out" => args.out = grab("--out"),
            other => panic!("unknown flag: {other}"),
        }
    }
    assert!(args.replicas >= 2, "--replicas must be at least 2");
    args
}

/// Draws the next operation for one client. Writes dominate so the
/// checker has real history to bite on; keys collide across clients on
/// purpose (a 64-key space) so CAS races actually race.
fn next_op(rng: &mut DetRng, client: usize) -> KvOp {
    let key = format!("key-{}", rng.below(64)).into_bytes();
    let val = format!("c{client}-{}", rng.next_u64() & 0xffff).into_bytes();
    match rng.below(100) {
        0..=44 => KvOp::Set(key, val),
        45..=69 => KvOp::Get(key),
        70..=89 => KvOp::Cas {
            key,
            // Blind CAS on a contended key space: most fail, some win,
            // and the replay proves each verdict matched the state.
            expect: if rng.chance(0.5) {
                None
            } else {
                Some(val.clone())
            },
            new: val,
        },
        _ => KvOp::Del(key),
    }
}

/// One simulated client: submits straight into replica fronts,
/// redirecting away from a replica that is stalled or slow — the same
/// policy [`KvClient`] applies over TCP.
fn run_sim_client(
    client: usize,
    fronts: &[ReplicaFront],
    ops: usize,
    seed: u64,
    hist: &Histogram,
    chaos_done: &AtomicBool,
) -> (Vec<(KvOp, KvResult)>, u64) {
    let mut rng = DetRng::new(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(client as u64 + 1)));
    let mut cur = client % fronts.len();
    let mut responses = Vec::with_capacity(ops);
    let mut redirects = 0u64;
    let timeout = Duration::from_secs(2);
    let mut done = 0;
    // Keep generating until the quota is met AND the chaos schedule has
    // finished: the partition must actually run under load.
    while done < ops || !chaos_done.load(Ordering::Relaxed) {
        done += 1;
        let op = next_op(&mut rng, client);
        let mut result = KvResult::Err(KvError::Closed);
        // At-least-once with redirect: an op that times out on one
        // replica is resubmitted to the next; the completion we keep is
        // the one commit this client actually observed.
        for _attempt in 0..fronts.len() * 2 {
            let t0 = Instant::now();
            result = fronts[cur].submit_timeout(&op, timeout);
            match result {
                KvResult::Err(KvError::NotServing) | KvResult::Err(KvError::Timeout) => {
                    cur = (cur + 1) % fronts.len();
                    redirects += 1;
                }
                _ => {
                    hist.record(t0.elapsed().as_nanos() as u64);
                    break;
                }
            }
        }
        responses.push((op, result));
    }
    (responses, redirects)
}

/// One real TCP client: pipelines batches through [`KvClient`] against
/// every replica's listener.
fn run_tcp_client(
    client: usize,
    addrs: Vec<std::net::SocketAddr>,
    ops: usize,
    seed: u64,
    hist: &Histogram,
    chaos_done: &AtomicBool,
) -> (Vec<(KvOp, KvResult)>, u64) {
    let mut rng = DetRng::new(seed ^ (0xD1B54A32D192ED03u64.wrapping_mul(client as u64 + 1)));
    let mut kv = KvClient::new(addrs, Duration::from_secs(2));
    let mut responses = Vec::with_capacity(ops);
    let batch_size = 8;
    let mut done = 0;
    while done < ops || !chaos_done.load(Ordering::Relaxed) {
        let n = batch_size.min(ops.saturating_sub(done).max(1));
        let batch: Vec<KvOp> = (0..n).map(|_| next_op(&mut rng, 10_000 + client)).collect();
        let t0 = Instant::now();
        match kv.pipeline(&batch) {
            Ok(results) => {
                // Whole-batch latency amortized per op — the pipelining
                // is the point of the measurement.
                let per_op = (t0.elapsed().as_nanos() as u64) / n as u64;
                for (op, r) in batch.into_iter().zip(results) {
                    hist.record(per_op);
                    responses.push((op, r));
                }
            }
            Err(e) => {
                for op in batch {
                    responses.push((op, KvResult::Err(e)));
                }
            }
        }
        done += n;
    }
    (responses, kv.redirects())
}

/// Waits until `cond` holds or panics after `what` fails to materialize
/// within the deadline.
fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The seeded chaos schedule: split both planes with the seed (the
/// total-order coordinator) in the majority, hold until the minority
/// stalls, heal, and hold until every replica serves again. Runs
/// exactly `rounds` rounds; the clients keep the load up until it is
/// done (see `chaos_done`).
fn run_chaos(
    control: &LoopbackHub,
    data: &LoopbackHub,
    fronts: &[ReplicaFront],
    rounds: u32,
) -> u32 {
    let n = fronts.len();
    let minority_len = (n - 1) / 2; // strictly less than quorum
    let majority: Vec<u32> = (0..(n - minority_len) as u32).collect();
    let minority: Vec<u32> = ((n - minority_len) as u32..n as u32).collect();
    for round in 0..rounds {
        std::thread::sleep(Duration::from_millis(150));
        println!(
            "kv_load: chaos round {}: splitting {:?} | {:?}",
            round + 1,
            majority,
            minority
        );
        let groups = vec![majority.clone(), minority.clone()];
        control.split(groups.clone());
        data.split(groups);
        wait_for(
            "minority replicas to stall",
            Duration::from_secs(20),
            || minority.iter().all(|&id| !fronts[id as usize].is_serving()),
        );
        // Let the load run against the degraded group for a while.
        std::thread::sleep(Duration::from_millis(250));
        control.heal();
        data.heal();
        wait_for(
            "healed group to serve everywhere",
            Duration::from_secs(30),
            || fronts.iter().all(|f| f.is_serving()),
        );
        println!("kv_load: chaos round {}: healed and serving", round + 1);
    }
    rounds
}

fn main() {
    let args = parse_args();
    let seed_ep = Endpoint::new(0);
    let control = LoopbackHub::with_faults(args.seed, FaultPlan::default());
    let data = LoopbackHub::with_faults(args.seed ^ 0x5EED, FaultPlan::default());

    println!(
        "kv_load: {} replicas, {} sim + {} tcp clients, {} ops each, seed {}{}",
        args.replicas,
        args.sim_clients,
        args.tcp_clients,
        args.ops,
        args.seed,
        if args.chaos { ", chaos on" } else { "" }
    );

    // Form the replica group (rendezvous blocks, so each former gets a
    // thread, exactly like the cluster harnesses).
    let mut formers = Vec::new();
    for i in 0..args.replicas as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = KvConfig::new(args.replicas);
        formers.push(std::thread::spawn(move || {
            KvReplica::form(ep, seed_ep, cfg, Box::new(c), Box::new(d))
        }));
    }
    let replicas: Vec<KvReplica> = formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("replica rendezvous completes"))
        .collect();
    let fronts: Vec<ReplicaFront> = replicas.iter().map(|r| r.front()).collect();
    println!("kv_load: group formed, all replicas serving");

    // One TCP listener per replica — best-effort: a sandbox that denies
    // loopback binds downgrades the run to simulated clients only.
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    let mut tcp_clients = args.tcp_clients;
    if tcp_clients > 0 {
        for r in &replicas {
            match KvListener::start(
                r.front(),
                "127.0.0.1:0",
                (&KvConfig::new(args.replicas)).into(),
            ) {
                Ok(l) => {
                    addrs.push(l.addr());
                    listeners.push(l);
                }
                Err(e) => {
                    println!("kv_load: TCP bind failed ({e}); skipping TCP clients");
                    tcp_clients = 0;
                    break;
                }
            }
        }
    }

    let hist = Arc::new(Histogram::new());
    // Flips to true once the chaos schedule completes; clients keep the
    // load up until then, so the partition always runs under traffic.
    let chaos_done = Arc::new(AtomicBool::new(!args.chaos));
    let chaos = args.chaos.then(|| {
        let control = control.clone();
        let data = data.clone();
        let fronts = fronts.clone();
        let done = Arc::clone(&chaos_done);
        let rounds = args.chaos_rounds;
        std::thread::spawn(move || {
            let r = run_chaos(&control, &data, &fronts, rounds);
            done.store(true, Ordering::Relaxed);
            r
        })
    });

    // The measured load phase.
    let t0 = Instant::now();
    let mut clients = Vec::new();
    for c in 0..args.sim_clients {
        let fronts = fronts.clone();
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&chaos_done);
        let (ops, seed) = (args.ops, args.seed);
        clients.push(std::thread::spawn(move || {
            run_sim_client(c, &fronts, ops, seed, &hist, &done)
        }));
    }
    for c in 0..tcp_clients {
        let addrs = addrs.clone();
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&chaos_done);
        let (ops, seed) = (args.ops, args.seed);
        clients.push(std::thread::spawn(move || {
            run_tcp_client(c, addrs, ops, seed, &hist, &done)
        }));
    }
    let mut responses: Vec<(KvOp, KvResult)> = Vec::new();
    let mut redirects = 0u64;
    for c in clients {
        let (r, rd) = c.join().expect("client thread completes");
        responses.extend(r);
        redirects += rd;
    }
    let elapsed = t0.elapsed();

    let chaos_rounds = chaos
        .map(|t| t.join().expect("chaos thread completes"))
        .unwrap_or(0);
    control.heal();
    data.heal();
    wait_for(
        "all replicas serving after load",
        Duration::from_secs(30),
        || fronts.iter().all(|f| f.is_serving()),
    );

    // Quiesce: parked minority casts replay after the merge; wait until
    // every replica's commit count stops moving before snapshotting logs.
    let mut last: Vec<usize> = Vec::new();
    wait_for("commit logs to quiesce", Duration::from_secs(30), || {
        let now: Vec<usize> = replicas.iter().map(|r| r.commit_log().len()).collect();
        let stable = now == last;
        last = now;
        std::thread::sleep(Duration::from_millis(50));
        stable
    });

    // Replay the whole execution against the linearizability spec.
    let mut checker = KvLinearizabilityChecker::new();
    for r in &replicas {
        let id = r.endpoint().id();
        for (ci, op) in r.commit_log() {
            checker.on_commit(id, ci, op);
        }
    }
    let committed: Vec<(KvOp, KvResult)> = responses
        .into_iter()
        .filter(|(_, r)| !matches!(r, KvResult::Err(_)))
        .collect();
    let ok_ops = committed.len();
    for (op, r) in committed {
        checker.on_response(op, r);
    }
    let total_commits = checker.commits();
    let violations = checker.finish();

    let s = hist.summary();
    let ops_per_sec = if elapsed.as_secs_f64() > 0.0 {
        ok_ops as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let json = Json::obj(vec![
        ("bench", Json::Str("kv_e2e".into())),
        ("replicas", Json::Int(args.replicas as i64)),
        ("sim_clients", Json::Int(args.sim_clients as i64)),
        ("tcp_clients", Json::Int(tcp_clients as i64)),
        ("seed", Json::Int(args.seed as i64)),
        ("chaos_rounds", Json::Int(chaos_rounds as i64)),
        ("ops_total", Json::Int(ok_ops as i64)),
        ("commits_total", Json::Int(total_commits as i64)),
        ("redirects", Json::Int(redirects as i64)),
        ("elapsed_ns", Json::Int(elapsed.as_nanos() as i64)),
        ("ops_per_sec", Json::Num(ops_per_sec)),
        ("p50_ns", Json::Int(s.p50 as i64)),
        ("p90_ns", Json::Int(s.p90 as i64)),
        ("p99_ns", Json::Int(s.p99 as i64)),
        ("max_ns", Json::Int(s.max as i64)),
        ("violations", Json::Int(violations.len() as i64)),
    ]);
    std::fs::write(&args.out, json.render()).expect("write benchmark json");
    println!(
        "kv_load: {ok_ops} ops in {:.2}s = {:.0} ops/sec, p50 {} ns, p99 {} ns, \
         {total_commits} commits, {redirects} redirects, {} chaos rounds",
        elapsed.as_secs_f64(),
        ops_per_sec,
        s.p50,
        s.p99,
        chaos_rounds
    );
    println!("kv_load: wrote {}", args.out);

    // One replica's full exposition — runtime + cluster + KV series —
    // so CI can grep the ensemble_kv_* counters from this run.
    println!("{}", replicas[0].metrics_text());

    for l in listeners {
        l.shutdown();
    }
    for r in replicas {
        r.shutdown();
    }

    if violations.is_empty() {
        println!("kv_load: linearizability check PASSED");
    } else {
        println!("kv_load: linearizability check FAILED:");
        for v in violations.iter().take(20) {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
