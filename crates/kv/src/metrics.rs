//! KV service counters and their Prometheus exposition.

use ensemble_obs::Registry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one KV replica (apply thread and connection
/// workers write, any thread reads).
#[derive(Debug, Default)]
pub struct KvMetrics {
    /// Operations submitted into the total order.
    pub requests: AtomicU64,
    /// Operations applied to the state machine (commit indices assigned).
    pub commits: AtomicU64,
    /// Completions handed back to a waiting client.
    pub responses: AtomicU64,
    /// Requests rejected immediately because the replica is not serving
    /// (minority partition or fenced).
    pub rejected_not_serving: AtomicU64,
    /// Requests abandoned by their client before the commit arrived.
    pub timeouts: AtomicU64,
    /// State snapshots installed (join Welcome or post-heal merge grant).
    pub snapshots_installed: AtomicU64,
    /// Snapshot transfers skipped because the rejoiner's recovered
    /// commit index already covered the coordinator's state.
    pub snapshots_skipped: AtomicU64,
    /// TCP connections accepted by the listener.
    pub connections: AtomicU64,
    /// Operations appended to the WAL (durable once their group-commit
    /// batch syncs, or a checkpoint supersedes them).
    pub wal_appends: AtomicU64,
    /// Bytes appended to the WAL (record framing included).
    pub wal_bytes: AtomicU64,
    /// Injected storage errors the WAL absorbed and retried (short
    /// writes, failed fsyncs); the affected acks were withheld until
    /// the retry or a superseding checkpoint succeeded.
    pub wal_append_failures: AtomicU64,
    /// Checkpoints written (dual-slot) with the log truncated.
    pub checkpoints: AtomicU64,
    /// Recoveries performed at startup (checkpoint load + tail replay).
    pub recoveries: AtomicU64,
    /// Torn/short/corrupt tail records dropped during recovery replay.
    pub torn_tail_records: AtomicU64,
}

impl KvMetrics {
    /// Renders the `ensemble_kv_*` series in Prometheus text exposition
    /// format.
    pub fn render(&self) -> String {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut reg = Registry::new();
        reg.set_int("ensemble_kv_requests_total", &[], ld(&self.requests));
        reg.set_int("ensemble_kv_commits_total", &[], ld(&self.commits));
        reg.set_int("ensemble_kv_responses_total", &[], ld(&self.responses));
        reg.set_int(
            "ensemble_kv_rejected_total",
            &[("reason", "not_serving")],
            ld(&self.rejected_not_serving),
        );
        reg.set_int(
            "ensemble_kv_rejected_total",
            &[("reason", "timeout")],
            ld(&self.timeouts),
        );
        reg.set_int(
            "ensemble_kv_snapshots_installed_total",
            &[],
            ld(&self.snapshots_installed),
        );
        reg.set_int(
            "ensemble_kv_snapshots_skipped_total",
            &[],
            ld(&self.snapshots_skipped),
        );
        reg.set_int("ensemble_kv_connections_total", &[], ld(&self.connections));
        reg.set_int("ensemble_kv_wal_appends_total", &[], ld(&self.wal_appends));
        reg.set_int("ensemble_kv_wal_bytes_total", &[], ld(&self.wal_bytes));
        reg.set_int(
            "ensemble_kv_wal_append_failures_total",
            &[],
            ld(&self.wal_append_failures),
        );
        reg.set_int("ensemble_kv_checkpoints_total", &[], ld(&self.checkpoints));
        reg.set_int("ensemble_kv_recoveries_total", &[], ld(&self.recoveries));
        reg.set_int(
            "ensemble_kv_torn_tail_records_total",
            &[],
            ld(&self.torn_tail_records),
        );
        reg.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_every_kv_series() {
        let m = KvMetrics::default();
        m.requests.store(42, Ordering::Relaxed);
        m.commits.store(40, Ordering::Relaxed);
        let text = m.render();
        for series in [
            "ensemble_kv_requests_total 42",
            "ensemble_kv_commits_total 40",
            "ensemble_kv_responses_total 0",
            "ensemble_kv_rejected_total{reason=\"not_serving\"}",
            "ensemble_kv_rejected_total{reason=\"timeout\"}",
            "ensemble_kv_snapshots_installed_total",
            "ensemble_kv_snapshots_skipped_total",
            "ensemble_kv_connections_total",
            "ensemble_kv_wal_appends_total",
            "ensemble_kv_wal_bytes_total",
            "ensemble_kv_wal_append_failures_total",
            "ensemble_kv_checkpoints_total",
            "ensemble_kv_recoveries_total",
            "ensemble_kv_torn_tail_records_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }
}
