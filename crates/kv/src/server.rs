//! The TCP client plane: a thread-pooled frame server.
//!
//! The listener accepts connections on one thread and hands them to a
//! fixed pool of workers through a shared queue (the classic
//! connector/listener thread-pool shape): each worker parks on the
//! queue, takes a connection, and serves it for its whole lifetime, so
//! the pool size bounds concurrent connections and excess connections
//! wait in the queue.
//!
//! Each connection is served with request pipelining: the worker keeps
//! reading frames while up to `pipeline_depth` operations are in
//! flight, and writes completions back in *completion* order — clients
//! match responses by `req_id`, not position. A request that misses its
//! deadline is answered with a timeout error and withdrawn from the
//! replica's pending table; one that arrives while the replica is
//! stalled in a minority partition is rejected immediately with
//! "not serving" so the client can redirect instead of waiting.

use crate::proto::{
    decode_request, encode_response, write_frame, KvError, KvOp, KvResult, MAX_FRAME,
};
use crate::replica::ReplicaFront;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning for one listener (extracted from [`crate::KvConfig`]).
#[derive(Clone, Debug)]
pub struct ListenerConfig {
    /// Worker threads in the pool.
    pub pool: usize,
    /// Per-request commit deadline.
    pub request_timeout: Duration,
    /// Most in-flight operations per connection.
    pub pipeline_depth: usize,
}

impl From<&crate::KvConfig> for ListenerConfig {
    fn from(cfg: &crate::KvConfig) -> ListenerConfig {
        ListenerConfig {
            pool: cfg.listener_pool,
            request_timeout: cfg.request_timeout,
            pipeline_depth: cfg.pipeline_depth,
        }
    }
}

/// A running TCP listener for one replica.
pub struct KvListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl KvListener {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and starts serving `front`.
    pub fn start(
        front: ReplicaFront,
        bind: &str,
        cfg: ListenerConfig,
    ) -> std::io::Result<KvListener> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let (conn_tx, conn_rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(cfg.pool);
        for w in 0..cfg.pool {
            let rx = Arc::clone(&conn_rx);
            let front = front.clone();
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ensemble-kv-worker-{w}"))
                    .spawn(move || loop {
                        // Park on the shared queue; holding the lock
                        // while waiting is the point — exactly one idle
                        // worker claims the next connection.
                        let conn = {
                            let rx = rx.lock().expect("kv connection queue mutex poisoned");
                            rx.recv_timeout(Duration::from_millis(100))
                        };
                        match conn {
                            Ok(stream) => serve_connection(stream, &front, &cfg, &stop),
                            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                            }
                            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                        }
                    })?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept_front = front;
        let accept = std::thread::Builder::new()
            .name("ensemble-kv-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept_front
                                .metrics()
                                .connections
                                .fetch_add(1, Ordering::Relaxed);
                            if conn_tx.send(stream).is_err() {
                                return;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })?;

        Ok(KvListener {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the pool, and joins every thread.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for KvListener {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One queued in-flight operation on a connection.
struct Inflight {
    req_id: u64,
    rx: Receiver<KvResult>,
    token: Option<u64>,
    deadline: Instant,
}

fn serve_connection(
    stream: TcpStream,
    front: &ReplicaFront,
    cfg: &ListenerConfig,
    stop: &Arc<AtomicBool>,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut acc: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut inflight: VecDeque<Inflight> = VecDeque::new();

    'conn: loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }

        // Read while the pipeline has room (the 2 ms read timeout also
        // paces the completion sweep below when the connection idles).
        if inflight.len() < cfg.pipeline_depth {
            match stream.read(&mut tmp) {
                Ok(0) => break 'conn,
                Ok(n) => {
                    acc.extend_from_slice(&tmp[..n]);
                    if !queue_frames(&mut acc, &mut stream, front, cfg, &mut inflight) {
                        break 'conn;
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break 'conn,
            }
        } else {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Sweep completions — in completion order, not request order.
        let mut i = 0;
        while i < inflight.len() {
            let entry = &inflight[i];
            let done = match entry.rx.try_recv() {
                Ok(r) => Some(r),
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    if Instant::now() >= entry.deadline {
                        let timed_out = entry.token.map(|t| front.withdraw(t)).unwrap_or(true);
                        if timed_out {
                            front.metrics().timeouts.fetch_add(1, Ordering::Relaxed);
                            Some(KvResult::Err(KvError::Timeout))
                        } else {
                            // The commit raced the deadline: its result
                            // is guaranteed to be in the channel now.
                            Some(
                                entry
                                    .rx
                                    .try_recv()
                                    .unwrap_or(KvResult::Err(KvError::Timeout)),
                            )
                        }
                    } else {
                        None
                    }
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    Some(KvResult::Err(KvError::Closed))
                }
            };
            match done {
                Some(result) => {
                    let entry = inflight.remove(i).expect("index in bounds");
                    let payload = encode_response(entry.req_id, &result);
                    if write_frame(&mut stream, &payload).is_err() {
                        break 'conn;
                    }
                }
                None => i += 1,
            }
        }
    }

    // The connection is gone; withdraw whatever is still pending so the
    // replica's table does not accumulate abandoned entries.
    for entry in inflight {
        if let Some(t) = entry.token {
            front.withdraw(t);
        }
    }
}

/// Parses every complete frame in `acc` and submits it. Returns `false`
/// on a protocol error (oversized or undecodable frame) — the
/// connection cannot be resynchronized and must be dropped.
fn queue_frames(
    acc: &mut Vec<u8>,
    stream: &mut TcpStream,
    front: &ReplicaFront,
    cfg: &ListenerConfig,
    inflight: &mut VecDeque<Inflight>,
) -> bool {
    loop {
        if acc.len() < 4 {
            return true;
        }
        let len = u32::from_le_bytes(acc[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return false;
        }
        if acc.len() < 4 + len {
            return true;
        }
        let payload: Vec<u8> = acc.drain(..4 + len).skip(4).collect();
        let Some((req_id, op)) = decode_request(&payload) else {
            return false;
        };
        queue_request(req_id, &op, stream, front, cfg, inflight);
    }
}

fn queue_request(
    req_id: u64,
    op: &KvOp,
    stream: &mut TcpStream,
    front: &ReplicaFront,
    cfg: &ListenerConfig,
    inflight: &mut VecDeque<Inflight>,
) {
    if !front.is_serving() {
        // Reject fast: the client redirects to another replica instead
        // of timing out against a stalled minority.
        let payload = encode_response(req_id, &KvResult::Err(KvError::NotServing));
        let _ = write_frame(stream, &payload);
        return;
    }
    let (rx, token) = front.submit_tracked(op);
    inflight.push_back(Inflight {
        req_id,
        rx,
        token,
        deadline: Instant::now() + cfg.request_timeout,
    });
}
