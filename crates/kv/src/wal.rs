//! The write-ahead log: checksummed, length-prefixed records plus
//! dual-slot checkpoints, over the [`StorageMedium`] seam.
//!
//! Record format (one per committed operation):
//!
//! ```text
//! +----------+----------+---------------------------+
//! | len u32le| crc u32le| payload = ci u64le || op  |
//! +----------+----------+---------------------------+
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. Replay walks records from
//! the front and stops — without panicking — at the first record that
//! is short, torn, fails its checksum, or does not decode: everything
//! from there on is an unsynced tail a crash was allowed to destroy.
//!
//! Checkpoints use two slots written alternately: a new checkpoint is
//! written (truncate slot, append `magic || len || crc || snapshot`,
//! sync) to the slot *not* holding the last good checkpoint, and only
//! after that sync succeeds is the log truncated. A crash at any point
//! leaves at least one valid checkpoint on disk; recovery picks the
//! slot with the higher commit index and replays the log tail past it.
//!
//! Durability tracking: [`Wal::append`] buffers the record and tries to
//! flush (append, then fsync by group commit — the sync runs once
//! [`WalConfig::sync_every`] records sit unsynced, or on any forced
//! [`Wal::flush`]). The caller may only acknowledge a client once
//! [`Wal::durable_ci`] covers the operation's commit index — records
//! stuck behind an injected short write or fsync failure are retried on
//! the next flush, and a successful checkpoint also makes them durable
//! (the snapshot supersedes the log).

use crate::proto::{decode_op, encode_op, KvOp, MAX_FRAME};
use crate::storage::StorageMedium;
use crate::store::KvStore;
use std::collections::VecDeque;
use std::io::Result;

/// Slot header magic: "KVCP".
const CKPT_MAGIC: u32 = 0x4B56_4350;
/// Record header: len + crc.
const REC_HDR: usize = 8;

/// CRC-32 (IEEE 802.3), bitwise — small and dependency-free; the WAL
/// checksums records far shorter than any throughput concern.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// WAL tuning.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Take a checkpoint after this many appended records.
    pub checkpoint_every: u64,
    /// Group commit: sync only once this many records are written but
    /// unsynced (1 = sync on every append). A forced [`Wal::flush`] —
    /// which the replica issues on idle ticks — syncs regardless, so
    /// batching bounds ack latency by the idle-tick period, not by
    /// traffic. Larger batches amortize fsync and leave a realistic
    /// unsynced tail for a crash to tear.
    pub sync_every: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            checkpoint_every: 256,
            sync_every: 1,
        }
    }
}

/// What recovery found.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The recovered state machine.
    pub store: KvStore,
    /// Commit index of the checkpoint recovery started from (0 = none).
    pub checkpoint_ci: u64,
    /// Log records replayed past the checkpoint.
    pub replayed: u64,
    /// Records skipped because the checkpoint already covered them
    /// (a crash raced the post-checkpoint log truncation).
    pub skipped: u64,
    /// Torn/short/corrupt tail records the replay stopped at (0 or 1
    /// per recovery; counted so the chaos harness can assert tearing
    /// actually happened).
    pub torn_tail_records: u64,
}

impl RecoveryReport {
    /// The commit index the replica resumes from.
    pub fn recovered_ci(&self) -> u64 {
        self.store.commit_index()
    }
}

/// A write-ahead log over three media: the record log and two
/// checkpoint slots.
pub struct Wal {
    log: Box<dyn StorageMedium>,
    slots: [Box<dyn StorageMedium>; 2],
    cfg: WalConfig,
    /// Records encoded but not yet written into the log medium.
    backlog: VecDeque<(u64, Vec<u8>)>,
    /// Highest ci written into the log medium (possibly unsynced).
    written_ci: u64,
    /// Highest ci known durable (synced log record or checkpoint).
    durable_ci: u64,
    /// Records written into the medium but not yet synced.
    unsynced: u64,
    /// Injected storage errors absorbed since the last harvest
    /// (short writes, failed fsyncs) — all retried, none fatal.
    io_errors: u64,
    appended_since_ckpt: u64,
    /// The log holds stale records a failed truncation left behind.
    truncate_pending: bool,
    /// Slot to write the next checkpoint into.
    next_slot: usize,
}

impl Wal {
    /// A WAL over `log` and two checkpoint slots. Call
    /// [`Wal::recover`] before appending.
    pub fn new(
        log: Box<dyn StorageMedium>,
        slot_a: Box<dyn StorageMedium>,
        slot_b: Box<dyn StorageMedium>,
        cfg: WalConfig,
    ) -> Wal {
        Wal {
            log,
            slots: [slot_a, slot_b],
            cfg,
            backlog: VecDeque::new(),
            written_ci: 0,
            durable_ci: 0,
            unsynced: 0,
            io_errors: 0,
            appended_since_ckpt: 0,
            truncate_pending: false,
            next_slot: 0,
        }
    }

    /// A WAL over three named files (`<prefix>.log`, `<prefix>.ckpt-a`,
    /// `<prefix>.ckpt-b`) on a shared in-memory disk — the chaos
    /// harness's backend, where a reincarnated replica reopens the same
    /// disk its predecessor crashed on.
    pub fn on_mem_disk(disk: &crate::storage::MemDisk, prefix: &str, cfg: WalConfig) -> Wal {
        Wal::new(
            Box::new(disk.open(&format!("{prefix}.log"))),
            Box::new(disk.open(&format!("{prefix}.ckpt-a"))),
            Box::new(disk.open(&format!("{prefix}.ckpt-b"))),
            cfg,
        )
    }

    /// A WAL over three real files in `dir` (created if absent).
    pub fn on_dir(dir: &std::path::Path, cfg: WalConfig) -> Result<Wal> {
        std::fs::create_dir_all(dir)?;
        Ok(Wal::new(
            Box::new(crate::storage::FileStorage::open(&dir.join("wal.log"))?),
            Box::new(crate::storage::FileStorage::open(&dir.join("wal.ckpt-a"))?),
            Box::new(crate::storage::FileStorage::open(&dir.join("wal.ckpt-b"))?),
            cfg,
        ))
    }

    /// Highest commit index whose record (or covering checkpoint) is
    /// durable — the ack frontier.
    pub fn durable_ci(&self) -> u64 {
        self.durable_ci
    }

    /// Whether appended records are still waiting to become durable
    /// (a flush retry is worthwhile).
    pub fn needs_flush(&self) -> bool {
        !self.backlog.is_empty() || self.unsynced > 0
    }

    /// Injected storage errors absorbed since the last call (short
    /// writes, failed fsyncs). All were retried; none lost a record.
    pub fn take_io_errors(&mut self) -> u64 {
        std::mem::take(&mut self.io_errors)
    }

    /// Whether a checkpoint is due by the append-count policy.
    pub fn checkpoint_due(&self) -> bool {
        self.appended_since_ckpt >= self.cfg.checkpoint_every
    }

    /// Encodes and buffers the record for `(ci, op)`, then tries to
    /// flush. Returns the durable frontier after the attempt; the
    /// record's encoded length is returned for byte accounting.
    pub fn append(&mut self, ci: u64, op: &KvOp) -> (u64, usize) {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&ci.to_le_bytes());
        encode_op(&mut payload, op);
        let mut rec = Vec::with_capacity(REC_HDR + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        let len = rec.len();
        self.backlog.push_back((ci, rec));
        self.appended_since_ckpt += 1;
        self.flush_inner(false);
        (self.durable_ci, len)
    }

    /// Drives backlogged records into the medium and syncs. Safe to
    /// call any time; returns `true` when every appended record is
    /// durable.
    pub fn flush(&mut self) -> bool {
        self.flush_inner(true)
    }

    /// The flush engine. A non-forced flush (the append path) syncs
    /// only once `sync_every` records sit unsynced — group commit; a
    /// forced flush (idle tick, graceful shutdown) always syncs.
    fn flush_inner(&mut self, force: bool) -> bool {
        while let Some((ci, rec)) = self.backlog.front() {
            if self.log.append(rec).is_err() {
                // Short write: the medium discarded the partial record;
                // keep it in the backlog and retry on the next flush.
                self.io_errors += 1;
                return false;
            }
            self.written_ci = *ci;
            self.unsynced += 1;
            self.backlog.pop_front();
        }
        if self.unsynced > 0 && (force || self.unsynced >= self.cfg.sync_every.max(1)) {
            if self.log.sync().is_err() {
                self.io_errors += 1;
                return false;
            }
            self.unsynced = 0;
            self.durable_ci = self.written_ci;
        }
        self.unsynced == 0
    }

    /// Writes `snapshot` (taken at `ci`) to the alternate slot and, on
    /// success, truncates the log. Everything at or below `ci` becomes
    /// durable through the checkpoint.
    pub fn checkpoint(&mut self, ci: u64, snapshot: &[u8]) -> Result<()> {
        let slot = &mut self.slots[self.next_slot];
        slot.truncate()?;
        let mut rec = Vec::with_capacity(12 + snapshot.len());
        rec.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        rec.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(snapshot).to_le_bytes());
        rec.extend_from_slice(snapshot);
        slot.append(&rec)?;
        slot.sync()?;
        // The checkpoint is durable: the log's history (and anything
        // stuck in the backlog at or below `ci`) is superseded.
        self.next_slot = 1 - self.next_slot;
        self.appended_since_ckpt = 0;
        self.backlog.retain(|(rci, _)| *rci > ci);
        if self.durable_ci < ci {
            self.durable_ci = ci;
        }
        if self.written_ci < ci {
            self.written_ci = ci;
        }
        // A failed truncation is tolerable: replay skips records the
        // checkpoint covers. Retry on the next checkpoint.
        self.truncate_pending = self.log.truncate().is_err();
        self.unsynced = 0;
        Ok(())
    }

    /// Loads the best checkpoint and replays the log tail. Read-only
    /// with respect to the media (calling it twice yields byte-identical
    /// states); resets the writer frontier to what was recovered.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        let mut store = KvStore::new();
        let mut best_slot: Option<usize> = None;
        for i in 0..2 {
            let bytes = self.slots[i].read_all()?;
            if let Some(candidate) = decode_checkpoint(&bytes) {
                let better = best_slot.is_none() || candidate.commit_index() > store.commit_index();
                if better {
                    store = candidate;
                    best_slot = Some(i);
                }
            }
        }
        let checkpoint_ci = store.commit_index();
        let log = self.log.read_all()?;
        let mut at = 0usize;
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        let mut torn = 0u64;
        while at < log.len() {
            if log.len() - at < REC_HDR {
                torn += 1; // truncated length prefix / short header
                break;
            }
            let len = u32::from_le_bytes(log[at..at + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(log[at + 4..at + 8].try_into().unwrap());
            if !(9..=MAX_FRAME).contains(&len) || log.len() - at - REC_HDR < len {
                torn += 1; // absurd length or torn payload
                break;
            }
            let payload = &log[at + REC_HDR..at + REC_HDR + len];
            if crc32(payload) != crc {
                torn += 1; // checksum mismatch: stop at last valid record
                break;
            }
            let ci = u64::from_le_bytes(payload[..8].try_into().unwrap());
            let mut op_at = 8;
            let Some(op) = decode_op(payload, &mut op_at) else {
                torn += 1;
                break;
            };
            if op_at != payload.len() {
                torn += 1;
                break;
            }
            if ci <= store.commit_index() {
                // Covered by the checkpoint (truncation raced a crash).
                skipped += 1;
            } else if ci == store.commit_index() + 1 {
                store.apply(&op);
                replayed += 1;
            } else {
                // A gap: records here were never reachable from the
                // durable frontier, so they were never acknowledged.
                torn += 1;
                break;
            }
            at += REC_HDR + len;
        }
        self.written_ci = store.commit_index();
        self.durable_ci = store.commit_index();
        self.unsynced = 0;
        self.backlog.clear();
        self.appended_since_ckpt = replayed + skipped;
        self.next_slot = best_slot.map(|i| 1 - i).unwrap_or(0);
        Ok(RecoveryReport {
            checkpoint_ci,
            replayed,
            skipped,
            torn_tail_records: torn,
            store,
        })
    }
}

/// Decodes one checkpoint slot; `None` if empty, torn, or corrupt.
fn decode_checkpoint(bytes: &[u8]) -> Option<KvStore> {
    if bytes.len() < 12 {
        return None;
    }
    if u32::from_le_bytes(bytes[..4].try_into().unwrap()) != CKPT_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if bytes.len() - 12 < len {
        return None;
    }
    let snap = &bytes[12..12 + len];
    if crc32(snap) != crc {
        return None;
    }
    let mut store = KvStore::new();
    if !store.restore(snap) {
        return None;
    }
    Some(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{MemDisk, StorageFaults};

    fn mem_wal(disk: &MemDisk, cfg: WalConfig) -> Wal {
        Wal::new(
            Box::new(disk.open("log")),
            Box::new(disk.open("ckpt-a")),
            Box::new(disk.open("ckpt-b")),
            cfg,
        )
    }

    fn set(k: &[u8], v: &[u8]) -> KvOp {
        KvOp::Set(k.to_vec(), v.to_vec())
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn empty_log_recovers_to_an_empty_store() {
        let disk = MemDisk::new(1, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.recovered_ci(), 0);
        assert_eq!(rep.checkpoint_ci, 0);
        assert_eq!(rep.replayed, 0);
        assert_eq!(rep.torn_tail_records, 0);
        assert!(rep.store.is_empty());
    }

    #[test]
    fn appended_records_replay_across_a_crash() {
        let disk = MemDisk::new(2, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        let mut model = KvStore::new();
        for i in 0..20u8 {
            let op = set(&[i], &[i, i]);
            let ci = model.apply(&op);
            let ci = match ci {
                crate::proto::KvResult::Applied { ci } => ci,
                _ => unreachable!(),
            };
            let (durable, _) = wal.append(ci, &op);
            assert_eq!(durable, ci, "clean medium must be durable at once");
        }
        disk.crash();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.replayed, 20);
        assert_eq!(rep.store.snapshot(), model.snapshot());
    }

    #[test]
    fn checkpoint_with_no_tail_recovers_from_the_slot_alone() {
        let disk = MemDisk::new(3, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        let mut model = KvStore::new();
        for i in 0..5u8 {
            let op = set(&[i], b"v");
            model.apply(&op);
            wal.append(model.commit_index(), &op);
        }
        wal.checkpoint(model.commit_index(), &model.snapshot())
            .unwrap();
        disk.crash();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.checkpoint_ci, 5);
        assert_eq!(rep.replayed, 0);
        assert_eq!(rep.skipped, 0, "log was truncated");
        assert_eq!(rep.store.snapshot(), model.snapshot());
    }

    #[test]
    fn torn_final_record_is_dropped_and_counted() {
        let disk = MemDisk::new(4, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        wal.append(1, &set(b"a", b"1"));
        wal.append(2, &set(b"b", b"2"));
        // Tear the last record by hand: chop bytes off the durable log.
        let mut log = disk.open("log");
        let bytes = log.read_all().unwrap();
        log.truncate().unwrap();
        log.append(&bytes[..bytes.len() - 3]).unwrap();
        log.sync().unwrap();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.replayed, 1);
        assert_eq!(rep.torn_tail_records, 1);
        assert_eq!(rep.recovered_ci(), 1);
        assert_eq!(rep.store.peek(b"a"), Some(b"1".as_slice()));
        assert_eq!(rep.store.peek(b"b"), None);
    }

    #[test]
    fn truncated_length_prefix_is_dropped_and_counted() {
        let disk = MemDisk::new(5, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        wal.append(1, &set(b"a", b"1"));
        let mut log = disk.open("log");
        log.append(&[0x05, 0x00, 0x00]).unwrap(); // 3 bytes of header
        log.sync().unwrap();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.replayed, 1);
        assert_eq!(rep.torn_tail_records, 1);
    }

    #[test]
    fn checksum_mismatch_mid_log_stops_at_last_valid_record() {
        let disk = MemDisk::new(6, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        wal.append(1, &set(b"a", b"1"));
        let (_, rec2_len) = wal.append(2, &set(b"b", b"2"));
        wal.append(3, &set(b"c", b"3"));
        // Flip a payload bit inside record 2 (mid-log).
        let mut log = disk.open("log");
        let mut bytes = log.read_all().unwrap();
        let rec1_end = bytes.len() - 2 * rec2_len; // all three records are the same size
        bytes[rec1_end + REC_HDR + 9] ^= 0x40;
        log.truncate().unwrap();
        log.append(&bytes).unwrap();
        log.sync().unwrap();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.replayed, 1, "stop at the last valid record");
        assert_eq!(rep.torn_tail_records, 1);
        assert_eq!(rep.recovered_ci(), 1);
    }

    #[test]
    fn double_crash_during_checkpoint_falls_back_to_the_other_slot() {
        let disk = MemDisk::new(7, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        let mut model = KvStore::new();
        for i in 0..4u8 {
            let op = set(&[i], b"x");
            model.apply(&op);
            wal.append(model.commit_index(), &op);
        }
        wal.checkpoint(model.commit_index(), &model.snapshot())
            .unwrap();
        let at_first_ckpt = model.snapshot();
        for i in 4..8u8 {
            let op = set(&[i], b"y");
            model.apply(&op);
            wal.append(model.commit_index(), &op);
        }
        // Simulate a crash in the middle of writing the second
        // checkpoint: slot B gets a torn header and the log survives.
        let mut slot_b = disk.open("ckpt-b");
        slot_b.truncate().unwrap();
        slot_b.append(&CKPT_MAGIC.to_le_bytes()).unwrap();
        slot_b.append(&[0xFF, 0x00]).unwrap();
        slot_b.sync().unwrap();
        disk.crash();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.checkpoint_ci, 4, "fell back to slot A");
        assert_eq!(rep.replayed, 4, "tail past the good checkpoint");
        assert_eq!(rep.store.snapshot(), model.snapshot());
        assert_ne!(rep.store.snapshot(), at_first_ckpt);
        // And a second crash before any repair keeps recovering the same
        // state, byte for byte.
        disk.crash();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep2 = wal.recover().unwrap();
        assert_eq!(rep2.store.snapshot(), model.snapshot());
    }

    #[test]
    fn failed_log_truncation_after_checkpoint_is_skipped_on_replay() {
        let disk = MemDisk::new(8, StorageFaults::clean());
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        let mut model = KvStore::new();
        for i in 0..3u8 {
            let op = set(&[i], b"z");
            model.apply(&op);
            wal.append(model.commit_index(), &op);
        }
        // Checkpoint, then put the pre-checkpoint records *back* into
        // the log as if truncation never happened.
        let old_log = disk.open("log").read_all().unwrap();
        wal.checkpoint(model.commit_index(), &model.snapshot())
            .unwrap();
        let mut log = disk.open("log");
        log.truncate().unwrap();
        log.append(&old_log).unwrap();
        log.sync().unwrap();
        // New traffic lands after the stale records.
        let op = set(b"post", b"1");
        model.apply(&op);
        wal.append(model.commit_index(), &op);
        disk.crash();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.skipped, 3, "stale records skipped, not replayed");
        assert_eq!(rep.replayed, 1);
        assert_eq!(rep.store.snapshot(), model.snapshot());
    }

    #[test]
    fn append_failures_hold_the_ack_frontier_until_repair() {
        let faults = StorageFaults {
            fsync_fail_p: 1.0,
            ..StorageFaults::clean()
        };
        let disk = MemDisk::new(9, faults);
        let mut wal = mem_wal(&disk, WalConfig::default());
        wal.recover().unwrap();
        let (durable, _) = wal.append(1, &set(b"a", b"1"));
        assert_eq!(durable, 0, "fsync failed: nothing is durable");
        // A checkpoint (whose slot writes bypass the broken fsync here
        // only because we repair the plan) advances the frontier.
        let disk2 = MemDisk::new(9, StorageFaults::clean());
        let mut wal = mem_wal(&disk2, WalConfig::default());
        wal.recover().unwrap();
        let mut model = KvStore::new();
        let op = set(b"a", b"1");
        model.apply(&op);
        // Force every log append to fail by tearing the log medium's
        // sync path: emulate by appending through a faulty wal below.
        let faulty = MemDisk::new(9, faults);
        let mut wal = Wal::new(
            Box::new(faulty.open("log")),
            Box::new(disk2.open("ckpt-a")),
            Box::new(disk2.open("ckpt-b")),
            WalConfig::default(),
        );
        wal.recover().unwrap();
        let (durable, _) = wal.append(1, &op);
        assert_eq!(durable, 0);
        wal.checkpoint(1, &model.snapshot()).unwrap();
        assert_eq!(wal.durable_ci(), 1, "checkpoint supersedes the log");
    }

    #[test]
    fn group_commit_defers_the_sync_until_the_batch_fills() {
        let disk = MemDisk::new(11, StorageFaults::clean());
        let cfg = WalConfig {
            sync_every: 4,
            ..WalConfig::default()
        };
        let mut wal = mem_wal(&disk, cfg);
        wal.recover().unwrap();
        for ci in 1..=3u64 {
            let (durable, _) = wal.append(ci, &set(&[ci as u8], b"v"));
            assert_eq!(durable, 0, "batch not full: nothing synced yet");
        }
        // The fourth record fills the batch and syncs all four.
        let (durable, _) = wal.append(4, &set(&[4], b"v"));
        assert_eq!(durable, 4);
        // A partial batch stays volatile until a forced flush.
        let (durable, _) = wal.append(5, &set(&[5], b"v"));
        assert_eq!(durable, 4);
        assert!(wal.needs_flush());
        assert!(wal.flush());
        assert_eq!(wal.durable_ci(), 5);
        // An unsynced partial batch is what a crash may tear.
        let (durable, _) = wal.append(6, &set(&[6], b"v"));
        assert_eq!(durable, 5);
        disk.crash();
        let mut wal = mem_wal(&disk, WalConfig::default());
        let rep = wal.recover().unwrap();
        assert_eq!(rep.recovered_ci(), 5, "clean crash drops the tail whole");
    }

    #[test]
    fn seeded_torn_crashes_never_lose_a_durable_record() {
        // The chaos gate in miniature: across many seeds, crash with
        // torn tails + bit flips and check every record that reported
        // durable is recovered.
        let faults = StorageFaults {
            torn_tail_p: 0.8,
            bit_flip_p: 0.5,
            fsync_fail_p: 0.2,
            short_write_p: 0.1,
        };
        for seed in 0..24u64 {
            let disk = MemDisk::new(seed, faults);
            let mut wal = mem_wal(
                &disk,
                WalConfig {
                    checkpoint_every: 7,
                    ..WalConfig::default()
                },
            );
            wal.recover().unwrap();
            let mut model = KvStore::new();
            let mut durable_frontier = 0u64;
            for i in 0..40u8 {
                let op = set(&[i], &[seed as u8, i]);
                model.apply(&op);
                let (durable, _) = wal.append(model.commit_index(), &op);
                durable_frontier = durable;
                if wal.checkpoint_due() {
                    let _ = wal.checkpoint(model.commit_index(), &model.snapshot());
                    durable_frontier = wal.durable_ci();
                }
            }
            disk.crash();
            let mut wal = mem_wal(&disk, WalConfig::default());
            let rep = wal.recover().unwrap();
            assert!(
                rep.recovered_ci() >= durable_frontier,
                "seed {seed}: recovered {} < durable frontier {durable_frontier}",
                rep.recovered_ci(),
            );
            // Determinism: recovering again yields the same bytes.
            let mut wal2 = mem_wal(&disk, WalConfig::default());
            let rep2 = wal2.recover().unwrap();
            assert_eq!(rep.store.snapshot(), rep2.store.snapshot());
        }
    }
}
