//! The storage seam under the write-ahead log.
//!
//! The WAL never touches files directly; it writes through a
//! [`StorageMedium`], which models the durability contract of a real
//! disk: bytes appended are *volatile* until a [`sync`] succeeds, and a
//! crash may surface any prefix of the unsynced tail — torn mid-record,
//! bit-flipped, or gone entirely. Two backends implement the seam:
//!
//! * [`MemStorage`] — handles into a shared in-memory [`MemDisk`] whose
//!   [`crash`] operation materializes a seeded crash outcome (modeled on
//!   the loopback transport's `FaultPlan`): each file keeps its durable
//!   bytes plus a random prefix of its unsynced tail, optionally with a
//!   flipped bit inside that torn region. Faults never touch bytes that
//!   a successful `sync` already made durable — exactly the guarantee
//!   `fsync` gives — so "no acknowledged write is lost" is checkable.
//! * [`FileStorage`] — a real file (`write` + `sync_data` +
//!   `set_len`), for running the same recovery path against an actual
//!   filesystem.
//!
//! [`sync`]: StorageMedium::sync
//! [`crash`]: MemDisk::crash

use ensemble_util::DetRng;
use std::collections::BTreeMap;
use std::io::{Error, ErrorKind, Read, Result, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex};

/// The durability contract the WAL writes through.
///
/// `append` buffers bytes that become durable only once `sync` returns
/// `Ok`; `read_all` returns the durable image (what a restart would
/// see); `truncate` discards everything, durably.
pub trait StorageMedium: Send {
    /// The durable contents, start to end.
    fn read_all(&mut self) -> Result<Vec<u8>>;
    /// Buffers `bytes` at the end. Not durable until [`sync`] succeeds.
    ///
    /// [`sync`]: StorageMedium::sync
    fn append(&mut self, bytes: &[u8]) -> Result<()>;
    /// Makes every buffered byte durable (fsync).
    fn sync(&mut self) -> Result<()>;
    /// Durably discards all contents.
    fn truncate(&mut self) -> Result<()>;
    /// Durable length in bytes.
    fn durable_len(&mut self) -> Result<u64>;
}

/// Seeded storage-fault plan (the disk analog of the loopback
/// transport's `FaultPlan`).
#[derive(Clone, Copy, Debug)]
pub struct StorageFaults {
    /// Probability an `append` fails after buffering only a prefix of
    /// the record (short write). The partial bytes are discarded from
    /// the buffer — but an earlier unsynced tail still tears on crash.
    pub short_write_p: f64,
    /// Probability a `sync` fails, leaving the buffered tail volatile.
    pub fsync_fail_p: f64,
    /// Probability a crash keeps a non-empty prefix of the unsynced
    /// tail (a torn tail) instead of dropping it whole.
    pub torn_tail_p: f64,
    /// Probability one bit inside a surviving torn tail is flipped.
    pub bit_flip_p: f64,
}

impl StorageFaults {
    /// No faults: appends and syncs succeed, crashes drop the unsynced
    /// tail cleanly.
    pub fn clean() -> StorageFaults {
        StorageFaults {
            short_write_p: 0.0,
            fsync_fail_p: 0.0,
            torn_tail_p: 0.0,
            bit_flip_p: 0.0,
        }
    }

    /// The chaos-harness default: occasional short writes and fsync
    /// failures, with crashes that usually tear and sometimes flip.
    pub fn lossy() -> StorageFaults {
        StorageFaults {
            short_write_p: 0.05,
            fsync_fail_p: 0.05,
            torn_tail_p: 0.7,
            bit_flip_p: 0.25,
        }
    }
}

#[derive(Default)]
struct MemFile {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

struct MemDiskInner {
    files: BTreeMap<String, MemFile>,
    faults: StorageFaults,
    rng: DetRng,
    crashes: u64,
}

/// A shared in-memory "disk" holding named files; cloning the handle is
/// cheap and every [`MemStorage`] opened from it sees the same bytes,
/// so a crashed replica's reincarnation reopens the same state.
#[derive(Clone)]
pub struct MemDisk {
    inner: Arc<Mutex<MemDiskInner>>,
}

impl MemDisk {
    /// A fresh disk with a seeded fault plan.
    pub fn new(seed: u64, faults: StorageFaults) -> MemDisk {
        MemDisk {
            inner: Arc::new(Mutex::new(MemDiskInner {
                files: BTreeMap::new(),
                faults,
                rng: DetRng::new(seed ^ 0x5707_AC3D_15C0_FEED),
                crashes: 0,
            })),
        }
    }

    /// Opens (creating if absent) a named file on this disk.
    pub fn open(&self, name: &str) -> MemStorage {
        self.inner
            .lock()
            .expect("mem disk mutex poisoned")
            .files
            .entry(name.to_string())
            .or_default();
        MemStorage {
            disk: self.clone(),
            name: name.to_string(),
        }
    }

    /// Simulates a power-cut: for every file, the unsynced tail either
    /// vanishes or survives as a seeded prefix (torn), possibly with one
    /// bit flipped inside the surviving torn bytes. Durable bytes are
    /// never touched.
    pub fn crash(&self) {
        let mut inner = self.inner.lock().expect("mem disk mutex poisoned");
        inner.crashes += 1;
        let mut rng = inner.rng.fork();
        let faults = inner.faults;
        for file in inner.files.values_mut() {
            if file.pending.is_empty() {
                continue;
            }
            let pending = std::mem::take(&mut file.pending);
            if faults.torn_tail_p > 0.0 && rng.chance(faults.torn_tail_p) {
                // Keep a strict prefix so the tail record is torn.
                let keep = rng.below(pending.len() as u64 + 1) as usize;
                let torn_start = file.durable.len();
                file.durable.extend_from_slice(&pending[..keep]);
                if keep > 0 && faults.bit_flip_p > 0.0 && rng.chance(faults.bit_flip_p) {
                    let at = torn_start + rng.below(keep as u64) as usize;
                    file.durable[at] ^= 1 << rng.below(8);
                }
            }
        }
    }

    /// How many crashes this disk has absorbed.
    pub fn crash_count(&self) -> u64 {
        self.inner.lock().expect("mem disk mutex poisoned").crashes
    }

    /// Total volatile (appended-but-unsynced) bytes across every file —
    /// what the next crash is allowed to destroy or tear.
    pub fn pending_len(&self) -> u64 {
        let inner = self.inner.lock().expect("mem disk mutex poisoned");
        inner.files.values().map(|f| f.pending.len() as u64).sum()
    }
}

/// One named file on a [`MemDisk`].
pub struct MemStorage {
    disk: MemDisk,
    name: String,
}

impl MemStorage {
    fn with<T>(&self, f: impl FnOnce(&mut MemFile, &mut DetRng, StorageFaults) -> T) -> T {
        let mut inner = self.disk.inner.lock().expect("mem disk mutex poisoned");
        let mut rng = inner.rng.fork();
        let faults = inner.faults;
        let file = inner
            .files
            .get_mut(&self.name)
            .expect("mem file opened but missing");
        f(file, &mut rng, faults)
    }
}

impl StorageMedium for MemStorage {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.with(|f, _, _| f.durable.clone()))
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.with(|f, rng, faults| {
            if faults.short_write_p > 0.0 && rng.chance(faults.short_write_p) {
                // The write syscall failed partway; the buffered partial
                // record is discarded, but the caller must treat the
                // record as not durable and retry or fail upward.
                return Err(Error::new(ErrorKind::WriteZero, "injected short write"));
            }
            f.pending.extend_from_slice(bytes);
            Ok(())
        })
    }

    fn sync(&mut self) -> Result<()> {
        self.with(|f, rng, faults| {
            if faults.fsync_fail_p > 0.0 && rng.chance(faults.fsync_fail_p) {
                // The tail stays volatile; a crash now can still tear it.
                return Err(Error::other("injected fsync failure"));
            }
            let pending = std::mem::take(&mut f.pending);
            f.durable.extend_from_slice(&pending);
            Ok(())
        })
    }

    fn truncate(&mut self) -> Result<()> {
        self.with(|f, rng, faults| {
            if faults.fsync_fail_p > 0.0 && rng.chance(faults.fsync_fail_p) {
                return Err(Error::other("injected truncate failure"));
            }
            f.durable.clear();
            f.pending.clear();
            Ok(())
        })
    }

    fn durable_len(&mut self) -> Result<u64> {
        Ok(self.with(|f, _, _| f.durable.len() as u64))
    }
}

/// A real file implementing the seam (`write` + `sync_data`).
pub struct FileStorage {
    file: std::fs::File,
}

impl FileStorage {
    /// Opens (creating if absent) `path` for append-and-read.
    pub fn open(path: &std::path::Path) -> Result<FileStorage> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileStorage { file })
    }
}

impl StorageMedium for FileStorage {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()
    }

    fn durable_len(&mut self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_bytes_survive_a_crash_unsynced_bytes_may_not() {
        let disk = MemDisk::new(7, StorageFaults::clean());
        let mut f = disk.open("wal");
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b"volatile").unwrap();
        disk.crash();
        let mut f = disk.open("wal");
        // Clean faults: the unsynced tail vanishes whole.
        assert_eq!(f.read_all().unwrap(), b"durable");
        assert_eq!(disk.crash_count(), 1);
    }

    #[test]
    fn torn_crash_keeps_only_a_prefix_of_the_unsynced_tail() {
        let faults = StorageFaults {
            torn_tail_p: 1.0,
            ..StorageFaults::clean()
        };
        for seed in 0..32 {
            let disk = MemDisk::new(seed, faults);
            let mut f = disk.open("wal");
            f.append(b"durable!").unwrap();
            f.sync().unwrap();
            f.append(b"0123456789").unwrap();
            disk.crash();
            let bytes = disk.open("wal").read_all().unwrap();
            assert!(bytes.len() >= 8, "durable prefix lost");
            assert_eq!(&bytes[..8], b"durable!");
            assert!(bytes.len() <= 18, "crash grew the file");
            assert_eq!(&bytes[8..], &b"0123456789"[..bytes.len() - 8]);
        }
    }

    #[test]
    fn bit_flips_stay_inside_the_torn_region() {
        let faults = StorageFaults {
            torn_tail_p: 1.0,
            bit_flip_p: 1.0,
            ..StorageFaults::clean()
        };
        for seed in 0..64 {
            let disk = MemDisk::new(seed, faults);
            let mut f = disk.open("wal");
            f.append(b"durable!").unwrap();
            f.sync().unwrap();
            f.append(b"0123456789").unwrap();
            disk.crash();
            let bytes = disk.open("wal").read_all().unwrap();
            // The synced prefix is sacred even under maximal flipping.
            assert_eq!(&bytes[..8], b"durable!");
        }
    }

    #[test]
    fn injected_append_and_sync_failures_surface_as_errors() {
        let faults = StorageFaults {
            short_write_p: 1.0,
            ..StorageFaults::clean()
        };
        let disk = MemDisk::new(3, faults);
        let mut f = disk.open("wal");
        assert!(f.append(b"x").is_err());
        assert_eq!(f.read_all().unwrap(), b"");

        let faults = StorageFaults {
            fsync_fail_p: 1.0,
            ..StorageFaults::clean()
        };
        let disk = MemDisk::new(3, faults);
        let mut f = disk.open("wal");
        f.append(b"x").unwrap();
        assert!(f.sync().is_err());
        // Unsynced: a crash with clean tearing would drop it; durable
        // image is still empty.
        assert_eq!(f.read_all().unwrap(), b"");
    }

    #[test]
    fn truncate_discards_durable_and_pending() {
        let disk = MemDisk::new(9, StorageFaults::clean());
        let mut f = disk.open("wal");
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        f.append(b"def").unwrap();
        f.truncate().unwrap();
        assert_eq!(f.durable_len().unwrap(), 0);
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"");
    }

    #[test]
    fn file_storage_roundtrips_on_a_real_file() {
        let dir = std::env::temp_dir().join(format!("ensemble-kv-st-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut f = FileStorage::open(&path).unwrap();
            f.append(b"hello ").unwrap();
            f.append(b"disk").unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = FileStorage::open(&path).unwrap();
            assert_eq!(f.read_all().unwrap(), b"hello disk");
            assert_eq!(f.durable_len().unwrap(), 10);
            f.truncate().unwrap();
            assert_eq!(f.read_all().unwrap(), b"");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
