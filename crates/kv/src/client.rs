//! The TCP client: pipelining, per-request timeouts, and
//! retry-with-redirect.
//!
//! A [`KvClient`] holds the address of every replica's listener and one
//! live connection. Requests are written as pipelined frames and
//! completions are collected by `req_id` in whatever order the server
//! finishes them. When the contacted replica answers "not serving"
//! (stalled in a minority partition), the connection dies, or the batch
//! deadline passes, the client *redirects*: it advances to the next
//! address, reconnects, and resubmits the unanswered operations.
//!
//! Redirected resubmission is at-least-once: an operation whose ack was
//! lost may commit twice, at two commit indices. Each completion the
//! client *returns* names the index of one commit it actually observed,
//! which is what the linearizability checker verifies; callers that
//! need exactly-once semantics build it from CAS.
//!
//! Redirects are *bounded*: after `attempt_cap` failed tries (default:
//! every replica twice) the batch fails terminally with
//! [`KvError::Unavailable`], so a crashed quorum cannot spin a client
//! forever. Between failed tries the client sleeps an exponentially
//! growing, jittered backoff so a restarting cluster is not hammered by
//! synchronized reconnect storms.

use crate::proto::{
    decode_response, encode_request, write_frame, KvError, KvOp, KvResult, MAX_FRAME,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A redirecting, pipelining TCP client for the KV service.
pub struct KvClient {
    addrs: Vec<SocketAddr>,
    cur: usize,
    stream: Option<TcpStream>,
    next_req: u64,
    /// Per-batch commit deadline (also the per-request deadline for
    /// single-operation calls).
    timeout: Duration,
    redirects: u64,
    /// Failed tries allowed per batch before [`KvError::Unavailable`].
    attempt_cap: u32,
    /// Base delay of the exponential backoff between failed tries.
    backoff: Duration,
    /// SplitMix64 state feeding the backoff jitter.
    jitter: u64,
}

impl KvClient {
    /// A client for the replicas listening at `addrs` (tried in order,
    /// starting from the first).
    pub fn new(addrs: Vec<SocketAddr>, timeout: Duration) -> KvClient {
        let attempt_cap = (addrs.len().max(1) * 2) as u32;
        KvClient {
            addrs,
            cur: 0,
            stream: None,
            next_req: 0,
            timeout,
            redirects: 0,
            attempt_cap,
            backoff: Duration::from_millis(10),
            jitter: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Caps failed tries per batch (minimum 1); the default is every
    /// replica twice.
    pub fn with_attempt_cap(mut self, cap: u32) -> KvClient {
        self.attempt_cap = cap.max(1);
        self
    }

    /// Sets the base delay of the jittered exponential backoff between
    /// failed tries (default 10ms; the delay doubles per failure and is
    /// capped at 32× the base).
    pub fn with_backoff(mut self, base: Duration) -> KvClient {
        self.backoff = base;
        self
    }

    /// How many times this client abandoned a replica and moved on.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Reads `key`; `Ok(None)` means the key was absent.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        match self.call(&KvOp::Get(key.to_vec()))? {
            KvResult::Value { value, .. } => Ok(value),
            other => Err(unexpected(other)),
        }
    }

    /// Binds `key` to `value`; returns the commit index.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> Result<u64, KvError> {
        match self.call(&KvOp::Set(key.to_vec(), value.to_vec()))? {
            KvResult::Applied { ci } => Ok(ci),
            other => Err(unexpected(other)),
        }
    }

    /// Removes `key`; returns the commit index.
    pub fn del(&mut self, key: &[u8]) -> Result<u64, KvError> {
        match self.call(&KvOp::Del(key.to_vec()))? {
            KvResult::Applied { ci } => Ok(ci),
            other => Err(unexpected(other)),
        }
    }

    /// Compare-and-swap; returns `(succeeded, commit index)`.
    pub fn cas(
        &mut self,
        key: &[u8],
        expect: Option<&[u8]>,
        new: &[u8],
    ) -> Result<(bool, u64), KvError> {
        let op = KvOp::Cas {
            key: key.to_vec(),
            expect: expect.map(|e| e.to_vec()),
            new: new.to_vec(),
        };
        match self.call(&op)? {
            KvResult::Cas { ci, ok } => Ok((ok, ci)),
            other => Err(unexpected(other)),
        }
    }

    /// Runs one operation (a pipeline of one).
    pub fn call(&mut self, op: &KvOp) -> Result<KvResult, KvError> {
        let mut results = self.pipeline(std::slice::from_ref(op))?;
        results.pop().ok_or(KvError::Closed)
    }

    /// Runs `ops` pipelined on one connection; `results[i]` completes
    /// `ops[i]`. Redirects (reconnect + resubmit unanswered operations)
    /// with a jittered backoff until every operation has a committed
    /// result or the attempt cap is reached, then fails terminally with
    /// [`KvError::Unavailable`].
    pub fn pipeline(&mut self, ops: &[KvOp]) -> Result<Vec<KvResult>, KvError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if self.addrs.is_empty() {
            return Err(KvError::Closed);
        }
        let mut results: Vec<Option<KvResult>> = vec![None; ops.len()];
        let mut failures = 0u32;
        while failures < self.attempt_cap {
            let todo: Vec<usize> = (0..ops.len()).filter(|&i| results[i].is_none()).collect();
            if todo.is_empty() {
                break;
            }
            if self.try_batch(ops, &todo, &mut results).is_err() {
                failures += 1;
                self.redirect();
                if failures < self.attempt_cap {
                    std::thread::sleep(self.backoff_delay(failures));
                }
            }
        }
        let attempts = failures;
        let mut out = Vec::with_capacity(ops.len());
        for r in results {
            out.push(r.ok_or(KvError::Unavailable { attempts })?);
        }
        Ok(out)
    }

    /// The jittered exponential delay before retry number `failures`:
    /// 50–100% of `backoff × 2^(failures-1)`, exponent capped at 5.
    fn backoff_delay(&mut self, failures: u32) -> Duration {
        // SplitMix64: cheap, stateful, and dependency-free.
        self.jitter = self.jitter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let nominal = self
            .backoff
            .saturating_mul(1 << failures.saturating_sub(1).min(5));
        nominal / 2 + Duration::from_nanos(z % (nominal.as_nanos().max(2) / 2) as u64)
    }

    /// Sends `ops[todo]` on the current connection and collects their
    /// completions. `Err` means the *connection* (or replica) failed —
    /// redirect and resubmit whatever is still `None`.
    fn try_batch(
        &mut self,
        ops: &[KvOp],
        todo: &[usize],
        results: &mut [Option<KvResult>],
    ) -> Result<(), KvError> {
        // Own the stream for the batch: an early error return drops the
        // (now useless) connection, success puts it back.
        let mut stream = match self.stream.take() {
            Some(s) => s,
            None => self.connect()?,
        };
        // Assign req ids and pipeline every frame before reading.
        let mut wanted: HashMap<u64, usize> = HashMap::new();
        for &i in todo {
            let req_id = self.next_req;
            self.next_req += 1;
            wanted.insert(req_id, i);
            write_frame(&mut stream, &encode_request(req_id, &ops[i]))
                .map_err(|_| KvError::Closed)?;
        }
        // Collect completions (any order) until done or deadline.
        let deadline = Instant::now() + self.timeout;
        let mut acc: Vec<u8> = Vec::new();
        let mut tmp = [0u8; 16 * 1024];
        while !wanted.is_empty() {
            if Instant::now() >= deadline {
                return Err(KvError::Timeout);
            }
            match stream.read(&mut tmp) {
                Ok(0) => return Err(KvError::Closed),
                Ok(n) => acc.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    continue;
                }
                Err(_) => return Err(KvError::Closed),
            }
            loop {
                if acc.len() < 4 {
                    break;
                }
                let len = u32::from_le_bytes(acc[..4].try_into().unwrap()) as usize;
                if len > MAX_FRAME {
                    return Err(KvError::Malformed);
                }
                if acc.len() < 4 + len {
                    break;
                }
                let payload: Vec<u8> = acc.drain(..4 + len).skip(4).collect();
                let Some((req_id, result)) = decode_response(&payload) else {
                    return Err(KvError::Malformed);
                };
                let Some(i) = wanted.remove(&req_id) else {
                    continue; // A stale completion from before a redirect.
                };
                match result {
                    // The replica is stalled: fail the whole batch over
                    // to the next replica (every op still unanswered).
                    KvResult::Err(KvError::NotServing) => {
                        wanted.insert(req_id, i);
                        return Err(KvError::NotServing);
                    }
                    r => results[i] = Some(r),
                }
            }
        }
        self.stream = Some(stream);
        Ok(())
    }

    fn connect(&mut self) -> Result<TcpStream, KvError> {
        let addr = self.addrs[self.cur];
        let stream =
            TcpStream::connect_timeout(&addr, self.timeout.max(Duration::from_millis(100)))
                .map_err(|_| KvError::Closed)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        Ok(stream)
    }

    /// Drops the connection and advances to the next replica.
    fn redirect(&mut self) {
        self.stream = None;
        self.cur = (self.cur + 1) % self.addrs.len().max(1);
        self.redirects += 1;
    }
}

fn unexpected(r: KvResult) -> KvError {
    match r {
        KvResult::Err(e) => e,
        // A response of the wrong shape for the request type.
        _ => KvError::Malformed,
    }
}
