//! One KV replica: a [`ClusterNode`] plus the apply loop.
//!
//! The replica proposes every client operation as a group cast and
//! applies casts to its [`KvStore`] strictly in delivery order — the
//! total order *is* the commit order. The replica that proposed an
//! operation recognizes its own cast coming back (submitter id + token)
//! and completes the waiting client with the `(commit index, result)`
//! the state machine computed.
//!
//! Threading: the apply loop owns the `ClusterNode` on a dedicated
//! thread. Everything other threads need — proposing casts, the serving
//! flag, the pending-completion table — travels through the cheaply
//! cloneable [`ReplicaFront`], so TCP connection workers and simulated
//! clients never touch the node itself.

use crate::config::KvConfig;
use crate::metrics::KvMetrics;
use crate::proto::{decode_cast, encode_cast, KvError, KvOp, KvResult};
use crate::store::KvStore;
use ensemble_cluster::{ClusterError, ClusterEvent, ClusterNode, StateProvider};
use ensemble_event::ViewState;
use ensemble_obs::{now_ns, CcpFailure, Direction, Event, EventKind, Tag};
use ensemble_runtime::{Delivery, GroupSender, NodeObs, Transport};
use ensemble_util::Endpoint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Requests the owner thread sends into the apply loop (which is the
/// only thread that may touch the `ClusterNode`).
enum Ctl {
    MetricsText(Sender<String>),
    View(Sender<ViewState>),
}

/// The cheaply cloneable client-facing seam of a replica.
#[derive(Clone)]
pub struct ReplicaFront {
    id: u32,
    sender: GroupSender,
    serving: Arc<AtomicBool>,
    pending: Arc<Mutex<HashMap<u64, Sender<KvResult>>>>,
    next_token: Arc<AtomicU64>,
    metrics: Arc<KvMetrics>,
}

impl ReplicaFront {
    /// Whether the replica behind this front currently serves requests
    /// (false while stalled in a minority partition or fenced).
    pub fn is_serving(&self) -> bool {
        self.serving.load(Ordering::Relaxed)
    }

    /// This replica's endpoint id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The replica's counters.
    pub fn metrics(&self) -> &KvMetrics {
        &self.metrics
    }

    /// Proposes `op` into the total order; the receiver completes with
    /// the committed result (or an error if it never commits).
    pub fn submit(&self, op: &KvOp) -> Receiver<KvResult> {
        let (rx, _) = self.submit_tracked(op);
        rx
    }

    /// Like [`ReplicaFront::submit`], but also returns the pending-table
    /// token (when one was issued) so the caller can [`withdraw`] the
    /// operation if it stops waiting.
    ///
    /// [`withdraw`]: ReplicaFront::withdraw
    pub fn submit_tracked(&self, op: &KvOp) -> (Receiver<KvResult>, Option<u64>) {
        let (tx, rx) = channel();
        if !self.serving.load(Ordering::Relaxed) {
            self.metrics
                .rejected_not_serving
                .fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(KvResult::Err(KvError::NotServing));
            return (rx, None);
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.pending
            .lock()
            .expect("kv pending table mutex poisoned")
            .insert(token, tx);
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        if self.sender.cast(&encode_cast(self.id, token, op)).is_err() {
            let tx = self
                .pending
                .lock()
                .expect("kv pending table mutex poisoned")
                .remove(&token);
            if let Some(tx) = tx {
                let _ = tx.send(KvResult::Err(KvError::Closed));
            }
        }
        (rx, Some(token))
    }

    /// Withdraws a pending operation the caller no longer waits on.
    ///
    /// Returns `true` if the entry was still pending (a later commit
    /// goes unobserved — but perfectly linearized). Returns `false` if
    /// the commit already completed it; the apply loop completes
    /// entries while holding the table lock, so in that case the result
    /// is guaranteed to be sitting in the submit receiver.
    pub fn withdraw(&self, token: u64) -> bool {
        self.pending
            .lock()
            .expect("kv pending table mutex poisoned")
            .remove(&token)
            .is_some()
    }

    /// Proposes `op` and waits up to `timeout` for its commit.
    pub fn submit_timeout(&self, op: &KvOp, timeout: Duration) -> KvResult {
        let (rx, token) = self.submit_tracked(op);
        match rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(_) => {
                if let Some(token) = token {
                    if !self.withdraw(token) {
                        // The commit raced the timeout; take its result.
                        if let Ok(r) = rx.try_recv() {
                            return r;
                        }
                    }
                }
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                KvResult::Err(KvError::Timeout)
            }
        }
    }
}

/// A state-machine-replicated KV service member.
pub struct KvReplica {
    ep: Endpoint,
    front: ReplicaFront,
    log: Arc<Mutex<Vec<(u64, KvOp)>>>,
    ctl_tx: Sender<Ctl>,
    stop: Arc<AtomicBool>,
    apply: Option<std::thread::JoinHandle<()>>,
}

impl KvReplica {
    /// Rendezvous via `seed` and start this replica (blocking, like
    /// [`ClusterNode::form`]). The store snapshot is wired up as the
    /// cluster's [`StateProvider`], so joiners and post-heal merge
    /// grants receive the full map plus its commit index.
    pub fn form(
        ep: Endpoint,
        seed: Endpoint,
        cfg: KvConfig,
        control: Box<dyn Transport>,
        data: Box<dyn Transport>,
    ) -> Result<KvReplica, ClusterError> {
        cfg.validate()?;
        let store = Arc::new(Mutex::new(KvStore::new()));
        let snap_store = Arc::clone(&store);
        let provider: Box<dyn StateProvider> = Box::new(move || {
            snap_store
                .lock()
                .expect("kv store mutex poisoned")
                .snapshot()
        });
        let node = ClusterNode::form(ep, seed, cfg.cluster, control, data, Some(provider))?;

        let front = ReplicaFront {
            id: ep.id(),
            sender: node.sender(),
            serving: node.serving_flag(),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_token: Arc::new(AtomicU64::new(0)),
            metrics: Arc::new(KvMetrics::default()),
        };
        let log = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let (ctl_tx, ctl_rx) = channel();
        let loop_ = ApplyLoop {
            my_id: ep.id(),
            node,
            store,
            log: Arc::clone(&log),
            pending: Arc::clone(&front.pending),
            metrics: Arc::clone(&front.metrics),
            ctl_rx,
            stop: Arc::clone(&stop),
        };
        let apply = std::thread::Builder::new()
            .name(format!("ensemble-kv-{}", ep.id()))
            .spawn(move || loop_.run())
            .map_err(|e| ClusterError::Runtime(format!("spawn apply loop: {e}")))?;
        Ok(KvReplica {
            ep,
            front,
            log,
            ctl_tx,
            stop,
            apply: Some(apply),
        })
    }

    /// This replica's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// A cloneable client-facing front (submit, serving flag, metrics).
    pub fn front(&self) -> ReplicaFront {
        self.front.clone()
    }

    /// Whether this replica currently serves requests.
    pub fn is_serving(&self) -> bool {
        self.front.is_serving()
    }

    /// Proposes `op` and waits up to `timeout` for its commit.
    pub fn submit_timeout(&self, op: &KvOp, timeout: Duration) -> KvResult {
        self.front.submit_timeout(op, timeout)
    }

    /// This replica's service counters.
    pub fn metrics(&self) -> &KvMetrics {
        &self.front.metrics
    }

    /// A copy of the applied log (commit index, operation) — the
    /// checker's per-replica feed.
    pub fn commit_log(&self) -> Vec<(u64, KvOp)> {
        self.log
            .lock()
            .expect("kv commit log mutex poisoned")
            .clone()
    }

    /// The most recently installed view (asks the apply loop).
    pub fn view(&self) -> Option<ViewState> {
        let (tx, rx) = channel();
        self.ctl_tx.send(Ctl::View(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// Runtime + cluster + KV metrics in Prometheus text exposition
    /// format (asks the apply loop, which owns the node).
    pub fn metrics_text(&self) -> String {
        let (tx, rx) = channel();
        if self.ctl_tx.send(Ctl::MetricsText(tx)).is_err() {
            return self.front.metrics.render();
        }
        rx.recv_timeout(Duration::from_secs(2))
            .unwrap_or_else(|_| self.front.metrics.render())
    }

    /// Stops the apply loop and the underlying cluster member.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.apply.take() {
            let _ = t.join();
        }
    }
}

impl Drop for KvReplica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.apply.take() {
            let _ = t.join();
        }
    }
}

struct ApplyLoop {
    my_id: u32,
    node: ClusterNode,
    store: Arc<Mutex<KvStore>>,
    log: Arc<Mutex<Vec<(u64, KvOp)>>>,
    pending: Arc<Mutex<HashMap<u64, Sender<KvResult>>>>,
    metrics: Arc<KvMetrics>,
    ctl_rx: Receiver<Ctl>,
    stop: Arc<AtomicBool>,
}

impl ApplyLoop {
    fn run(self) {
        let obs = self.node.obs_arc();
        let shard = self.node.aux_obs_shard();
        let tag = obs.recorder.register("kv");
        while !self.stop.load(Ordering::Relaxed) {
            while let Ok(ctl) = self.ctl_rx.try_recv() {
                match ctl {
                    Ctl::MetricsText(tx) => {
                        let mut text = self.node.metrics_text();
                        text.push_str(&self.metrics.render());
                        let _ = tx.send(text);
                    }
                    Ctl::View(tx) => {
                        let _ = tx.send(self.node.view());
                    }
                }
            }
            if let Some(ev) = self.node.recv_timeout(Duration::from_millis(2)) {
                self.on_event(ev, &obs, shard, tag);
            }
        }
    }

    fn on_event(&self, ev: ClusterEvent, obs: &NodeObs, shard: usize, tag: Tag) {
        match ev {
            ClusterEvent::Snapshot(snap) => {
                let restored = self
                    .store
                    .lock()
                    .expect("kv store mutex poisoned")
                    .restore(&snap);
                if restored {
                    self.metrics
                        .snapshots_installed
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) => {
                let Some((submitter, token, op)) = decode_cast(&bytes) else {
                    return;
                };
                let result = self
                    .store
                    .lock()
                    .expect("kv store mutex poisoned")
                    .apply(&op);
                let ci = match &result {
                    KvResult::Value { ci, .. }
                    | KvResult::Applied { ci }
                    | KvResult::Cas { ci, .. } => *ci,
                    KvResult::Err(_) => unreachable!("apply always commits"),
                };
                self.log
                    .lock()
                    .expect("kv commit log mutex poisoned")
                    .push((ci, op));
                self.metrics.commits.fetch_add(1, Ordering::Relaxed);
                self.record(obs, shard, tag, EventKind::KvCommit, ci);
                if submitter == self.my_id {
                    // Complete while holding the lock: `submit_timeout`
                    // relies on remove-then-send being atomic with
                    // respect to its own withdrawal.
                    let mut pending = self
                        .pending
                        .lock()
                        .expect("kv pending table mutex poisoned");
                    if let Some(tx) = pending.remove(&token) {
                        let _ = tx.send(result);
                        self.metrics.responses.fetch_add(1, Ordering::Relaxed);
                        self.record(obs, shard, tag, EventKind::KvResponse, ci);
                    }
                }
            }
            // Views, sends, stalls, fences: membership is the cluster
            // layer's business; the serving flag already reflects it.
            _ => {}
        }
    }

    fn record(&self, obs: &NodeObs, shard: usize, tag: Tag, kind: EventKind, aux: u64) {
        if !obs.enabled() {
            return;
        }
        obs.recorder.record(
            shard,
            &Event {
                t_ns: now_ns(),
                layer: tag,
                kind,
                dir: Direction::Up,
                group: self.my_id,
                seqno: 0,
                ccp: CcpFailure::None,
                aux,
            },
        );
    }
}
