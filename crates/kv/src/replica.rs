//! One KV replica: a [`ClusterNode`] plus the apply loop.
//!
//! The replica proposes every client operation as a group cast and
//! applies casts to its [`KvStore`] strictly in delivery order — the
//! total order *is* the commit order. The replica that proposed an
//! operation recognizes its own cast coming back (submitter id + token)
//! and completes the waiting client with the `(commit index, result)`
//! the state machine computed.
//!
//! Threading: the apply loop owns the `ClusterNode` on a dedicated
//! thread. Everything other threads need — proposing casts, the serving
//! flag, the pending-completion table — travels through the cheaply
//! cloneable [`ReplicaFront`], so TCP connection workers and simulated
//! clients never touch the node itself.

use crate::config::KvConfig;
use crate::metrics::KvMetrics;
use crate::proto::{decode_cast, encode_cast, KvError, KvOp, KvResult};
use crate::store::KvStore;
use crate::wal::{RecoveryReport, Wal};
use ensemble_cluster::{ClusterError, ClusterEvent, ClusterNode, StateProvider};
use ensemble_event::ViewState;
use ensemble_obs::{now_ns, CcpFailure, Direction, Event, EventKind, Tag};
use ensemble_runtime::{Delivery, GroupSender, NodeObs, Transport};
use ensemble_util::Endpoint;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Requests the owner thread sends into the apply loop (which is the
/// only thread that may touch the `ClusterNode`).
enum Ctl {
    MetricsText(Sender<String>),
    View(Sender<ViewState>),
    /// Reply with `(commit index, snapshot)` only once the apply queue
    /// is drained. Sent by [`StoreProvider`] when the cluster driver
    /// builds a merge grant: the driver may have delivered casts the
    /// apply thread has not applied yet, and a snapshot taken mid-drain
    /// would be stale — the rejoiner would re-apply the gap and shift
    /// every later commit index. During a merge the group is wedged
    /// (flushed, no new casts), so "drained once" is "drained for good"
    /// and the reply is exact.
    Stable(Sender<(u64, Vec<u8>)>),
}

/// The cheaply cloneable client-facing seam of a replica.
#[derive(Clone)]
pub struct ReplicaFront {
    id: u32,
    sender: GroupSender,
    serving: Arc<AtomicBool>,
    pending: Arc<Mutex<HashMap<u64, Sender<KvResult>>>>,
    next_token: Arc<AtomicU64>,
    metrics: Arc<KvMetrics>,
}

impl ReplicaFront {
    /// Whether the replica behind this front currently serves requests
    /// (false while stalled in a minority partition or fenced).
    pub fn is_serving(&self) -> bool {
        self.serving.load(Ordering::Relaxed)
    }

    /// This replica's endpoint id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The replica's counters.
    pub fn metrics(&self) -> &KvMetrics {
        &self.metrics
    }

    /// Proposes `op` into the total order; the receiver completes with
    /// the committed result (or an error if it never commits).
    pub fn submit(&self, op: &KvOp) -> Receiver<KvResult> {
        let (rx, _) = self.submit_tracked(op);
        rx
    }

    /// Like [`ReplicaFront::submit`], but also returns the pending-table
    /// token (when one was issued) so the caller can [`withdraw`] the
    /// operation if it stops waiting.
    ///
    /// [`withdraw`]: ReplicaFront::withdraw
    pub fn submit_tracked(&self, op: &KvOp) -> (Receiver<KvResult>, Option<u64>) {
        let (tx, rx) = channel();
        if !self.serving.load(Ordering::Relaxed) {
            self.metrics
                .rejected_not_serving
                .fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(KvResult::Err(KvError::NotServing));
            return (rx, None);
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.pending
            .lock()
            .expect("kv pending table mutex poisoned")
            .insert(token, tx);
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        if self.sender.cast(&encode_cast(self.id, token, op)).is_err() {
            let tx = self
                .pending
                .lock()
                .expect("kv pending table mutex poisoned")
                .remove(&token);
            if let Some(tx) = tx {
                let _ = tx.send(KvResult::Err(KvError::Closed));
            }
        }
        (rx, Some(token))
    }

    /// Withdraws a pending operation the caller no longer waits on.
    ///
    /// Returns `true` if the entry was still pending (a later commit
    /// goes unobserved — but perfectly linearized). Returns `false` if
    /// the commit already completed it; the apply loop completes
    /// entries while holding the table lock, so in that case the result
    /// is guaranteed to be sitting in the submit receiver.
    pub fn withdraw(&self, token: u64) -> bool {
        self.pending
            .lock()
            .expect("kv pending table mutex poisoned")
            .remove(&token)
            .is_some()
    }

    /// Proposes `op` and waits up to `timeout` for its commit.
    pub fn submit_timeout(&self, op: &KvOp, timeout: Duration) -> KvResult {
        let (rx, token) = self.submit_tracked(op);
        match rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(_) => {
                if let Some(token) = token {
                    if !self.withdraw(token) {
                        // The commit raced the timeout; take its result.
                        if let Ok(r) = rx.try_recv() {
                            return r;
                        }
                    }
                }
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                KvResult::Err(KvError::Timeout)
            }
        }
    }
}

/// A state-machine-replicated KV service member.
pub struct KvReplica {
    ep: Endpoint,
    front: ReplicaFront,
    log: Arc<Mutex<Vec<(u64, KvOp)>>>,
    ctl_tx: Sender<Ctl>,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    apply: Option<std::thread::JoinHandle<()>>,
}

/// The cluster-facing state provider: snapshots the store and reports
/// its commit index as the state version (the merge-grant fast path's
/// resume hint).
///
/// The driver thread calls this while the apply thread may still be
/// draining delivered casts, so a direct store read can lag the flush
/// point. Once the apply loop runs, requests rendezvous with it via
/// [`Ctl::Stable`]; before it runs (rendezvous at form time) the store
/// is touched by no one else and a direct read is exact.
struct StoreProvider {
    store: Arc<Mutex<KvStore>>,
    ctl_tx: Sender<Ctl>,
    loop_running: Arc<AtomicBool>,
}

impl StoreProvider {
    /// `(commit index, snapshot)` at a point where the apply thread has
    /// drained everything delivered so far.
    fn stable(&mut self) -> (u64, Vec<u8>) {
        if self.loop_running.load(Ordering::Acquire) {
            let (tx, rx) = channel();
            if self.ctl_tx.send(Ctl::Stable(tx)).is_ok() {
                if let Ok(reply) = rx.recv_timeout(Duration::from_secs(5)) {
                    return reply;
                }
            }
        }
        let s = self.store.lock().expect("kv store mutex poisoned");
        (s.commit_index(), s.snapshot())
    }
}

impl StateProvider for StoreProvider {
    fn snapshot(&mut self) -> Vec<u8> {
        self.stable().1
    }

    fn version(&mut self) -> u64 {
        self.stable().0
    }
}

impl KvReplica {
    /// Rendezvous via `seed` and start this replica (blocking, like
    /// [`ClusterNode::form`]). The store snapshot is wired up as the
    /// cluster's [`StateProvider`], so joiners and post-heal merge
    /// grants receive the full map plus its commit index.
    ///
    /// A replica formed this way keeps its state only in memory — a
    /// crash loses everything not re-transferred by the group. Use
    /// [`KvReplica::form_durable`] for WAL-backed crash recovery.
    pub fn form(
        ep: Endpoint,
        seed: Endpoint,
        cfg: KvConfig,
        control: Box<dyn Transport>,
        data: Box<dyn Transport>,
    ) -> Result<KvReplica, ClusterError> {
        Self::form_inner(ep, seed, cfg, control, data, None).map(|(r, _)| r)
    }

    /// Like [`KvReplica::form`], but durable: recovers the state from
    /// `wal` (latest valid checkpoint slot, then the log tail,
    /// tolerating torn tail records), appends every committed operation
    /// to the WAL *before* acknowledging its client, and checkpoints
    /// per the WAL's config — build it with [`Wal::on_mem_disk`],
    /// [`Wal::on_dir`], or [`Wal::new`], passing `cfg.wal`. The
    /// recovered commit index rides the rejoin Hello as a resume hint,
    /// so a caught-up rejoiner skips the snapshot transfer.
    ///
    /// Returns the replica plus what recovery found (the harness's feed
    /// for the checker's recovery invariants).
    pub fn form_durable(
        ep: Endpoint,
        seed: Endpoint,
        cfg: KvConfig,
        control: Box<dyn Transport>,
        data: Box<dyn Transport>,
        wal: Wal,
    ) -> Result<(KvReplica, RecoveryReport), ClusterError> {
        let (replica, report) = Self::form_inner(ep, seed, cfg, control, data, Some(wal))?;
        let report = report.expect("durable form always recovers");
        Ok((replica, report))
    }

    fn form_inner(
        ep: Endpoint,
        seed: Endpoint,
        cfg: KvConfig,
        control: Box<dyn Transport>,
        data: Box<dyn Transport>,
        wal: Option<Wal>,
    ) -> Result<(KvReplica, Option<RecoveryReport>), ClusterError> {
        cfg.validate()?;
        let metrics = Arc::new(KvMetrics::default());
        let (store, wal, report) = match wal {
            Some(mut wal) => {
                let report = wal
                    .recover()
                    .map_err(|e| ClusterError::Runtime(format!("wal recovery: {e}")))?;
                metrics.recoveries.fetch_add(1, Ordering::Relaxed);
                metrics
                    .torn_tail_records
                    .fetch_add(report.torn_tail_records, Ordering::Relaxed);
                (report.store.clone(), Some(wal), Some(report))
            }
            None => (KvStore::new(), None, None),
        };
        let recovered_ci = store.commit_index();
        let store = Arc::new(Mutex::new(store));
        let (ctl_tx, ctl_rx) = channel();
        let loop_running = Arc::new(AtomicBool::new(false));
        let provider: Box<dyn StateProvider> = Box::new(StoreProvider {
            store: Arc::clone(&store),
            ctl_tx: ctl_tx.clone(),
            loop_running: Arc::clone(&loop_running),
        });
        let node = ClusterNode::form(ep, seed, cfg.cluster, control, data, Some(provider))?;

        let front = ReplicaFront {
            id: ep.id(),
            sender: node.sender(),
            serving: node.serving_flag(),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_token: Arc::new(AtomicU64::new(0)),
            metrics,
        };
        let log = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let crashed = Arc::new(AtomicBool::new(false));
        let loop_ = ApplyLoop {
            my_id: ep.id(),
            node,
            store,
            log: Arc::clone(&log),
            pending: Arc::clone(&front.pending),
            metrics: Arc::clone(&front.metrics),
            ctl_rx,
            stop: Arc::clone(&stop),
            wal,
            await_ack: VecDeque::new(),
            recovered_ci,
            snapshot_seen: false,
            formed_seen: false,
            crashed: Arc::clone(&crashed),
            loop_running,
            stable_reqs: Vec::new(),
        };
        let apply = std::thread::Builder::new()
            .name(format!("ensemble-kv-{}", ep.id()))
            .spawn(move || loop_.run())
            .map_err(|e| ClusterError::Runtime(format!("spawn apply loop: {e}")))?;
        Ok((
            KvReplica {
                ep,
                front,
                log,
                ctl_tx,
                stop,
                crashed,
                apply: Some(apply),
            },
            report,
        ))
    }

    /// This replica's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// A cloneable client-facing front (submit, serving flag, metrics).
    pub fn front(&self) -> ReplicaFront {
        self.front.clone()
    }

    /// Whether this replica currently serves requests.
    pub fn is_serving(&self) -> bool {
        self.front.is_serving()
    }

    /// Proposes `op` and waits up to `timeout` for its commit.
    pub fn submit_timeout(&self, op: &KvOp, timeout: Duration) -> KvResult {
        self.front.submit_timeout(op, timeout)
    }

    /// This replica's service counters.
    pub fn metrics(&self) -> &KvMetrics {
        &self.front.metrics
    }

    /// A copy of the applied log (commit index, operation) — the
    /// checker's per-replica feed.
    pub fn commit_log(&self) -> Vec<(u64, KvOp)> {
        self.log
            .lock()
            .expect("kv commit log mutex poisoned")
            .clone()
    }

    /// The most recently installed view (asks the apply loop).
    pub fn view(&self) -> Option<ViewState> {
        let (tx, rx) = channel();
        self.ctl_tx.send(Ctl::View(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// Runtime + cluster + KV metrics in Prometheus text exposition
    /// format (asks the apply loop, which owns the node).
    pub fn metrics_text(&self) -> String {
        let (tx, rx) = channel();
        if self.ctl_tx.send(Ctl::MetricsText(tx)).is_err() {
            return self.front.metrics.render();
        }
        rx.recv_timeout(Duration::from_secs(2))
            .unwrap_or_else(|_| self.front.metrics.render())
    }

    /// Stops the apply loop and the underlying cluster member.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.apply.take() {
            let _ = t.join();
        }
    }

    /// Simulates a crash-stop: tears the replica down like
    /// [`KvReplica::shutdown`] but *without* the courtesy WAL flush, so
    /// whatever the storage medium had not made durable is lost exactly
    /// as in a power cut. Crash harnesses pair this with
    /// [`crate::MemDisk::crash`] to also tear the medium's volatile
    /// buffers.
    pub fn kill(mut self) {
        self.crashed.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.apply.take() {
            let _ = t.join();
        }
    }
}

impl Drop for KvReplica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.apply.take() {
            let _ = t.join();
        }
    }
}

struct ApplyLoop {
    my_id: u32,
    node: ClusterNode,
    store: Arc<Mutex<KvStore>>,
    log: Arc<Mutex<Vec<(u64, KvOp)>>>,
    pending: Arc<Mutex<HashMap<u64, Sender<KvResult>>>>,
    metrics: Arc<KvMetrics>,
    ctl_rx: Receiver<Ctl>,
    stop: Arc<AtomicBool>,
    /// Durable mode: every commit is WAL-appended before its ack.
    wal: Option<Wal>,
    /// Acks held back until the WAL's durable frontier covers them
    /// (commit index, pending-table token, result).
    await_ack: VecDeque<(u64, u64, KvResult)>,
    /// Commit index recovered at startup (0 = cold start).
    recovered_ci: u64,
    /// A state snapshot arrived (used to spot the skip fast path).
    snapshot_seen: bool,
    /// The Formed event was observed.
    formed_seen: bool,
    /// Crash-stop teardown: skip the final courtesy flush.
    crashed: Arc<AtomicBool>,
    /// Published for [`StoreProvider`]: once true, stable-state requests
    /// must rendezvous with this loop instead of reading the store.
    loop_running: Arc<AtomicBool>,
    /// Stable-state requests answered at the next queue drain.
    stable_reqs: Vec<Sender<(u64, Vec<u8>)>>,
}

impl ApplyLoop {
    fn run(mut self) {
        let obs = self.node.obs_arc();
        let shard = self.node.aux_obs_shard();
        let tag = obs.recorder.register("kv");
        self.loop_running.store(true, Ordering::Release);
        if self.wal.is_some() {
            self.record(&obs, shard, tag, EventKind::Recovery, self.recovered_ci);
        }
        // Opportunistic group commit: while acks are held for a partial
        // batch, poll instead of parking so the sync runs the moment
        // the event queue drains. After one forced-flush attempt the
        // poll reverts to a parked wait, so an injected fsync failure
        // retries at the tick cadence instead of spinning.
        let mut quick = false;
        while !self.stop.load(Ordering::Relaxed) {
            while let Ok(ctl) = self.ctl_rx.try_recv() {
                match ctl {
                    Ctl::MetricsText(tx) => {
                        let mut text = self.node.metrics_text();
                        text.push_str(&self.metrics.render());
                        let _ = tx.send(text);
                    }
                    Ctl::View(tx) => {
                        let _ = tx.send(self.node.view());
                    }
                    Ctl::Stable(tx) => {
                        self.stable_reqs.push(tx);
                    }
                }
            }
            let timeout = if quick {
                Duration::ZERO
            } else {
                Duration::from_millis(2)
            };
            match self.node.recv_timeout(timeout) {
                Some(ev) => {
                    self.on_event(ev, &obs, shard, tag);
                    quick = !self.await_ack.is_empty();
                }
                None => {
                    // Idle tick: force-sync a partial group-commit batch
                    // and retry records stuck behind an injected short
                    // write or fsync failure, then release any acks the
                    // repaired frontier now covers.
                    if let Some(wal) = &mut self.wal {
                        let flushed = wal.needs_flush() && wal.flush();
                        let errs = wal.take_io_errors();
                        if errs > 0 {
                            self.metrics
                                .wal_append_failures
                                .fetch_add(errs, Ordering::Relaxed);
                        }
                        if flushed {
                            self.drain_acks(&obs, shard, tag);
                        }
                    }
                    // The queue is drained: everything delivered so far
                    // is applied, so a stable-state reply is exact.
                    self.answer_stable();
                    quick = false;
                }
            }
        }
        // Make whatever the medium will accept durable before the
        // thread dies — unless this teardown simulates a crash, where
        // losing the unsynced tail is exactly the point.
        if !self.crashed.load(Ordering::Relaxed) {
            if let Some(wal) = &mut self.wal {
                let _ = wal.flush();
            }
        }
        // Don't leave a driver mid-grant hanging on its timeout: answer
        // outstanding (and just-arrived) stable requests with what we
        // have before the channel closes.
        self.loop_running.store(false, Ordering::Release);
        while let Ok(ctl) = self.ctl_rx.try_recv() {
            if let Ctl::Stable(tx) = ctl {
                self.stable_reqs.push(tx);
            }
        }
        self.answer_stable();
    }

    /// Replies to every pending stable-state request with the store as
    /// it stands. Call only when the apply queue is drained (or the
    /// loop is exiting and no better answer will ever come).
    fn answer_stable(&mut self) {
        if self.stable_reqs.is_empty() {
            return;
        }
        let (ci, snap) = {
            let s = self.store.lock().expect("kv store mutex poisoned");
            (s.commit_index(), s.snapshot())
        };
        for tx in self.stable_reqs.drain(..) {
            let _ = tx.send((ci, snap.clone()));
        }
    }

    fn on_event(&mut self, ev: ClusterEvent, obs: &NodeObs, shard: usize, tag: Tag) {
        match ev {
            ClusterEvent::Snapshot(snap) => {
                self.snapshot_seen = true;
                let restored = self
                    .store
                    .lock()
                    .expect("kv store mutex poisoned")
                    .restore(&snap);
                if restored {
                    self.metrics
                        .snapshots_installed
                        .fetch_add(1, Ordering::Relaxed);
                    // The WAL's lineage predates the installed state:
                    // checkpoint immediately so the (checkpoint, log)
                    // pair stays the authority for every later ack.
                    self.take_checkpoint(obs, shard, tag);
                }
            }
            ClusterEvent::Formed(_) if !self.formed_seen => {
                self.formed_seen = true;
                // A durable rejoiner that was formed without a snapshot
                // kept its recovered state: the coordinator took the
                // state-transfer fast path.
                if self.wal.is_some() && self.recovered_ci > 0 && !self.snapshot_seen {
                    self.metrics
                        .snapshots_skipped
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) => {
                let Some((submitter, token, op)) = decode_cast(&bytes) else {
                    return;
                };
                let result = self
                    .store
                    .lock()
                    .expect("kv store mutex poisoned")
                    .apply(&op);
                let ci = match &result {
                    KvResult::Value { ci, .. }
                    | KvResult::Applied { ci }
                    | KvResult::Cas { ci, .. } => *ci,
                    KvResult::Err(_) => unreachable!("apply always commits"),
                };
                self.log
                    .lock()
                    .expect("kv commit log mutex poisoned")
                    .push((ci, op.clone()));
                self.metrics.commits.fetch_add(1, Ordering::Relaxed);
                self.record(obs, shard, tag, EventKind::KvCommit, ci);
                let mine = submitter == self.my_id;
                match &mut self.wal {
                    Some(wal) => {
                        // Write-ahead before ack: the record must be
                        // durable (or superseded by a checkpoint) before
                        // the submitting client hears the result.
                        let (durable, len) = wal.append(ci, &op);
                        self.metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
                        self.metrics
                            .wal_bytes
                            .fetch_add(len as u64, Ordering::Relaxed);
                        let errs = wal.take_io_errors();
                        if errs > 0 {
                            self.metrics
                                .wal_append_failures
                                .fetch_add(errs, Ordering::Relaxed);
                        }
                        if durable >= ci {
                            // Group-commit boundary: everything up to
                            // `ci` just became durable.
                            self.record(obs, shard, tag, EventKind::WalAppend, ci);
                        }
                        if mine {
                            self.await_ack.push_back((ci, token, result));
                        }
                        self.drain_acks(obs, shard, tag);
                        if self
                            .wal
                            .as_ref()
                            .map(|w| w.checkpoint_due())
                            .unwrap_or(false)
                        {
                            self.take_checkpoint(obs, shard, tag);
                        }
                    }
                    None if mine => {
                        self.complete(token, result, ci, obs, shard, tag);
                    }
                    None => {}
                }
            }
            // Views, sends, stalls, fences: membership is the cluster
            // layer's business; the serving flag already reflects it.
            _ => {}
        }
    }

    /// Completes one pending client while holding the table lock:
    /// `submit_timeout` relies on remove-then-send being atomic with
    /// respect to its own withdrawal.
    fn complete(
        &self,
        token: u64,
        result: KvResult,
        ci: u64,
        obs: &NodeObs,
        shard: usize,
        tag: Tag,
    ) {
        let mut pending = self
            .pending
            .lock()
            .expect("kv pending table mutex poisoned");
        if let Some(tx) = pending.remove(&token) {
            let _ = tx.send(result);
            self.metrics.responses.fetch_add(1, Ordering::Relaxed);
            self.record(obs, shard, tag, EventKind::KvResponse, ci);
        }
    }

    /// Releases every held-back ack the durable frontier now covers.
    fn drain_acks(&mut self, obs: &NodeObs, shard: usize, tag: Tag) {
        let durable = match &self.wal {
            Some(wal) => wal.durable_ci(),
            None => u64::MAX,
        };
        while let Some((ci, _, _)) = self.await_ack.front() {
            if *ci > durable {
                break;
            }
            let (ci, token, result) = self.await_ack.pop_front().expect("front checked");
            self.complete(token, result, ci, obs, shard, tag);
        }
    }

    /// Snapshots the store into the alternate checkpoint slot and
    /// truncates the log; on success anything the log could not make
    /// durable is durable now, so held-back acks drain.
    fn take_checkpoint(&mut self, obs: &NodeObs, shard: usize, tag: Tag) {
        let (ci, snap) = {
            let s = self.store.lock().expect("kv store mutex poisoned");
            (s.commit_index(), s.snapshot())
        };
        let Some(wal) = &mut self.wal else { return };
        if wal.checkpoint(ci, &snap).is_ok() {
            self.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
            self.record(obs, shard, tag, EventKind::Checkpoint, ci);
            self.drain_acks(obs, shard, tag);
        }
    }

    fn record(&self, obs: &NodeObs, shard: usize, tag: Tag, kind: EventKind, aux: u64) {
        if !obs.enabled() {
            return;
        }
        obs.recorder.record(
            shard,
            &Event {
                t_ns: now_ns(),
                layer: tag,
                kind,
                dir: Direction::Up,
                group: self.my_id,
                seqno: 0,
                ccp: CcpFailure::None,
                aux,
            },
        );
    }
}
