//! The client-facing wire protocol: length-prefixed binary frames.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload. Requests and responses are matched by a client-chosen
//! `req_id`, so a client may pipeline many requests on one connection
//! and collect completions out of order.
//!
//! ```text
//! frame    := len:u32le payload[len]
//! request  := req_id:u64le op
//! op       := 0x01 key              (GET)
//!           | 0x02 key val          (SET)
//!           | 0x03 key              (DEL)
//!           | 0x04 key opt(expect) val   (CAS)
//! key,val  := len:u32le bytes[len]
//! opt(x)   := 0x00 | 0x01 x
//! response := req_id:u64le result
//! result   := 0x81 ci:u64le opt(val)    (value at commit index ci)
//!           | 0x82 ci:u64le             (write applied at ci)
//!           | 0x83 ci:u64le ok:u8       (CAS decided at ci)
//!           | 0x8F code:u8              (error; no commit index)
//! ```
//!
//! The same `op` encoding doubles as the replicated cast payload (see
//! [`encode_cast`]), so what the group orders is byte-for-byte what the
//! client asked for.

use std::io::{Read, Write};

/// Frames larger than this are refused — a corrupt length prefix must
/// not make a worker allocate gigabytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Error codes carried by the `0x8F` result.
pub const ERR_NOT_SERVING: u8 = 1;
pub const ERR_TIMEOUT: u8 = 2;
pub const ERR_MALFORMED: u8 = 3;
pub const ERR_CLOSED: u8 = 4;
pub const ERR_UNAVAILABLE: u8 = 5;

/// One key-value operation, as replicated through the total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read `key` (ordered like a write so reads respect commit order).
    Get(Vec<u8>),
    /// Bind `key` to `value`.
    Set(Vec<u8>, Vec<u8>),
    /// Remove `key`.
    Del(Vec<u8>),
    /// Compare-and-swap: bind `key` to `new` iff its current value is
    /// `expect` (`None` = iff the key is absent).
    Cas {
        /// The key to swap.
        key: Vec<u8>,
        /// Required current value (`None`: key must be absent).
        expect: Option<Vec<u8>>,
        /// Value installed when the comparison holds.
        new: Vec<u8>,
    },
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            KvOp::Get(k) | KvOp::Del(k) | KvOp::Set(k, _) => k,
            KvOp::Cas { key, .. } => key,
        }
    }
}

/// What a replica answers, as decided at a commit index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvResult {
    /// A GET observed `value` (or absence) at commit index `ci`.
    Value {
        /// The commit index assigned to the read.
        ci: u64,
        /// The value bound to the key, or `None` if absent.
        value: Option<Vec<u8>>,
    },
    /// A SET or DEL was applied at commit index `ci`.
    Applied {
        /// The commit index assigned to the write.
        ci: u64,
    },
    /// A CAS was decided at commit index `ci`.
    Cas {
        /// The commit index assigned to the swap.
        ci: u64,
        /// Whether the comparison held and `new` was installed.
        ok: bool,
    },
    /// The operation never reached the total order.
    Err(KvError),
}

/// Why an operation failed without being committed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvError {
    /// The contacted replica is stalled in a minority partition or
    /// fenced: retry against another replica.
    NotServing,
    /// No commit arrived within the request timeout.
    Timeout,
    /// The request could not be decoded.
    Malformed,
    /// The replica (or connection) shut down.
    Closed,
    /// The client exhausted its bounded retry budget without finding a
    /// serving replica — terminal, the caller must not spin. `attempts`
    /// counts the connection attempts the client made; it is local
    /// bookkeeping and not carried on the wire (decodes as 0).
    Unavailable {
        /// Connection attempts made before giving up.
        attempts: u32,
    },
}

impl KvError {
    /// The wire code for this error.
    pub fn code(&self) -> u8 {
        match self {
            KvError::NotServing => ERR_NOT_SERVING,
            KvError::Timeout => ERR_TIMEOUT,
            KvError::Malformed => ERR_MALFORMED,
            KvError::Closed => ERR_CLOSED,
            KvError::Unavailable { .. } => ERR_UNAVAILABLE,
        }
    }

    /// Decodes a wire error code.
    pub fn from_code(c: u8) -> KvError {
        match c {
            ERR_NOT_SERVING => KvError::NotServing,
            ERR_TIMEOUT => KvError::Timeout,
            ERR_CLOSED => KvError::Closed,
            ERR_UNAVAILABLE => KvError::Unavailable { attempts: 0 },
            _ => KvError::Malformed,
        }
    }
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::NotServing => write!(f, "replica not serving (minority partition or fenced)"),
            KvError::Timeout => write!(f, "request timed out"),
            KvError::Malformed => write!(f, "malformed frame"),
            KvError::Closed => write!(f, "replica closed"),
            KvError::Unavailable { attempts } => {
                write!(f, "service unavailable after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for KvError {}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn take_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let b = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(b.try_into().unwrap()))
}

fn take_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let b = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(b.try_into().unwrap()))
}

fn take_u8(buf: &[u8], at: &mut usize) -> Option<u8> {
    let b = *buf.get(*at)?;
    *at += 1;
    Some(b)
}

fn take_bytes(buf: &[u8], at: &mut usize) -> Option<Vec<u8>> {
    let len = take_u32(buf, at)? as usize;
    let b = buf.get(*at..*at + len)?;
    *at += len;
    Some(b.to_vec())
}

/// Appends the encoding of `op` to `out`.
pub fn encode_op(out: &mut Vec<u8>, op: &KvOp) {
    match op {
        KvOp::Get(k) => {
            out.push(0x01);
            put_bytes(out, k);
        }
        KvOp::Set(k, v) => {
            out.push(0x02);
            put_bytes(out, k);
            put_bytes(out, v);
        }
        KvOp::Del(k) => {
            out.push(0x03);
            put_bytes(out, k);
        }
        KvOp::Cas { key, expect, new } => {
            out.push(0x04);
            put_bytes(out, key);
            match expect {
                None => out.push(0x00),
                Some(e) => {
                    out.push(0x01);
                    put_bytes(out, e);
                }
            }
            put_bytes(out, new);
        }
    }
}

/// Decodes one `op` from `buf` at `*at`, advancing the cursor.
pub fn decode_op(buf: &[u8], at: &mut usize) -> Option<KvOp> {
    match take_u8(buf, at)? {
        0x01 => Some(KvOp::Get(take_bytes(buf, at)?)),
        0x02 => Some(KvOp::Set(take_bytes(buf, at)?, take_bytes(buf, at)?)),
        0x03 => Some(KvOp::Del(take_bytes(buf, at)?)),
        0x04 => {
            let key = take_bytes(buf, at)?;
            let expect = match take_u8(buf, at)? {
                0x00 => None,
                0x01 => Some(take_bytes(buf, at)?),
                _ => return None,
            };
            Some(KvOp::Cas {
                key,
                expect,
                new: take_bytes(buf, at)?,
            })
        }
        _ => None,
    }
}

/// Encodes a request payload (without the frame length prefix).
pub fn encode_request(req_id: u64, op: &KvOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&req_id.to_le_bytes());
    encode_op(&mut out, op);
    out
}

/// Decodes a request payload.
pub fn decode_request(buf: &[u8]) -> Option<(u64, KvOp)> {
    let mut at = 0;
    let req_id = take_u64(buf, &mut at)?;
    let op = decode_op(buf, &mut at)?;
    if at != buf.len() {
        return None;
    }
    Some((req_id, op))
}

/// Encodes a response payload (without the frame length prefix).
pub fn encode_response(req_id: u64, result: &KvResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&req_id.to_le_bytes());
    match result {
        KvResult::Value { ci, value } => {
            out.push(0x81);
            out.extend_from_slice(&ci.to_le_bytes());
            match value {
                None => out.push(0x00),
                Some(v) => {
                    out.push(0x01);
                    put_bytes(&mut out, v);
                }
            }
        }
        KvResult::Applied { ci } => {
            out.push(0x82);
            out.extend_from_slice(&ci.to_le_bytes());
        }
        KvResult::Cas { ci, ok } => {
            out.push(0x83);
            out.extend_from_slice(&ci.to_le_bytes());
            out.push(u8::from(*ok));
        }
        KvResult::Err(e) => {
            out.push(0x8F);
            out.push(e.code());
        }
    }
    out
}

/// Decodes a response payload.
pub fn decode_response(buf: &[u8]) -> Option<(u64, KvResult)> {
    let mut at = 0;
    let req_id = take_u64(buf, &mut at)?;
    let result = match take_u8(buf, &mut at)? {
        0x81 => {
            let ci = take_u64(buf, &mut at)?;
            let value = match take_u8(buf, &mut at)? {
                0x00 => None,
                0x01 => Some(take_bytes(buf, &mut at)?),
                _ => return None,
            };
            KvResult::Value { ci, value }
        }
        0x82 => KvResult::Applied {
            ci: take_u64(buf, &mut at)?,
        },
        0x83 => {
            let ci = take_u64(buf, &mut at)?;
            KvResult::Cas {
                ci,
                ok: take_u8(buf, &mut at)? != 0,
            }
        }
        0x8F => KvResult::Err(KvError::from_code(take_u8(buf, &mut at)?)),
        _ => return None,
    };
    if at != buf.len() {
        return None;
    }
    Some((req_id, result))
}

/// Encodes the replicated cast payload: who proposed (`submitter`, an
/// endpoint id), their local pending `token`, and the operation. The
/// committing replica that proposed the op uses the token to find the
/// waiting client.
pub fn encode_cast(submitter: u32, token: u64, op: &KvOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    out.extend_from_slice(&submitter.to_le_bytes());
    out.extend_from_slice(&token.to_le_bytes());
    encode_op(&mut out, op);
    out
}

/// Decodes a replicated cast payload.
pub fn decode_cast(buf: &[u8]) -> Option<(u32, u64, KvOp)> {
    let mut at = 0;
    let submitter = take_u32(buf, &mut at)?;
    let token = take_u64(buf, &mut at)?;
    let op = decode_op(buf, &mut at)?;
    if at != buf.len() {
        return None;
    }
    Some((submitter, token, op))
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary; refuses frames
/// longer than [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len[n..])?,
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<KvOp> {
        vec![
            KvOp::Get(b"k".to_vec()),
            KvOp::Set(b"key".to_vec(), b"value".to_vec()),
            KvOp::Del(Vec::new()),
            KvOp::Cas {
                key: b"x".to_vec(),
                expect: None,
                new: b"1".to_vec(),
            },
            KvOp::Cas {
                key: b"x".to_vec(),
                expect: Some(b"1".to_vec()),
                new: b"2".to_vec(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for (i, op) in ops().into_iter().enumerate() {
            let buf = encode_request(i as u64, &op);
            assert_eq!(decode_request(&buf), Some((i as u64, op)));
        }
    }

    #[test]
    fn response_roundtrip() {
        let results = vec![
            KvResult::Value { ci: 7, value: None },
            KvResult::Value {
                ci: 8,
                value: Some(b"v".to_vec()),
            },
            KvResult::Applied { ci: 9 },
            KvResult::Cas { ci: 10, ok: true },
            KvResult::Cas { ci: 11, ok: false },
            KvResult::Err(KvError::NotServing),
            KvResult::Err(KvError::Timeout),
            KvResult::Err(KvError::Unavailable { attempts: 0 }),
        ];
        for (i, r) in results.into_iter().enumerate() {
            let buf = encode_response(i as u64, &r);
            assert_eq!(decode_response(&buf), Some((i as u64, r)));
        }
    }

    #[test]
    fn cast_roundtrip() {
        for op in ops() {
            let buf = encode_cast(3, 42, &op);
            assert_eq!(decode_cast(&buf), Some((3, 42, op)));
        }
    }

    #[test]
    fn trailing_garbage_is_refused() {
        let mut buf = encode_request(1, &KvOp::Get(b"k".to_vec()));
        buf.push(0);
        assert_eq!(decode_request(&buf), None);
        let mut buf = encode_response(1, &KvResult::Applied { ci: 1 });
        buf.push(0);
        assert_eq!(decode_response(&buf), None);
    }

    #[test]
    fn truncation_is_refused_everywhere() {
        let full = encode_request(1, &KvOp::Set(b"key".to_vec(), b"value".to_vec()));
        for cut in 0..full.len() {
            assert_eq!(decode_request(&full[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }
}
