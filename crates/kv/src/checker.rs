//! Offline linearizability checking by replay.
//!
//! In the style of the cluster's `VsyncChecker`, the harness feeds the
//! checker everything that happened — each replica's applied log and
//! every response a client accepted — and [`finish`] replays the whole
//! execution against the spec:
//!
//! * all replicas must agree on what committed at each index (state
//!   machine safety);
//! * each replica's log must advance monotonically (no index reuse or
//!   rollback);
//! * a response claiming commit index `ci` must name the operation that
//!   actually committed at `ci`;
//! * a GET's value must equal the key's state after the log prefix
//!   before `ci` — reads respect commit order;
//! * a successful CAS must have observed the *latest* committed write to
//!   its key (its expectation matches the replayed state immediately
//!   before `ci`), and a failed CAS must have had a stale expectation.
//!
//! Operations that committed but got no response (the client timed out
//! or died) are fine — they linearized, nobody is left to care. A
//! response without a matching commit is a violation: the service
//! acknowledged something the state machine never did.
//!
//! Crash/restart executions add two *recovery invariants*, fed by
//! [`on_recovery`] and the replica-attributed [`on_response_at`]:
//!
//! * a replica must never recover to a commit index below one it
//!   acknowledged to a client before crashing (no acked write lost);
//! * a replica's recovered commit index must be monotonic across
//!   successive recoveries (a later crash never resurrects older state).
//!
//! [`finish`]: KvLinearizabilityChecker::finish
//! [`on_recovery`]: KvLinearizabilityChecker::on_recovery
//! [`on_response_at`]: KvLinearizabilityChecker::on_response_at

use crate::proto::{KvOp, KvResult};
use std::collections::BTreeMap;

/// Collects an execution and replays it against the linearizability spec.
#[derive(Default)]
pub struct KvLinearizabilityChecker {
    /// Per-replica applied logs, in application order.
    logs: BTreeMap<u32, Vec<(u64, KvOp)>>,
    /// Client-visible completions (only results carrying a commit index
    /// are checked; errors never linearized anything).
    responses: Vec<(KvOp, KvResult)>,
    /// Per-replica highest commit index acknowledged to a client
    /// (fed by [`KvLinearizabilityChecker::on_response_at`]).
    acked: BTreeMap<u32, u64>,
    /// Per-replica latest recovered commit index.
    recovered: BTreeMap<u32, u64>,
    /// Recovery events checked so far (across all replicas).
    recoveries: usize,
    violations: Vec<String>,
}

impl KvLinearizabilityChecker {
    /// A fresh checker.
    pub fn new() -> KvLinearizabilityChecker {
        KvLinearizabilityChecker::default()
    }

    /// Records that `replica` applied `op` at commit index `ci`.
    pub fn on_commit(&mut self, replica: u32, ci: u64, op: KvOp) {
        self.logs.entry(replica).or_default().push((ci, op));
    }

    /// Records a completion a client observed for `op`.
    pub fn on_response(&mut self, op: KvOp, result: KvResult) {
        self.responses.push((op, result));
    }

    /// Records a completion a client observed for `op`, attributed to
    /// the `replica` that acknowledged it. Attribution is what arms the
    /// no-acked-write-lost recovery invariant for that replica; use
    /// [`KvLinearizabilityChecker::on_response`] when the serving
    /// replica is unknown (e.g. behind a redirecting TCP client).
    pub fn on_response_at(&mut self, replica: u32, op: KvOp, result: KvResult) {
        if let KvResult::Value { ci, .. } | KvResult::Applied { ci } | KvResult::Cas { ci, .. } =
            &result
        {
            let hi = self.acked.entry(replica).or_insert(0);
            *hi = (*hi).max(*ci);
        }
        self.on_response(op, result);
    }

    /// Records that `replica` restarted and recovered its local state to
    /// commit index `recovered_ci` (checkpoint + replayed WAL tail).
    /// Checks the recovery invariants against everything the replica
    /// acknowledged and recovered before this point, so call it in
    /// execution order relative to [`on_response_at`].
    ///
    /// [`on_response_at`]: KvLinearizabilityChecker::on_response_at
    pub fn on_recovery(&mut self, replica: u32, recovered_ci: u64) {
        self.recoveries += 1;
        if let Some(&acked) = self.acked.get(&replica) {
            if recovered_ci < acked {
                self.violations.push(format!(
                    "replica {replica} recovered to commit index {recovered_ci} but had \
                     acknowledged a write at {acked} — an acked write was lost in the crash"
                ));
            }
        }
        if let Some(&prev) = self.recovered.get(&replica) {
            if recovered_ci < prev {
                self.violations.push(format!(
                    "replica {replica} recovered to commit index {recovered_ci} after \
                     previously recovering to {prev} — recovery went backwards"
                ));
            }
        }
        self.recovered.insert(replica, recovered_ci);
    }

    /// Number of recovery events checked so far (across all replicas).
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Number of commits recorded so far (across all replicas).
    pub fn commits(&self) -> usize {
        self.logs.values().map(|l| l.len()).sum()
    }

    /// Number of responses recorded so far.
    pub fn responses(&self) -> usize {
        self.responses.len()
    }

    /// Replays the execution; returns every violation found (empty =
    /// the execution was linearizable).
    pub fn finish(mut self) -> Vec<String> {
        // 1. Per-replica logs advance strictly monotonically.
        for (r, log) in &self.logs {
            for w in log.windows(2) {
                if w[1].0 <= w[0].0 {
                    self.violations.push(format!(
                        "replica {r}: commit index went from {} to {} (must be strictly increasing)",
                        w[0].0, w[1].0
                    ));
                }
            }
        }

        // 2. All replicas agree on the operation at each index.
        let mut global: BTreeMap<u64, KvOp> = BTreeMap::new();
        for (r, log) in &self.logs {
            for (ci, op) in log {
                match global.get(ci) {
                    None => {
                        global.insert(*ci, op.clone());
                    }
                    Some(prev) if prev == op => {}
                    Some(prev) => self.violations.push(format!(
                        "commit index {ci} diverges: replica {r} applied {op:?}, \
                         another applied {prev:?}"
                    )),
                }
            }
        }

        // 3. Replay the agreed log; check each response at its index.
        let mut by_ci: BTreeMap<u64, Vec<(KvOp, KvResult)>> = BTreeMap::new();
        for (op, result) in std::mem::take(&mut self.responses) {
            let ci = match &result {
                KvResult::Value { ci, .. }
                | KvResult::Applied { ci }
                | KvResult::Cas { ci, .. } => *ci,
                KvResult::Err(_) => continue,
            };
            by_ci.entry(ci).or_default().push((op, result));
        }
        let mut state: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (ci, op) in &global {
            for (resp_op, result) in by_ci.remove(ci).unwrap_or_default() {
                if resp_op != *op {
                    self.violations.push(format!(
                        "response at {ci} was for {resp_op:?} but the log committed {op:?}"
                    ));
                    continue;
                }
                match (&result, op) {
                    (KvResult::Value { value, .. }, KvOp::Get(k)) => {
                        if value.as_deref() != state.get(k).map(|v| v.as_slice()) {
                            self.violations.push(format!(
                                "GET at {ci} returned {value:?} but the committed prefix \
                                 holds {:?} for key {k:?}",
                                state.get(k)
                            ));
                        }
                    }
                    (KvResult::Applied { .. }, KvOp::Set(..) | KvOp::Del(..)) => {}
                    (KvResult::Cas { ok, .. }, KvOp::Cas { key, expect, .. }) => {
                        let held = state.get(key).map(|v| v.as_slice()) == expect.as_deref();
                        if *ok != held {
                            self.violations.push(format!(
                                "CAS at {ci} reported ok={ok} but expectation {expect:?} \
                                 {} the latest committed write {:?}",
                                if held { "matched" } else { "did not match" },
                                state.get(key)
                            ));
                        }
                    }
                    _ => self.violations.push(format!(
                        "response kind {result:?} does not fit operation {op:?} at {ci}"
                    )),
                }
            }
            match op {
                KvOp::Get(_) => {}
                KvOp::Set(k, v) => {
                    state.insert(k.clone(), v.clone());
                }
                KvOp::Del(k) => {
                    state.remove(k);
                }
                KvOp::Cas { key, expect, new } => {
                    if state.get(key).map(|v| v.as_slice()) == expect.as_deref() {
                        state.insert(key.clone(), new.clone());
                    }
                }
            }
        }

        // 4. Responses at indices nothing committed: acked uncommitted.
        for (ci, resps) in by_ci {
            for (op, _) in resps {
                self.violations.push(format!(
                    "response for {op:?} claims commit index {ci}, but no replica committed it"
                ));
            }
        }
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(k: &[u8], v: &[u8]) -> KvOp {
        KvOp::Set(k.to_vec(), v.to_vec())
    }

    #[test]
    fn clean_execution_passes() {
        let mut c = KvLinearizabilityChecker::new();
        for r in 0..3 {
            c.on_commit(r, 1, set(b"x", b"1"));
            c.on_commit(r, 2, KvOp::Get(b"x".to_vec()));
            c.on_commit(
                r,
                3,
                KvOp::Cas {
                    key: b"x".to_vec(),
                    expect: Some(b"1".to_vec()),
                    new: b"2".to_vec(),
                },
            );
        }
        c.on_response(set(b"x", b"1"), KvResult::Applied { ci: 1 });
        c.on_response(
            KvOp::Get(b"x".to_vec()),
            KvResult::Value {
                ci: 2,
                value: Some(b"1".to_vec()),
            },
        );
        c.on_response(
            KvOp::Cas {
                key: b"x".to_vec(),
                expect: Some(b"1".to_vec()),
                new: b"2".to_vec(),
            },
            KvResult::Cas { ci: 3, ok: true },
        );
        assert_eq!(c.finish(), Vec::<String>::new());
    }

    #[test]
    fn diverging_replicas_are_caught() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_commit(1, 1, set(b"x", b"2"));
        let v = c.finish();
        assert!(v.iter().any(|m| m.contains("diverges")), "{v:?}");
    }

    #[test]
    fn stale_read_is_caught() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_commit(0, 2, set(b"x", b"2"));
        c.on_commit(0, 3, KvOp::Get(b"x".to_vec()));
        // The read committed after x=2 but claims to have seen x=1.
        c.on_response(
            KvOp::Get(b"x".to_vec()),
            KvResult::Value {
                ci: 3,
                value: Some(b"1".to_vec()),
            },
        );
        let v = c.finish();
        assert!(v.iter().any(|m| m.contains("GET at 3")), "{v:?}");
    }

    #[test]
    fn cas_that_missed_a_write_is_caught() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_commit(0, 2, set(b"x", b"2"));
        let cas = KvOp::Cas {
            key: b"x".to_vec(),
            expect: Some(b"1".to_vec()),
            new: b"3".to_vec(),
        };
        c.on_commit(0, 3, cas.clone());
        // Claiming success means it observed x=1 as latest — but x=2
        // committed in between.
        c.on_response(cas, KvResult::Cas { ci: 3, ok: true });
        let v = c.finish();
        assert!(v.iter().any(|m| m.contains("CAS at 3")), "{v:?}");
    }

    #[test]
    fn acked_but_never_committed_is_caught() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_response(set(b"y", b"9"), KvResult::Applied { ci: 5 });
        let v = c.finish();
        assert!(
            v.iter().any(|m| m.contains("no replica committed")),
            "{v:?}"
        );
    }

    #[test]
    fn rollback_and_unresponded_commits() {
        let mut c = KvLinearizabilityChecker::new();
        // Commits without responses are fine (client gave up)…
        c.on_commit(0, 1, set(b"a", b"1"));
        c.on_commit(0, 2, set(b"b", b"2"));
        assert_eq!(c.commits(), 2);
        assert_eq!(c.responses(), 0);
        assert!(c.finish().is_empty());
        // …but a replica reusing an index is not.
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 2, set(b"a", b"1"));
        c.on_commit(0, 2, set(b"a", b"1"));
        let v = c.finish();
        assert!(v.iter().any(|m| m.contains("strictly increasing")), "{v:?}");
    }

    #[test]
    fn recovery_that_kept_every_ack_passes() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_commit(0, 2, set(b"x", b"2"));
        c.on_response_at(0, set(b"x", b"2"), KvResult::Applied { ci: 2 });
        // Crash after acking ci=2; the WAL replayed through ci=2.
        c.on_recovery(0, 2);
        c.on_recovery(0, 5);
        assert_eq!(c.recoveries(), 2);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn recovery_that_lost_an_acked_write_is_caught() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_commit(0, 2, set(b"x", b"2"));
        c.on_response_at(0, set(b"x", b"2"), KvResult::Applied { ci: 2 });
        // The replica acked ci=2 but came back having replayed only ci=1.
        c.on_recovery(0, 1);
        let v = c.finish();
        assert!(
            v.iter().any(|m| m.contains("acked write was lost")),
            "{v:?}"
        );
    }

    #[test]
    fn recovery_going_backwards_is_caught() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_recovery(0, 7);
        c.on_recovery(0, 3);
        let v = c.finish();
        assert!(v.iter().any(|m| m.contains("went backwards")), "{v:?}");
    }

    #[test]
    fn error_responses_are_not_linearized() {
        let mut c = KvLinearizabilityChecker::new();
        c.on_commit(0, 1, set(b"x", b"1"));
        c.on_response(
            set(b"y", b"2"),
            KvResult::Err(crate::proto::KvError::Timeout),
        );
        assert!(c.finish().is_empty());
    }
}
