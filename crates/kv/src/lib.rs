//! `ensemble-kv`: a replicated key-value service built on the cluster
//! layer — the "real application workload" the stack exists to carry.
//!
//! The paper's claim is that layered group-communication stacks are
//! fast and reliable enough to build applications on. This crate is the
//! proof burden: a state-machine-replicated KV store (GET/SET/DEL/CAS,
//! monotonically assigned commit indices) whose replicas apply
//! operations in the total order a [`ensemble_cluster::ClusterNode`]
//! group delivers, fronted by a hand-rolled length-prefixed TCP
//! protocol served from a thread pool.
//!
//! The pieces, bottom-up:
//!
//! * [`proto`] — the wire protocol (and the replicated cast payload);
//! * [`KvStore`] — the state machine: sorted map + commit index;
//! * [`KvReplica`] — a cluster member plus the apply loop; clients
//!   reach it through the cloneable [`ReplicaFront`];
//! * [`KvListener`] / [`KvClient`] — the TCP plane: thread-pooled
//!   server, pipelining client with per-request timeouts and
//!   retry-with-redirect around stalled minority replicas;
//! * [`KvLinearizabilityChecker`] — offline replay of a whole execution
//!   (every replica's log, every client's completions) against the
//!   linearizability spec;
//! * [`KvConfig`] — tunables; its `validate` mirrors analyze lint
//!   SL010 (state-machine replication demands the `total` layer).
//!
//! The `kv_load` binary drives simulated and real-TCP clients against a
//! replica group under a seeded partition schedule, emits the repo's
//! first end-to-end wall-clock benchmark (`BENCH_kv_e2e.json`), and
//! fails if the checker finds a violation. See `DESIGN.md`'s
//! "Application plane" section for the linearizability argument.

pub mod checker;
pub mod client;
pub mod config;
pub mod metrics;
pub mod proto;
pub mod replica;
pub mod server;
pub mod storage;
pub mod store;
pub mod wal;

pub use checker::KvLinearizabilityChecker;
pub use client::KvClient;
pub use config::KvConfig;
pub use metrics::KvMetrics;
pub use proto::{KvError, KvOp, KvResult};
pub use replica::{KvReplica, ReplicaFront};
pub use server::{KvListener, ListenerConfig};
pub use storage::{FileStorage, MemDisk, MemStorage, StorageFaults, StorageMedium};
pub use store::KvStore;
pub use wal::{RecoveryReport, Wal, WalConfig};
