//! The replicated state machine: a sorted map plus a commit index.
//!
//! Every operation — reads included — is applied in the total order the
//! group delivers, and each application assigns the next commit index.
//! Because all replicas apply the same operations in the same order from
//! the same starting state, the `(commit_index, result)` a replica
//! computes is the `(commit_index, result)` every replica computes, and
//! the commit index doubles as the operation's linearization point.

use crate::proto::{decode_op, encode_op, KvOp, KvResult};
use std::collections::BTreeMap;

/// One replica's materialized state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    commit_index: u64,
}

impl KvStore {
    /// An empty store at commit index 0.
    pub fn new() -> KvStore {
        KvStore::default()
    }

    /// The index of the most recently applied operation (0 = none yet).
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads `key` without consuming a commit index (local peek; only
    /// linearizable when used by the checker's replay).
    pub fn peek(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Applies `op` as the next committed operation and returns its
    /// assigned commit index inside the result.
    pub fn apply(&mut self, op: &KvOp) -> KvResult {
        self.commit_index += 1;
        let ci = self.commit_index;
        match op {
            KvOp::Get(k) => KvResult::Value {
                ci,
                value: self.map.get(k).cloned(),
            },
            KvOp::Set(k, v) => {
                self.map.insert(k.clone(), v.clone());
                KvResult::Applied { ci }
            }
            KvOp::Del(k) => {
                self.map.remove(k);
                KvResult::Applied { ci }
            }
            KvOp::Cas { key, expect, new } => {
                let ok = self.map.get(key).map(|v| v.as_slice()) == expect.as_deref();
                if ok {
                    self.map.insert(key.clone(), new.clone());
                }
                KvResult::Cas { ci, ok }
            }
        }
    }

    /// Serializes the full state (commit index + every binding) for the
    /// cluster's snapshot channel (joiner Welcomes and merge grants).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.map.len() * 16);
        out.extend_from_slice(&self.commit_index.to_le_bytes());
        out.extend_from_slice(&(self.map.len() as u32).to_le_bytes());
        for (k, v) in &self.map {
            // Reuse the wire op encoding: one SET per binding.
            encode_op(&mut out, &KvOp::Set(k.clone(), v.clone()));
        }
        out
    }

    /// Replaces this store with a snapshot's state. Returns `false`
    /// (leaving the store untouched) on a corrupt snapshot.
    pub fn restore(&mut self, snap: &[u8]) -> bool {
        if snap.len() < 12 {
            return false;
        }
        let commit_index = u64::from_le_bytes(snap[..8].try_into().unwrap());
        let count = u32::from_le_bytes(snap[8..12].try_into().unwrap());
        let mut at = 12;
        let mut map = BTreeMap::new();
        for _ in 0..count {
            match decode_op(snap, &mut at) {
                Some(KvOp::Set(k, v)) => {
                    map.insert(k, v);
                }
                _ => return false,
            }
        }
        if at != snap.len() {
            return false;
        }
        self.map = map;
        self.commit_index = commit_index;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_indices_are_monotonic_and_dense() {
        let mut s = KvStore::new();
        let r1 = s.apply(&KvOp::Set(b"a".to_vec(), b"1".to_vec()));
        let r2 = s.apply(&KvOp::Get(b"a".to_vec()));
        let r3 = s.apply(&KvOp::Del(b"a".to_vec()));
        assert_eq!(r1, KvResult::Applied { ci: 1 });
        assert_eq!(
            r2,
            KvResult::Value {
                ci: 2,
                value: Some(b"1".to_vec())
            }
        );
        assert_eq!(r3, KvResult::Applied { ci: 3 });
        assert_eq!(s.commit_index(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn cas_requires_the_latest_value() {
        let mut s = KvStore::new();
        // Create-if-absent succeeds, then a stale expectation fails.
        let r = s.apply(&KvOp::Cas {
            key: b"x".to_vec(),
            expect: None,
            new: b"1".to_vec(),
        });
        assert_eq!(r, KvResult::Cas { ci: 1, ok: true });
        let r = s.apply(&KvOp::Cas {
            key: b"x".to_vec(),
            expect: None,
            new: b"2".to_vec(),
        });
        assert_eq!(r, KvResult::Cas { ci: 2, ok: false });
        let r = s.apply(&KvOp::Cas {
            key: b"x".to_vec(),
            expect: Some(b"1".to_vec()),
            new: b"2".to_vec(),
        });
        assert_eq!(r, KvResult::Cas { ci: 3, ok: true });
        assert_eq!(s.peek(b"x"), Some(b"2".as_slice()));
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_index() {
        let mut s = KvStore::new();
        for i in 0..10u8 {
            s.apply(&KvOp::Set(vec![i], vec![i, i]));
        }
        s.apply(&KvOp::Del(vec![3]));
        let snap = s.snapshot();
        let mut t = KvStore::new();
        assert!(t.restore(&snap));
        assert_eq!(t, s);
        assert_eq!(t.commit_index(), 11);
        assert_eq!(t.peek(&[3]), None);
    }

    #[test]
    fn corrupt_snapshot_leaves_store_untouched() {
        let mut s = KvStore::new();
        s.apply(&KvOp::Set(b"a".to_vec(), b"1".to_vec()));
        let before = s.clone();
        assert!(!s.restore(b"short"));
        let mut snap = before.snapshot();
        snap.push(0xFF);
        assert!(!s.restore(&snap));
        assert_eq!(s, before);
    }
}
