//! KV service tunables and their validity checks.

use crate::wal::WalConfig;
use ensemble_cluster::{ClusterConfig, ClusterError};
use std::time::Duration;

/// Everything a [`crate::KvReplica`] needs besides its transports.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// The underlying cluster member configuration (stack, engine,
    /// heartbeats, quorum policy, …).
    pub cluster: ClusterConfig,
    /// Worker threads in the TCP listener's pool; each parks on accepted
    /// connections pulled from a shared queue.
    pub listener_pool: usize,
    /// How long a submitted operation may wait for its commit before the
    /// client is told [`crate::KvError::Timeout`].
    pub request_timeout: Duration,
    /// Most requests one connection may have in flight before the server
    /// stops reading new frames from it (pipelining bound).
    pub pipeline_depth: usize,
    /// Write-ahead-log tuning, used when the replica is formed durably
    /// ([`crate::KvReplica::form_durable`]).
    pub wal: WalConfig,
}

impl KvConfig {
    /// A config for an `expected`-replica service with demo-friendly
    /// timings, on the cluster's default virtual-synchrony stack.
    pub fn new(expected: usize) -> KvConfig {
        let mut cluster = ClusterConfig::new(expected);
        // The KV plane runs many client threads per core; a loaded box
        // can deschedule a driver past the cluster's default detection
        // window and stall a healthy replica. Half a second of silence
        // still detects real partitions promptly for a service whose
        // clients wait seconds, without tripping on scheduling noise.
        cluster.miss_limit = cluster.miss_limit.max(12);
        KvConfig {
            cluster,
            listener_pool: 4,
            request_timeout: Duration::from_secs(2),
            pipeline_depth: 64,
            wal: WalConfig {
                // Group commit: amortize fsync across a batch. Acks are
                // held to the durable frontier either way, and the idle
                // tick force-flushes, so batching costs at most one
                // tick of ack latency under a lull.
                sync_every: 32,
                ..WalConfig::default()
            },
        }
    }

    /// Rejects configurations that would violate the service's safety
    /// argument or hang at runtime.
    ///
    /// Beyond delegating to [`ClusterConfig::validate`], this mirrors
    /// `ensemble-analyze` lint SL010: a stack serving state-machine
    /// replication must contain the `total` layer. Without total order,
    /// replicas apply concurrent operations in different orders and
    /// silently diverge — no error is ever raised at runtime, which is
    /// why the configuration is refused up front.
    pub fn validate(&self) -> Result<(), ClusterError> {
        self.cluster.validate()?;
        if !self.cluster.stack.contains(&"total") {
            return Err(ClusterError::Config(
                "a state-machine-replication service needs the total layer in its stack; \
                 without it replicas diverge silently (SL010)"
                    .into(),
            ));
        }
        if self.listener_pool == 0 {
            return Err(ClusterError::Config(
                "a listener pool of zero workers would accept and never serve".into(),
            ));
        }
        if self.request_timeout.is_zero() {
            return Err(ClusterError::Config(
                "a zero request timeout fails every operation immediately".into(),
            ));
        }
        if self.pipeline_depth == 0 {
            return Err(ClusterError::Config(
                "a pipeline depth of zero deadlocks every connection".into(),
            ));
        }
        if self.wal.checkpoint_every == 0 {
            return Err(ClusterError::Config(
                "a checkpoint interval of zero records would checkpoint on every \
                 append and never amortize the snapshot"
                    .into(),
            ));
        }
        if self.wal.sync_every == 0 {
            return Err(ClusterError::Config(
                "a group-commit batch of zero records never syncs and never acks".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        KvConfig::new(3).validate().expect("vsync stack has total");
    }

    #[test]
    fn stack_without_total_is_refused() {
        let mut cfg = KvConfig::new(3);
        // A membership-capable stack that never agrees on an order.
        cfg.cluster.stack = &[
            "top", "local", "gmp", "sync", "elect", "suspect", "frag", "collect", "pt2ptw",
            "mflow", "pt2pt", "mnak", "bottom",
        ];
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ClusterError::Config(ref m) if m.contains("SL010")));
    }

    #[test]
    fn cluster_validation_still_applies() {
        let mut cfg = KvConfig::new(3);
        cfg.cluster.miss_limit = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn degenerate_service_knobs_are_refused() {
        let mut cfg = KvConfig::new(3);
        cfg.listener_pool = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = KvConfig::new(3);
        cfg.request_timeout = Duration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = KvConfig::new(3);
        cfg.pipeline_depth = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = KvConfig::new(3);
        cfg.wal.checkpoint_every = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = KvConfig::new(3);
        cfg.wal.sync_every = 0;
        assert!(cfg.validate().is_err());
    }
}
