//! Link fault and latency models.
//!
//! A [`LinkModel`] decides, per (source, destination) transmission, whether
//! the copy is delivered and with what latency; duplication is modelled by
//! returning several delays. The abstract behavioural specifications of
//! these models live in `ensemble-ioa` (`FifoNetwork`, `LossyNetwork`); the
//! refinement tests check that the protocol layers mask exactly the faults
//! these models inject.

use ensemble_util::{DetRng, Duration, Endpoint};

/// Decides the fate of one packet copy on one link.
pub trait LinkModel {
    /// Returns the delivery delays for this transmission: an empty vector
    /// means the copy is dropped; more than one entry means duplication.
    fn fate(&mut self, src: Endpoint, dst: Endpoint, rng: &mut DetRng) -> Vec<Duration>;

    /// The nominal one-way link latency (used by the end-to-end analysis).
    fn nominal_latency(&self) -> Duration;
}

/// A perfectly reliable, constant-latency (hence per-link FIFO) network.
#[derive(Clone, Debug)]
pub struct PerfectModel {
    /// One-way latency applied to every packet.
    pub latency: Duration,
}

impl PerfectModel {
    /// 100 Mbit Ethernet as measured in the paper: ≈ 80 µs one-way.
    pub fn ethernet() -> Self {
        PerfectModel {
            latency: Duration::from_micros(80),
        }
    }

    /// VIA / Giganet: ≈ 10 µs one-way (§4, ref. \[27\] of the paper).
    pub fn via() -> Self {
        PerfectModel {
            latency: Duration::from_micros(10),
        }
    }
}

impl LinkModel for PerfectModel {
    fn fate(&mut self, _src: Endpoint, _dst: Endpoint, _rng: &mut DetRng) -> Vec<Duration> {
        vec![self.latency]
    }

    fn nominal_latency(&self) -> Duration {
        self.latency
    }
}

/// A network that drops, duplicates, and reorders (via latency jitter).
///
/// This realizes the paper's `LossyNetwork` abstract specification
/// (Figure 2(b)): messages may be lost, duplicated, and delivered out of
/// order. The reliable layers (`mnak`, `pt2pt`) must mask all of it.
#[derive(Clone, Debug)]
pub struct LossyModel {
    /// Base one-way latency.
    pub latency: Duration,
    /// Maximum extra random delay (uniform), causing reordering.
    pub jitter: Duration,
    /// Probability a copy is dropped.
    pub drop_p: f64,
    /// Probability a delivered copy is duplicated.
    pub dup_p: f64,
}

impl LossyModel {
    /// A moderately hostile default: Ethernet latency, 50 µs jitter,
    /// 5 % loss, 2 % duplication.
    pub fn default_hostile() -> Self {
        LossyModel {
            latency: Duration::from_micros(80),
            jitter: Duration::from_micros(50),
            drop_p: 0.05,
            dup_p: 0.02,
        }
    }

    /// A given loss rate with otherwise Ethernet-like behaviour.
    pub fn with_loss(drop_p: f64) -> Self {
        LossyModel {
            drop_p,
            ..Self::default_hostile()
        }
    }
}

impl LinkModel for LossyModel {
    fn fate(&mut self, _src: Endpoint, _dst: Endpoint, rng: &mut DetRng) -> Vec<Duration> {
        if rng.chance(self.drop_p) {
            return Vec::new();
        }
        let delay = |rng: &mut DetRng, base: Duration, jitter: Duration| {
            base + Duration(rng.below(jitter.nanos().max(1)))
        };
        let mut fates = vec![delay(rng, self.latency, self.jitter)];
        if rng.chance(self.dup_p) {
            fates.push(delay(rng, self.latency, self.jitter));
        }
        fates
    }

    fn nominal_latency(&self) -> Duration {
        self.latency
    }
}

/// Wraps an inner model and severs links that cross a partition boundary.
///
/// Endpoints whose ids appear in `isolated` cannot exchange packets with
/// the rest of the group (in either direction). Used by the
/// `partition_recovery` example and the membership tests.
pub struct PartitionModel<M> {
    inner: M,
    isolated: Vec<Endpoint>,
    active: bool,
}

impl<M: LinkModel> PartitionModel<M> {
    /// Builds a healed (inactive) partition around `inner`.
    pub fn new(inner: M) -> Self {
        PartitionModel {
            inner,
            isolated: Vec::new(),
            active: false,
        }
    }

    /// Isolates `eps` from everyone else.
    pub fn isolate(&mut self, eps: &[Endpoint]) {
        self.isolated = eps.to_vec();
        self.active = true;
    }

    /// Heals the partition.
    pub fn heal(&mut self) {
        self.active = false;
        self.isolated.clear();
    }

    fn severed(&self, a: Endpoint, b: Endpoint) -> bool {
        if !self.active {
            return false;
        }
        let ia = self.isolated.contains(&a);
        let ib = self.isolated.contains(&b);
        ia != ib
    }
}

impl<M: LinkModel> LinkModel for PartitionModel<M> {
    fn fate(&mut self, src: Endpoint, dst: Endpoint, rng: &mut DetRng) -> Vec<Duration> {
        if self.severed(src, dst) {
            return Vec::new();
        }
        self.inner.fate(src, dst, rng)
    }

    fn nominal_latency(&self) -> Duration {
        self.inner.nominal_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u32) -> Endpoint {
        Endpoint::new(i)
    }

    #[test]
    fn perfect_always_delivers_once() {
        let mut m = PerfectModel::ethernet();
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let f = m.fate(ep(0), ep(1), &mut rng);
            assert_eq!(f, vec![Duration::from_micros(80)]);
        }
    }

    #[test]
    fn via_latency() {
        assert_eq!(PerfectModel::via().nominal_latency().micros(), 10);
    }

    #[test]
    fn lossy_drops_at_configured_rate() {
        let mut m = LossyModel::with_loss(0.5);
        let mut rng = DetRng::new(2);
        let dropped = (0..10_000)
            .filter(|_| m.fate(ep(0), ep(1), &mut rng).is_empty())
            .count();
        assert!((4_000..6_000).contains(&dropped), "dropped = {dropped}");
    }

    #[test]
    fn lossy_duplicates_sometimes() {
        let mut m = LossyModel {
            latency: Duration::from_micros(10),
            jitter: Duration::ZERO,
            drop_p: 0.0,
            dup_p: 1.0,
        };
        let mut rng = DetRng::new(3);
        assert_eq!(m.fate(ep(0), ep(1), &mut rng).len(), 2);
    }

    #[test]
    fn lossy_jitter_varies_delay() {
        let mut m = LossyModel {
            latency: Duration::from_micros(10),
            jitter: Duration::from_micros(100),
            drop_p: 0.0,
            dup_p: 0.0,
        };
        let mut rng = DetRng::new(4);
        let delays: Vec<Duration> = (0..50).map(|_| m.fate(ep(0), ep(1), &mut rng)[0]).collect();
        assert!(delays.iter().any(|&d| d != delays[0]));
        assert!(delays.iter().all(|&d| d >= Duration::from_micros(10)));
    }

    #[test]
    fn partition_severs_and_heals() {
        let mut m = PartitionModel::new(PerfectModel::via());
        let mut rng = DetRng::new(5);
        assert!(!m.fate(ep(0), ep(2), &mut rng).is_empty());
        m.isolate(&[ep(2)]);
        assert!(m.fate(ep(0), ep(2), &mut rng).is_empty());
        assert!(m.fate(ep(2), ep(0), &mut rng).is_empty());
        // Within the isolated side, traffic still flows.
        m.isolate(&[ep(2), ep(3)]);
        assert!(!m.fate(ep(2), ep(3), &mut rng).is_empty());
        m.heal();
        assert!(!m.fate(ep(0), ep(2), &mut rng).is_empty());
    }
}
