//! Wire packets exchanged between simulated processes.
//!
//! The packet type itself lives in `ensemble-transport` (the transport
//! seam shared with the real-socket runtime); this module re-exports it
//! so existing simulator-facing code keeps its import paths.

pub use ensemble_transport::packet::{Dest, Packet};
