//! A deterministic virtual-time event queue.
//!
//! The heart of the simulator: a priority queue keyed by [`Time`] with a
//! monotone tie-breaker, so that events scheduled for the same instant pop
//! in scheduling order. Determinism here is what makes whole-system runs
//! replayable from a seed.

use ensemble_util::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // with the lowest sequence number breaking ties (FIFO at an instant).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(Time, T)` with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use ensemble_net::EventQueue;
/// use ensemble_util::Time;
/// let mut q = EventQueue::new();
/// q.push(Time(5), "b");
/// q.push(Time(3), "a");
/// q.push(Time(5), "c");
/// assert_eq!(q.pop(), Some((Time(3), "a")));
/// assert_eq!(q.pop(), Some((Time(5), "b")));
/// assert_eq!(q.pop(), Some((Time(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` at virtual time `at`.
    pub fn push(&mut self, at: Time, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time(10), 1);
        q.push(Time(2), 2);
        q.push(Time(7), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn fifo_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(4), ());
        q.push(Time(3), ());
        assert_eq!(q.peek_time(), Some(Time(3)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time(5), 'a');
        q.push(Time(1), 'b');
        assert_eq!(q.pop(), Some((Time(1), 'b')));
        q.push(Time(3), 'c');
        q.push(Time(5), 'd');
        assert_eq!(q.pop(), Some((Time(3), 'c')));
        assert_eq!(q.pop(), Some((Time(5), 'a')));
        assert_eq!(q.pop(), Some((Time(5), 'd')));
    }
}
