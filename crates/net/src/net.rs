//! The network: membership registry + link model + arrival scheduling.

use crate::model::LinkModel;
use crate::packet::{Dest, Packet};
use ensemble_util::{DetRng, Endpoint, Time};

/// A scheduled packet arrival.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// When the packet reaches `dst`.
    pub at: Time,
    /// The receiving endpoint.
    pub dst: Endpoint,
    /// The packet (shared bytes).
    pub packet: Packet,
}

/// Aggregate traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the network.
    pub sent: u64,
    /// Point-to-point or per-recipient copies attempted.
    pub copies: u64,
    /// Copies dropped by the model.
    pub dropped: u64,
    /// Copies duplicated by the model (extra deliveries).
    pub duplicated: u64,
    /// Copies scheduled for delivery.
    pub delivered: u64,
    /// Total bytes scheduled for delivery.
    pub bytes: u64,
}

/// The simulated network fabric.
///
/// Owns the member registry (so casts can be expanded), the link model and
/// the fault RNG. [`Network::transmit`] converts one send into a set of
/// scheduled [`Arrival`]s which the caller feeds into its event queue.
pub struct Network<M> {
    members: Vec<Endpoint>,
    model: M,
    rng: DetRng,
    stats: NetStats,
}

impl<M: LinkModel> Network<M> {
    /// Builds a network over `members` with the given model and fault seed.
    pub fn new(members: Vec<Endpoint>, model: M, seed: u64) -> Self {
        Network {
            members,
            model,
            rng: DetRng::new(seed),
            stats: NetStats::default(),
        }
    }

    /// Current members (cast targets).
    pub fn members(&self) -> &[Endpoint] {
        &self.members
    }

    /// Replaces the membership (after a view change or a join).
    pub fn set_members(&mut self, members: Vec<Endpoint>) {
        self.members = members;
    }

    /// Mutable access to the link model (e.g. to trigger a partition).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The nominal one-way latency of the underlying link model.
    pub fn nominal_latency(&self) -> ensemble_util::Duration {
        self.model.nominal_latency()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Transmits `packet` at time `now`, returning the scheduled arrivals.
    pub fn transmit(&mut self, now: Time, packet: Packet) -> Vec<Arrival> {
        self.stats.sent += 1;
        let targets: Vec<Endpoint> = match packet.dst {
            Dest::Point(ep) => vec![ep],
            Dest::Cast => self
                .members
                .iter()
                .copied()
                .filter(|&m| m != packet.src)
                .collect(),
        };
        let mut arrivals = Vec::with_capacity(targets.len());
        for dst in targets {
            self.stats.copies += 1;
            let fates = self.model.fate(packet.src, dst, &mut self.rng);
            if fates.is_empty() {
                self.stats.dropped += 1;
                continue;
            }
            if fates.len() > 1 {
                self.stats.duplicated += (fates.len() - 1) as u64;
            }
            for delay in fates {
                self.stats.delivered += 1;
                self.stats.bytes += packet.size() as u64;
                arrivals.push(Arrival {
                    at: now + delay,
                    dst,
                    packet: packet.clone(),
                });
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LossyModel, PerfectModel};
    use ensemble_util::Duration;

    fn eps(n: u32) -> Vec<Endpoint> {
        (0..n).map(Endpoint::new).collect()
    }

    #[test]
    fn cast_reaches_everyone_but_sender() {
        let mut net = Network::new(eps(4), PerfectModel::via(), 1);
        let arr = net.transmit(Time(0), Packet::cast(Endpoint::new(1), vec![9]));
        let mut dsts: Vec<u32> = arr.iter().map(|a| a.dst.id()).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![0, 2, 3]);
        assert!(arr
            .iter()
            .all(|a| a.at == Time(0) + Duration::from_micros(10)));
    }

    #[test]
    fn point_reaches_only_target() {
        let mut net = Network::new(eps(3), PerfectModel::ethernet(), 1);
        let arr = net.transmit(
            Time(100),
            Packet::point(Endpoint::new(0), Endpoint::new(2), vec![1, 2]),
        );
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].dst, Endpoint::new(2));
        assert_eq!(arr[0].at, Time(100) + Duration::from_micros(80));
    }

    #[test]
    fn stats_track_drops() {
        let mut net = Network::new(eps(2), LossyModel::with_loss(1.0), 2);
        let arr = net.transmit(Time(0), Packet::cast(Endpoint::new(0), vec![]));
        assert!(arr.is_empty());
        let s = net.stats();
        assert_eq!(s.sent, 1);
        assert_eq!(s.copies, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.delivered, 0);
    }

    #[test]
    fn membership_update_changes_cast_fanout() {
        let mut net = Network::new(eps(3), PerfectModel::via(), 3);
        net.set_members(eps(2));
        let arr = net.transmit(Time(0), Packet::cast(Endpoint::new(0), vec![]));
        assert_eq!(arr.len(), 1);
        assert_eq!(net.members().len(), 2);
    }

    #[test]
    fn per_link_fifo_under_constant_latency() {
        let mut net = Network::new(eps(2), PerfectModel::ethernet(), 4);
        let a = net.transmit(
            Time(0),
            Packet::point(Endpoint::new(0), Endpoint::new(1), vec![1]),
        );
        let b = net.transmit(
            Time(5),
            Packet::point(Endpoint::new(0), Endpoint::new(1), vec![2]),
        );
        assert!(a[0].at < b[0].at, "constant latency preserves send order");
    }
}
