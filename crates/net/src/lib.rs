//! Deterministic network simulation substrate.
//!
//! The paper's measurements run on two UltraSparcs over 100 Mbit Ethernet
//! (and extrapolate to VIA). We replace the physical network with a
//! deterministic simulator: a virtual-time event queue, a packet model, and
//! pluggable fault/latency models (perfect FIFO, lossy with drops,
//! duplicates and reordering, partitions). Every run is reproducible from
//! its seed, which the protocol test-suite exploits heavily.

#![forbid(unsafe_code)]

pub mod model;
pub mod net;
pub mod packet;
pub mod queue;

pub use model::{LinkModel, LossyModel, PartitionModel, PerfectModel};
pub use net::{Arrival, NetStats, Network};
pub use packet::{Dest, Packet};
pub use queue::EventQueue;
