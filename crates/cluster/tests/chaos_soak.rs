//! Deterministic chaos: partitions and crash-stops — checked.
//!
//! Six nodes form over seeded loopback hubs. Two seeded schedule
//! families run over the same harness:
//!
//! * **Partition soak** — split both planes 4/2, wait for the minority
//!   to stall ([`ClusterEvent::MinorityPartition`]) and the majority to
//!   install the shrunk view, push traffic only the majority may
//!   deliver, heal, and wait for the single merged six-member view.
//! * **Crash soak** — crash-stop members mid-traffic ([`ClusterNode::
//!   kill`]: no Leave, no flush) and restart them under fresh
//!   incarnations through the merge path: a follower, then the senior
//!   coordinator, then a member killed *while* another member's rejoin
//!   merge is in flight (the flush must survive losing a participant).
//!
//! Every view install and cast delivery on every node feeds a
//! [`VsyncChecker`]; a run passes only if the whole execution satisfies
//! the virtual-synchrony contract — one primary view sequence, agreed
//! delivery, exactly-once — for each seed in the matrix.

use ensemble_cluster::{ClusterConfig, ClusterEvent, ClusterNode, StateProvider, VsyncChecker};
use ensemble_runtime::{Delivery, FaultPlan, LoopbackHub};
use ensemble_util::Endpoint;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const N: usize = 6;
const MAJORITY: [u32; 4] = [0, 1, 2, 3];
const MINORITY: [u32; 2] = [4, 5];

struct Harness {
    /// Slot per original member id; `None` while that member is dead.
    nodes: Vec<Option<ClusterNode>>,
    checker: VsyncChecker,
    casts: Vec<Vec<Vec<u8>>>,
    stalled: HashSet<u32>,
    snapshots: Vec<u32>,
}

impl Harness {
    /// Forms the six-node cluster and seeds the checker with the
    /// initial view (its `Formed` event is consumed while forming).
    /// Every node carries a state provider so whoever ends up acting
    /// coordinator after a crash can still ship snapshots to rejoiners.
    fn form(control: &LoopbackHub, data: &LoopbackHub) -> Harness {
        let cfg = ClusterConfig::new(N);
        let seed = Endpoint::new(0);
        let mut formers = Vec::new();
        for i in 0..N as u32 {
            let ep = Endpoint::new(i);
            let (c, d) = (control.attach(ep), data.attach(ep));
            let cfg = cfg.clone();
            formers.push(std::thread::spawn(move || {
                let state: Option<Box<dyn StateProvider>> =
                    Some(Box::new(|| b"kv-state".to_vec()) as Box<dyn StateProvider>);
                ClusterNode::form(ep, seed, cfg, Box::new(c), Box::new(d), state)
            }));
        }
        let nodes: Vec<Option<ClusterNode>> = formers
            .into_iter()
            .map(|f| Some(f.join().unwrap().expect("rendezvous completes")))
            .collect();
        let mut checker = VsyncChecker::new();
        for n in nodes.iter().flatten() {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                assert!(Instant::now() < deadline, "node never saw Formed");
                match n.recv_timeout(Duration::from_millis(10)) {
                    Some(ClusterEvent::Formed(vs)) => {
                        assert_eq!(vs.nmembers(), N);
                        checker.on_view(n.endpoint(), &vs);
                        break;
                    }
                    _ => continue,
                }
            }
        }
        Harness {
            nodes,
            checker,
            casts: vec![Vec::new(); N],
            stalled: HashSet::new(),
            snapshots: Vec::new(),
        }
    }

    /// The live node in slot `id` (panics if it is crashed).
    fn node(&self, id: u32) -> &ClusterNode {
        self.nodes[id as usize].as_ref().expect("node alive")
    }

    fn drain(&mut self) {
        for (i, n) in self.nodes.iter().enumerate() {
            let Some(n) = n else { continue };
            let ep = n.endpoint();
            while let Some(ev) = n.try_recv() {
                match ev {
                    ClusterEvent::Formed(vs) => self.checker.on_view(ep, &vs),
                    ClusterEvent::Delivery(Delivery::View(vs)) => self.checker.on_view(ep, &vs),
                    ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) => {
                        self.checker.on_cast_delivery(ep, &bytes);
                        self.casts[i].push(bytes);
                    }
                    ClusterEvent::MinorityPartition { live, needed } => {
                        assert!(live < needed, "stall reports a real quorum loss");
                        self.stalled.insert(ep.id());
                    }
                    ClusterEvent::Snapshot(_) => self.snapshots.push(ep.id()),
                    _ => {}
                }
            }
        }
    }

    /// Polls `drain` until `cond` holds (bounded), asserting `what`.
    /// The bound outlasts suspicion eviction of a crashed member.
    fn wait(&mut self, what: &str, mut cond: impl FnMut(&Harness) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            self.drain();
            if cond(self) {
                return;
            }
            assert!(Instant::now() < deadline, "timed out waiting for: {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Casts one unique payload from each node in `from` and waits until
    /// every node in `to` has delivered all of them.
    fn cast_round(&mut self, tag: char, from: &[u32], to: &[u32]) {
        for &id in from {
            let payload = format!("{tag}{id}");
            self.node(id).cast(payload.as_bytes()).unwrap();
        }
        let want: Vec<Vec<u8>> = from
            .iter()
            .map(|id| format!("{tag}{id}").into_bytes())
            .collect();
        self.wait(&format!("round '{tag}' delivered to {to:?}"), |h| {
            to.iter().all(|&id| {
                want.iter()
                    .all(|p| h.casts[id as usize].iter().any(|c| c == p))
            })
        });
    }

    /// Crash-stops slot `id` (capturing the delivery prefix it already
    /// handed up) and returns the dead incarnation's endpoint.
    fn kill(&mut self, id: u32) -> Endpoint {
        self.drain();
        let n = self.nodes[id as usize].take().expect("victim alive");
        let ep = n.endpoint();
        n.kill();
        ep
    }

    /// Waits until every node in `live` has installed a view that holds
    /// exactly `live.len()` members and excludes `dead`.
    fn wait_evicted(&mut self, dead: Endpoint, live: &[u32]) {
        self.wait(&format!("survivors evict {dead:?}"), |h| {
            live.iter().all(|&id| {
                let v = h.node(id).view();
                v.nmembers() == live.len() && !v.members.contains(&dead)
            })
        });
    }
}

/// Starts the rejoin of `dead` under a fresh incarnation on its own
/// thread (forming blocks until the merge grant lands). `contact` is
/// where the Hellos go — any live member relays to the acting
/// coordinator. The join windows are widened: a rejoin may land while
/// the group is mid-suspicion or mid-merge and must outwait both. Like
/// a recovered replica, the reborn node re-arms its state provider —
/// it may end up acting coordinator for a *later* rejoiner.
fn restart(
    control: &LoopbackHub,
    data: &LoopbackHub,
    dead: Endpoint,
    contact: Endpoint,
) -> std::thread::JoinHandle<ClusterNode> {
    let reborn = dead.reincarnate();
    let (c, d) = (control.attach(reborn), data.attach(reborn));
    let mut cfg = ClusterConfig::new(N);
    cfg.join_deadline = Duration::from_secs(30);
    cfg.form_timeout = Duration::from_secs(30);
    std::thread::spawn(move || {
        let state: Option<Box<dyn StateProvider>> =
            Some(Box::new(|| b"kv-state".to_vec()) as Box<dyn StateProvider>);
        ClusterNode::form(reborn, contact, cfg, Box::new(c), Box::new(d), state)
            .expect("rejoin completes")
    })
}

fn soak(seed: u64) {
    let control = LoopbackHub::with_faults(seed, FaultPlan::default());
    let data = LoopbackHub::with_faults(seed ^ 0x5EED, FaultPlan::default());
    let mut h = Harness::form(&control, &data);

    // Phase A: healthy cluster, every node casts, everyone delivers.
    let all: Vec<u32> = (0..N as u32).collect();
    h.cast_round('a', &all, &all);

    // Split 4/2 on both planes.
    let groups = vec![MAJORITY.to_vec(), MINORITY.to_vec()];
    control.split(groups.clone());
    data.split(groups);
    assert!(control.partition_status().is_partitioned());

    // The minority stalls; the majority installs the shrunk view.
    h.wait("both minority nodes stall", |h| {
        MINORITY.iter().all(|id| h.stalled.contains(id))
    });
    h.wait("majority installs the 4-member view", |h| {
        MAJORITY.iter().all(|&id| {
            let v = h.node(id).view();
            v.nmembers() == MAJORITY.len() && v.view_id.ltime > 0
        })
    });

    // Phase B: only the primary component may deliver this traffic.
    h.cast_round('b', &MAJORITY, &MAJORITY);

    // Heal. Beacons cross, the senior coordinator merges, grants pull
    // the minority into the single six-member view.
    control.heal();
    data.heal();
    h.wait("all six nodes install the merged view", |h| {
        h.nodes.iter().flatten().all(|n| {
            let v = n.view();
            v.nmembers() == N && v.view_id.ltime > 1
        })
    });
    let merged = h.node(0).view();
    for n in h.nodes.iter().flatten() {
        assert_eq!(n.view().view_id, merged.view_id, "one merged view");
    }

    // Phase C: the healed cluster is fully symmetric again.
    h.cast_round('c', &all, &all);
    h.drain();

    // The minority skipped the primary's solo view entirely: phase B
    // payloads must never have reached it (agreed delivery, not "late").
    for &id in &MINORITY {
        assert!(
            !h.casts[id as usize].iter().any(|c| c.starts_with(b"b")),
            "minority node {id} delivered majority-only traffic"
        );
        assert!(
            h.snapshots.contains(&id),
            "minority node {id} rejoined without a state snapshot"
        );
    }

    // The whole execution satisfies the virtual-synchrony contract.
    let violations = h.checker.finish();
    assert!(
        violations.is_empty(),
        "seed {seed}: vsync violations:\n{}",
        violations.join("\n")
    );

    // Operator-visible traces of the episode.
    let m0 = h.node(0).metrics();
    assert!(m0.merge_beacons.load(Ordering::Relaxed) >= 1);
    assert!(m0.merge_grants_sent.load(Ordering::Relaxed) >= MINORITY.len() as u64);
    let m4 = h.node(4).metrics();
    assert!(m4.minority_stalls.load(Ordering::Relaxed) >= 1);
    assert!(m4.merge_grants_installed.load(Ordering::Relaxed) >= 1);
    let health = control.health();
    assert!(
        health.faults.partition_drops > 0,
        "the split dropped real traffic"
    );
    assert!(!control.partition_status().is_partitioned());
}

#[test]
fn seeded_partition_chaos_keeps_virtual_synchrony_seed_1() {
    soak(1);
}

#[test]
fn seeded_partition_chaos_keeps_virtual_synchrony_seed_2() {
    soak(2);
}

#[test]
fn seeded_partition_chaos_keeps_virtual_synchrony_seed_3() {
    soak(3);
}

/// Crash-stop soak: members die without ceremony mid-traffic and come
/// back as fresh incarnations through the merge path. The schedule
/// escalates — follower crash, then coordinator crash (seniority moves
/// to node 1), then a crash *during* another member's rejoin merge so
/// the in-flight flush loses a participant and must recover via
/// suspicion eviction. The [`VsyncChecker`] holds throughout: a crashed
/// node installs no successor view, so only the prefix rule binds it,
/// and its reincarnation is a brand-new checker identity.
fn crash_soak(seed: u64) {
    let control = LoopbackHub::with_faults(seed, FaultPlan::default());
    let data = LoopbackHub::with_faults(seed ^ 0xC4A5, FaultPlan::default());
    let mut h = Harness::form(&control, &data);
    let all: Vec<u32> = (0..N as u32).collect();

    // Phase A: healthy traffic, then a follower crash-stops.
    h.cast_round('a', &all, &all);
    let dead5 = h.kill(5);
    h.wait_evicted(dead5, &[0, 1, 2, 3, 4]);

    // Phase B: the survivors keep delivering without the dead member.
    h.cast_round('b', &[0, 1, 2, 3, 4], &[0, 1, 2, 3, 4]);

    // Node 5 restarts under a fresh incarnation and rejoins by merge.
    let t = restart(&control, &data, dead5, h.node(0).endpoint());
    h.nodes[5] = Some(t.join().unwrap());
    h.wait("reborn follower pulled into the 6-member view", |h| {
        h.nodes.iter().flatten().all(|n| n.view().nmembers() == N)
    });

    // Phase C: full-strength traffic, then the *coordinator* crashes.
    h.cast_round('c', &all, &all);
    let dead0 = h.kill(0);
    h.wait_evicted(dead0, &[1, 2, 3, 4, 5]);

    // Phase D: node 1 is senior now; the group still delivers.
    h.cast_round('d', &[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5]);

    // The old coordinator rejoins by Hello-ing a surviving member; the
    // relay forwards it to the acting coordinator.
    let t = restart(&control, &data, dead0, h.node(1).endpoint());
    h.nodes[0] = Some(t.join().unwrap());
    h.wait("reborn ex-coordinator pulled into the 6-member view", |h| {
        h.nodes.iter().flatten().all(|n| n.view().nmembers() == N)
    });
    h.cast_round('e', &all, &all);

    // Phase F: crash during merge. Node 4 dies and starts rejoining;
    // while its merge flush is (possibly) in flight, participant 3 dies
    // too. The flush must not wedge: suspicion evicts the corpse and
    // the merge completes for the members that are actually alive.
    let dead4 = h.kill(4);
    h.wait_evicted(dead4, &[0, 1, 2, 3, 5]);
    let t = restart(&control, &data, dead4, h.node(1).endpoint());
    std::thread::sleep(Duration::from_millis(5 + (seed % 7) * 5));
    let dead3 = h.kill(3);
    h.nodes[4] = Some(t.join().unwrap());
    let live = [0u32, 1, 2, 4, 5];
    h.wait(
        "five live members converge after the mid-merge crash",
        |h| {
            live.iter().all(|&id| {
                let v = h.node(id).view();
                v.nmembers() == live.len()
                    && !v.members.contains(&dead3)
                    && v.members.contains(&h.node(4).endpoint())
            })
        },
    );

    // Phase G: the converged five-member group is fully symmetric.
    h.cast_round('g', &live, &live);
    h.drain();

    // Every reborn member was state-transferred on its way back in.
    for id in [5u32, 0, 4] {
        assert!(
            h.snapshots.contains(&id),
            "reborn node {id} rejoined without a state snapshot"
        );
    }

    // The whole execution — three crashes, three rebirths, one corpse —
    // satisfies the virtual-synchrony contract.
    let violations = h.checker.finish();
    assert!(
        violations.is_empty(),
        "seed {seed}: vsync violations:\n{}",
        violations.join("\n")
    );

    // Operator-visible traces: the rebirths were admitted through the
    // rejoin path and granted membership. A reborn joiner consumes its
    // grant inside the rendezvous (before the driver exists), so the
    // evidence lives on the coordinator side — and which member acted
    // as coordinator shifted across the schedule, so sum over the
    // group. Node 0 admitted the first rejoin and then crash-stopped,
    // taking that tally with it: only the later two remain visible.
    let (mut rejoins, mut grants) = (0u64, 0u64);
    for n in h.nodes.iter().flatten() {
        let m = n.metrics();
        rejoins += m.rejoins.load(Ordering::Relaxed);
        grants += m.merge_grants_sent.load(Ordering::Relaxed);
    }
    assert!(rejoins >= 2, "only {rejoins} rejoin admissions, want >= 2");
    assert!(grants >= 2, "only {grants} merge grants sent, want >= 2");
}

#[test]
fn seeded_crash_restart_chaos_keeps_virtual_synchrony_seed_1() {
    crash_soak(1);
}

#[test]
fn seeded_crash_restart_chaos_keeps_virtual_synchrony_seed_2() {
    crash_soak(2);
}

#[test]
fn seeded_crash_restart_chaos_keeps_virtual_synchrony_seed_3() {
    crash_soak(3);
}
