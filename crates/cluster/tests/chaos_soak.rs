//! Deterministic partition chaos: split, stall, heal, merge — checked.
//!
//! Six nodes form over seeded loopback hubs. The harness splits both
//! planes 4/2, waits for the minority to stall ([`ClusterEvent::
//! MinorityPartition`]) and the majority to install the shrunk view,
//! pushes traffic only the majority may deliver, heals, and waits for
//! the single merged six-member view. Every view install and cast
//! delivery on every node feeds a [`VsyncChecker`]; the run passes only
//! if the whole execution satisfies the virtual-synchrony contract —
//! one primary view sequence, agreed delivery, exactly-once — for each
//! seed in the matrix.

use ensemble_cluster::{ClusterConfig, ClusterEvent, ClusterNode, StateProvider, VsyncChecker};
use ensemble_runtime::{Delivery, FaultPlan, LoopbackHub};
use ensemble_util::Endpoint;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const N: usize = 6;
const MAJORITY: [u32; 4] = [0, 1, 2, 3];
const MINORITY: [u32; 2] = [4, 5];

struct Harness {
    nodes: Vec<ClusterNode>,
    checker: VsyncChecker,
    casts: Vec<Vec<Vec<u8>>>,
    stalled: HashSet<u32>,
    snapshots: Vec<u32>,
}

impl Harness {
    /// Forms the six-node cluster and seeds the checker with the
    /// initial view (its `Formed` event is consumed while forming).
    fn form(control: &LoopbackHub, data: &LoopbackHub) -> Harness {
        let cfg = ClusterConfig::new(N);
        let seed = Endpoint::new(0);
        let mut formers = Vec::new();
        for i in 0..N as u32 {
            let ep = Endpoint::new(i);
            let (c, d) = (control.attach(ep), data.attach(ep));
            let cfg = cfg.clone();
            formers.push(std::thread::spawn(move || {
                let state: Option<Box<dyn StateProvider>> = (ep == seed)
                    .then(|| Box::new(|| b"kv-state".to_vec()) as Box<dyn StateProvider>);
                ClusterNode::form(ep, seed, cfg, Box::new(c), Box::new(d), state)
            }));
        }
        let nodes: Vec<ClusterNode> = formers
            .into_iter()
            .map(|f| f.join().unwrap().expect("rendezvous completes"))
            .collect();
        let mut checker = VsyncChecker::new();
        for n in &nodes {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                assert!(Instant::now() < deadline, "node never saw Formed");
                match n.recv_timeout(Duration::from_millis(10)) {
                    Some(ClusterEvent::Formed(vs)) => {
                        assert_eq!(vs.nmembers(), N);
                        checker.on_view(n.endpoint(), &vs);
                        break;
                    }
                    _ => continue,
                }
            }
        }
        Harness {
            nodes,
            checker,
            casts: vec![Vec::new(); N],
            stalled: HashSet::new(),
            snapshots: Vec::new(),
        }
    }

    fn drain(&mut self) {
        for (i, n) in self.nodes.iter().enumerate() {
            let ep = n.endpoint();
            while let Some(ev) = n.try_recv() {
                match ev {
                    ClusterEvent::Formed(vs) => self.checker.on_view(ep, &vs),
                    ClusterEvent::Delivery(Delivery::View(vs)) => self.checker.on_view(ep, &vs),
                    ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) => {
                        self.checker.on_cast_delivery(ep, &bytes);
                        self.casts[i].push(bytes);
                    }
                    ClusterEvent::MinorityPartition { live, needed } => {
                        assert!(live < needed, "stall reports a real quorum loss");
                        self.stalled.insert(ep.id());
                    }
                    ClusterEvent::Snapshot(_) => self.snapshots.push(ep.id()),
                    _ => {}
                }
            }
        }
    }

    /// Polls `drain` until `cond` holds (bounded), asserting `what`.
    fn wait(&mut self, what: &str, mut cond: impl FnMut(&Harness) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            self.drain();
            if cond(self) {
                return;
            }
            assert!(Instant::now() < deadline, "timed out waiting for: {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Casts one unique payload from each node in `from` and waits until
    /// every node in `to` has delivered all of them.
    fn cast_round(&mut self, tag: char, from: &[u32], to: &[u32]) {
        for &id in from {
            let payload = format!("{tag}{id}");
            self.nodes[id as usize].cast(payload.as_bytes()).unwrap();
        }
        let want: Vec<Vec<u8>> = from
            .iter()
            .map(|id| format!("{tag}{id}").into_bytes())
            .collect();
        self.wait(&format!("round '{tag}' delivered to {to:?}"), |h| {
            to.iter().all(|&id| {
                want.iter()
                    .all(|p| h.casts[id as usize].iter().any(|c| c == p))
            })
        });
    }
}

fn soak(seed: u64) {
    let control = LoopbackHub::with_faults(seed, FaultPlan::default());
    let data = LoopbackHub::with_faults(seed ^ 0x5EED, FaultPlan::default());
    let mut h = Harness::form(&control, &data);

    // Phase A: healthy cluster, every node casts, everyone delivers.
    let all: Vec<u32> = (0..N as u32).collect();
    h.cast_round('a', &all, &all);

    // Split 4/2 on both planes.
    let groups = vec![MAJORITY.to_vec(), MINORITY.to_vec()];
    control.split(groups.clone());
    data.split(groups);
    assert!(control.partition_status().is_partitioned());

    // The minority stalls; the majority installs the shrunk view.
    h.wait("both minority nodes stall", |h| {
        MINORITY.iter().all(|id| h.stalled.contains(id))
    });
    h.wait("majority installs the 4-member view", |h| {
        MAJORITY.iter().all(|&id| {
            let v = h.nodes[id as usize].view();
            v.nmembers() == MAJORITY.len() && v.view_id.ltime > 0
        })
    });

    // Phase B: only the primary component may deliver this traffic.
    h.cast_round('b', &MAJORITY, &MAJORITY);

    // Heal. Beacons cross, the senior coordinator merges, grants pull
    // the minority into the single six-member view.
    control.heal();
    data.heal();
    h.wait("all six nodes install the merged view", |h| {
        h.nodes.iter().all(|n| {
            let v = n.view();
            v.nmembers() == N && v.view_id.ltime > 1
        })
    });
    let merged = h.nodes[0].view();
    for n in &h.nodes {
        assert_eq!(n.view().view_id, merged.view_id, "one merged view");
    }

    // Phase C: the healed cluster is fully symmetric again.
    h.cast_round('c', &all, &all);
    h.drain();

    // The minority skipped the primary's solo view entirely: phase B
    // payloads must never have reached it (agreed delivery, not "late").
    for &id in &MINORITY {
        assert!(
            !h.casts[id as usize].iter().any(|c| c.starts_with(b"b")),
            "minority node {id} delivered majority-only traffic"
        );
        assert!(
            h.snapshots.contains(&id),
            "minority node {id} rejoined without a state snapshot"
        );
    }

    // The whole execution satisfies the virtual-synchrony contract.
    let violations = h.checker.finish();
    assert!(
        violations.is_empty(),
        "seed {seed}: vsync violations:\n{}",
        violations.join("\n")
    );

    // Operator-visible traces of the episode.
    let m0 = h.nodes[0].metrics();
    assert!(m0.merge_beacons.load(Ordering::Relaxed) >= 1);
    assert!(m0.merge_grants_sent.load(Ordering::Relaxed) >= MINORITY.len() as u64);
    let m4 = h.nodes[4].metrics();
    assert!(m4.minority_stalls.load(Ordering::Relaxed) >= 1);
    assert!(m4.merge_grants_installed.load(Ordering::Relaxed) >= 1);
    let health = control.health();
    assert!(
        health.faults.partition_drops > 0,
        "the split dropped real traffic"
    );
    assert!(!control.partition_status().is_partitioned());
}

#[test]
fn seeded_partition_chaos_keeps_virtual_synchrony_seed_1() {
    soak(1);
}

#[test]
fn seeded_partition_chaos_keeps_virtual_synchrony_seed_2() {
    soak(2);
}

#[test]
fn seeded_partition_chaos_keeps_virtual_synchrony_seed_3() {
    soak(3);
}
