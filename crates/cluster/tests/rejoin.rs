//! Fenced-member rejoin: a killed node comes back under a fresh
//! incarnation and is absorbed through the merge path.
//!
//! Three nodes form; one is killed; the survivors install the shrunk
//! view. The dead member then calls [`ClusterNode::form`] again with
//! `ep.reincarnate()` and fresh transports. Its Hello reaches the
//! acting coordinator, which runs a merge flush and answers with a
//! `MergeGrant` carrying the current view and a state snapshot — no
//! second seed rendezvous, no manual intervention. Afterwards the
//! cluster is symmetric: casts from either side deliver exactly once
//! everywhere.

use ensemble_cluster::{ClusterConfig, ClusterEvent, ClusterNode, StateProvider};
use ensemble_runtime::{Delivery, LoopbackHub};
use ensemble_util::Endpoint;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn wait(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn killed_member_rejoins_with_fresh_incarnation_and_snapshot() {
    let control = LoopbackHub::new(41);
    let data = LoopbackHub::new(42);
    let cfg = ClusterConfig::new(3);
    let seed = Endpoint::new(0);

    let mut formers = Vec::new();
    for i in 0..3u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = cfg.clone();
        formers.push(std::thread::spawn(move || {
            let state: Option<Box<dyn StateProvider>> = (ep == seed)
                .then(|| Box::new(|| b"replicated-kv".to_vec()) as Box<dyn StateProvider>);
            ClusterNode::form(ep, seed, cfg.clone(), Box::new(c), Box::new(d), state)
        }));
    }
    let mut nodes: Vec<ClusterNode> = formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("rendezvous completes"))
        .collect();

    // Kill the highest member; survivors converge on the 2-member view.
    let victim = nodes.pop().unwrap();
    let victim_ep = victim.endpoint();
    victim.kill();
    wait("survivors install the 2-member view", || {
        nodes
            .iter()
            .all(|n| n.view().nmembers() == 2 && n.view().view_id.ltime > 0)
    });

    // The ghost returns: same id, next incarnation, fresh transports.
    let reborn_ep = victim_ep.reincarnate();
    let (c, d) = (control.attach(reborn_ep), data.attach(reborn_ep));
    let cfg2 = cfg.clone();
    let rejoiner = std::thread::spawn(move || {
        ClusterNode::form(reborn_ep, seed, cfg2, Box::new(c), Box::new(d), None)
    });
    let reborn = rejoiner.join().unwrap().expect("rejoin completes");

    // The grant shipped the coordinator's snapshot before Formed.
    let mut got_snapshot = false;
    let mut formed_view = None;
    let deadline = Instant::now() + Duration::from_secs(10);
    while formed_view.is_none() {
        assert!(Instant::now() < deadline, "rejoiner never saw Formed");
        match reborn.recv_timeout(Duration::from_millis(10)) {
            Some(ClusterEvent::Snapshot(s)) => {
                assert_eq!(s, b"replicated-kv");
                got_snapshot = true;
            }
            Some(ClusterEvent::Formed(vs)) => formed_view = Some(vs),
            _ => continue,
        }
    }
    assert!(got_snapshot, "rejoin must carry a state snapshot");
    let formed = formed_view.expect("loop exits with a view");
    assert_eq!(formed.nmembers(), 3);
    assert!(
        formed.members.contains(&reborn_ep),
        "merged view holds the fresh incarnation"
    );
    assert!(
        !formed.members.contains(&victim_ep),
        "merged view must not resurrect the dead incarnation"
    );

    // Survivors install the same 3-member merged view.
    wait("survivors absorb the reborn member", || {
        nodes
            .iter()
            .all(|n| n.view().nmembers() == 3 && n.view().members.contains(&reborn_ep))
    });
    for n in &nodes {
        assert_eq!(n.view().view_id, formed.view_id, "one merged view");
    }

    // Full symmetry: traffic flows both ways, exactly once.
    nodes[0].cast(b"from-survivor").unwrap();
    reborn.cast(b"from-reborn").unwrap();
    let drain = |n: &ClusterNode, hits: &mut Vec<Vec<u8>>| {
        while let Some(ev) = n.try_recv() {
            if let ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) = ev {
                hits.push(bytes);
            }
        }
    };
    let mut per_node: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 3];
    wait("both casts deliver everywhere", || {
        for (i, n) in nodes.iter().chain(std::iter::once(&reborn)).enumerate() {
            drain(n, &mut per_node[i]);
        }
        per_node.iter().all(|c| {
            c.iter().any(|b| b == b"from-survivor") && c.iter().any(|b| b == b"from-reborn")
        })
    });
    for c in &per_node {
        assert_eq!(c.len(), 2, "exactly-once delivery after rejoin: {c:?}");
    }

    // The episode is visible to operators.
    let m0 = nodes[0].metrics();
    assert!(m0.rejoins.load(Ordering::Relaxed) >= 1);
    assert!(m0.merge_grants_sent.load(Ordering::Relaxed) >= 1);
    assert!(
        reborn
            .metrics()
            .merge_grants_installed
            .load(Ordering::Relaxed)
            == 0
    );
    assert!(nodes[0]
        .metrics_text()
        .contains("ensemble_cluster_rejoins_total"));
}
