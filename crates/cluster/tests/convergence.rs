//! Cross-node convergence: the cluster demo's scenario, asserted.
//!
//! Three nodes rendezvous from one seed over seeded loopback hubs, one
//! member is killed, and the survivors must install exactly one new
//! view — the same view — within ten heartbeat periods, with every
//! application cast (before, during, and after the change) delivered
//! exactly once on each survivor. A second test checks epoch fencing:
//! a correctly-signed heartbeat from a stale epoch is answered with a
//! `Fence` and never disturbs the installed view.

use ensemble_cluster::{
    encode, ClusterConfig, ClusterEvent, ClusterNode, Envelope, Frame, StateProvider,
};
use ensemble_event::ViewState;
use ensemble_runtime::{Delivery, FaultPlan, LoopbackHub, Transport};
use ensemble_transport::Packet;
use ensemble_util::Endpoint;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Forms a three-node cluster over the given hubs and drains each
/// node's queue through its `Formed` event.
fn form_three(control: &LoopbackHub, data: &LoopbackHub) -> Vec<ClusterNode> {
    let cfg = ClusterConfig::new(3);
    let seed = Endpoint::new(0);
    let mut formers = Vec::new();
    for i in 0..3u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = cfg.clone();
        formers.push(std::thread::spawn(move || {
            let state: Option<Box<dyn StateProvider>> =
                (ep == seed).then(|| Box::new(|| b"kv-state".to_vec()) as Box<dyn StateProvider>);
            ClusterNode::form(ep, seed, cfg, Box::new(c), Box::new(d), state)
        }));
    }
    let nodes: Vec<ClusterNode> = formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("rendezvous completes"))
        .collect();
    for n in &nodes {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(
                Instant::now() < deadline,
                "node {} never saw Formed",
                n.endpoint().id()
            );
            match n.recv_timeout(Duration::from_millis(10)) {
                Some(ClusterEvent::Formed(vs)) => {
                    assert_eq!(vs.nmembers(), 3);
                    break;
                }
                _ => continue,
            }
        }
    }
    nodes
}

/// Drains every pending event on each survivor into `views` / `casts`.
fn drain(
    nodes: &[ClusterNode],
    views: &mut [Vec<ViewState>],
    casts: &mut [Vec<Vec<u8>>],
    fenced: &mut Vec<(Endpoint, u64)>,
) {
    for (i, n) in nodes.iter().enumerate() {
        while let Some(ev) = n.try_recv() {
            match ev {
                ClusterEvent::Delivery(Delivery::View(vs)) => views[i].push(vs),
                ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) => casts[i].push(bytes),
                ClusterEvent::FencedPeer { peer, epoch } => fenced.push((peer, epoch)),
                _ => {}
            }
        }
    }
}

#[test]
fn survivors_install_exactly_one_new_view_with_exactly_once_delivery() {
    // Duplication and reordering on both planes, but no loss: the
    // outcome must be identical to a clean run (idempotent rendezvous,
    // seqno-suppressed data plane, miss-budgeted heartbeats).
    let control = LoopbackHub::with_faults(21, FaultPlan::lossy(0.0, 0.3, 0.3));
    let data = LoopbackHub::with_faults(22, FaultPlan::lossy(0.0, 0.3, 0.3));
    let mut nodes = form_three(&control, &data);
    let hb = ClusterConfig::new(3).heartbeat_period;

    nodes[0].cast(b"before").unwrap();
    let victim = nodes.pop().unwrap();
    let victim_ep = victim.endpoint();
    victim.kill();
    let killed = Instant::now();

    // A cast roughly inside the detection/flush window: whether it
    // lands before the Block or parks and replays, it must come out
    // exactly once in the new view.
    std::thread::sleep(hb * 2);
    nodes[1].cast(b"during").unwrap();

    let mut views = vec![Vec::new(), Vec::new()];
    let mut casts = vec![Vec::new(), Vec::new()];
    let mut fenced = Vec::new();
    let deadline = killed + hb * 10;
    while views
        .iter()
        .any(|v: &Vec<ViewState>| v.iter().all(|x| x.view_id.ltime == 0))
    {
        assert!(
            Instant::now() < deadline,
            "survivors must install the new view within 10 heartbeat periods"
        );
        drain(&nodes, &mut views, &mut casts, &mut fenced);
        std::thread::sleep(Duration::from_millis(2));
    }

    nodes[0].cast(b"after").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while casts.iter().any(|c| c.len() < 3) && Instant::now() < deadline {
        drain(&nodes, &mut views, &mut casts, &mut fenced);
        std::thread::sleep(Duration::from_millis(2));
    }
    // Grace window: no *second* view change may sneak in afterwards.
    std::thread::sleep(hb * 5);
    drain(&nodes, &mut views, &mut casts, &mut fenced);

    let mut installed = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        let new_views: Vec<&ViewState> = views[i].iter().filter(|v| v.view_id.ltime > 0).collect();
        assert_eq!(
            new_views.len(),
            1,
            "survivor {} installed {} new views, want exactly 1",
            n.endpoint().id(),
            new_views.len()
        );
        assert_eq!(new_views[0].nmembers(), 2);
        assert!(new_views[0].rank_of(victim_ep).is_none());
        installed.push(new_views[0].view_id);
        for payload in [&b"before"[..], &b"during"[..], &b"after"[..]] {
            let copies = casts[i].iter().filter(|b| &b[..] == payload).count();
            assert_eq!(
                copies,
                1,
                "survivor {}: {:?} delivered {} times",
                n.endpoint().id(),
                String::from_utf8_lossy(payload),
                copies
            );
        }
    }
    assert_eq!(installed[0], installed[1], "survivors agree on the view");

    // The counters the operator would scrape.
    let m = nodes[0].metrics();
    assert!(m.heartbeats_sent.load(Ordering::Relaxed) >= 1);
    assert!(m.suspicions.load(Ordering::Relaxed) >= 1);
    assert_eq!(m.views_installed.load(Ordering::Relaxed), 1);
    let text = nodes[0].metrics_text();
    for series in [
        "ensemble_cluster_heartbeats_total{dir=\"sent\"}",
        "ensemble_cluster_heartbeats_total{dir=\"recv\"}",
        "ensemble_cluster_suspicions_total",
        "ensemble_cluster_views_installed_total",
        "ensemble_view_change_ns_count 1",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
}

#[test]
fn stale_epoch_heartbeats_are_fenced_without_disturbing_the_view() {
    let control = LoopbackHub::new(31);
    let data = LoopbackHub::new(32);
    let cfg = ClusterConfig::new(3);
    let mut nodes = form_three(&control, &data);
    let hb = cfg.heartbeat_period;

    let victim = nodes.pop().unwrap();
    victim.kill();
    let killed = Instant::now();

    let mut views = vec![Vec::new(), Vec::new()];
    let mut casts = vec![Vec::new(), Vec::new()];
    let mut fenced = Vec::new();
    while views
        .iter()
        .any(|v: &Vec<ViewState>| v.iter().all(|x| x.view_id.ltime == 0))
    {
        assert!(Instant::now() < killed + hb * 10, "new view installs");
        drain(&nodes, &mut views, &mut casts, &mut fenced);
        std::thread::sleep(Duration::from_millis(2));
    }

    // A ghost with the right key but a stale epoch — a member the group
    // already moved past. Its heartbeat must be fenced, not counted.
    let ghost_ep = Endpoint::new(9);
    let mut ghost = control.attach(ghost_ep);
    let env = Envelope {
        src: ghost_ep,
        epoch: 0,
        frame: Frame::Heartbeat { seq: 0 },
    };
    ghost
        .send(&Packet::point(
            ghost_ep,
            nodes[0].endpoint(),
            encode(&env, cfg.key),
        ))
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(2);
    while nodes[0].metrics().fences_sent.load(Ordering::Acquire) == 0 {
        assert!(Instant::now() < deadline, "stale heartbeat is fenced");
        std::thread::sleep(Duration::from_millis(2));
    }
    while !fenced.contains(&(ghost_ep, 0)) {
        assert!(
            Instant::now() < deadline,
            "FencedPeer event names the ghost: {fenced:?}"
        );
        drain(&nodes, &mut views, &mut casts, &mut fenced);
        std::thread::sleep(Duration::from_millis(2));
    }

    // The ghost hears back which epoch the group is in now.
    let deadline = Instant::now() + Duration::from_secs(2);
    let fence = loop {
        assert!(Instant::now() < deadline, "ghost receives the Fence");
        if let Ok(Some(pkt)) = ghost.try_recv() {
            break ensemble_cluster::decode(&pkt.bytes, cfg.key).expect("signed Fence");
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(matches!(fence.frame, Frame::Fence));
    assert!(fence.epoch >= 1, "fence carries the current epoch");

    // And the installed view was not disturbed.
    std::thread::sleep(hb * 3);
    drain(&nodes, &mut views, &mut casts, &mut fenced);
    for v in &views {
        assert_eq!(v.iter().filter(|x| x.view_id.ltime > 0).count(), 1);
    }
    assert_eq!(nodes[0].view().nmembers(), 2);
    assert!(nodes[0]
        .metrics_text()
        .contains("ensemble_cluster_fences_total{dir=\"sent\"} 1"));
}

#[test]
fn cloned_sender_casts_through_view_change_exactly_once() {
    // A service thread (the KV apply plane, a metrics pusher, …) holds a
    // cloned `GroupSender` and keeps casting while the driver thread is
    // busy detecting a death and running the flush. Every cast the
    // sender accepts must come out exactly once on every survivor —
    // whether it landed before the Block, parked during the sync
    // window and replayed, or followed the new view.
    let control = LoopbackHub::with_faults(31, FaultPlan::default());
    let data = LoopbackHub::with_faults(32, FaultPlan::default());
    let mut nodes = form_three(&control, &data);
    let hb = ClusterConfig::new(3).heartbeat_period;

    let victim = nodes.pop().unwrap();
    let sender = nodes[0].sender();

    // The non-driver thread: cast continuously from before the kill
    // until well past the expected view installation.
    let caster = std::thread::spawn(move || {
        let mut sent = Vec::new();
        for i in 0..200u32 {
            let payload = format!("w-{i}").into_bytes();
            if sender.cast(&payload).is_err() {
                break;
            }
            sent.push(payload);
            std::thread::sleep(Duration::from_millis(1));
        }
        sent
    });
    std::thread::sleep(hb);
    victim.kill();
    let killed = Instant::now();

    let mut views = vec![Vec::new(), Vec::new()];
    let mut casts = vec![Vec::new(), Vec::new()];
    let mut fenced = Vec::new();
    let deadline = killed + hb * 20;
    while views
        .iter()
        .any(|v: &Vec<ViewState>| v.iter().all(|x| x.view_id.ltime == 0))
    {
        assert!(
            Instant::now() < deadline,
            "survivors must install the new view under the cast load"
        );
        drain(&nodes, &mut views, &mut casts, &mut fenced);
        std::thread::sleep(Duration::from_millis(2));
    }
    let sent = caster.join().expect("caster thread completes");
    assert!(sent.len() == 200, "the sender accepted every cast");

    // Collect until both survivors have every accepted cast (parked
    // casts replay after the view), then a grace window for strays.
    let deadline = Instant::now() + Duration::from_secs(20);
    while casts.iter().any(|c| c.len() < sent.len()) && Instant::now() < deadline {
        drain(&nodes, &mut views, &mut casts, &mut fenced);
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(hb * 3);
    drain(&nodes, &mut views, &mut casts, &mut fenced);

    for (i, n) in nodes.iter().enumerate() {
        assert_eq!(
            casts[i].len(),
            sent.len(),
            "survivor {}: {} casts delivered, want {}",
            n.endpoint().id(),
            casts[i].len(),
            sent.len()
        );
        // Exactly once AND in submission order: the window must not
        // reorder the service thread's stream either.
        assert_eq!(
            casts[i],
            sent,
            "survivor {} delivery order",
            n.endpoint().id()
        );
    }
}
