//! Control-plane frames: Hello / Welcome / Heartbeat / Fence.
//!
//! Cluster control traffic rides the same [`ensemble_runtime::Transport`]
//! seam as group data, but on a *separate* transport instance (its own
//! hub attachment or UDP socket), so rendezvous and failure detection
//! never contend with the protocol stack's wire format.
//!
//! Every frame is a signed-epoch envelope:
//!
//! ```text
//! magic(u16) version(u8) tag(u8) epoch(u64) src(u64) body… mac(u64)
//! ```
//!
//! The epoch is the sender's current view `ltime`; receivers fence frames
//! from older epochs, which is what keeps a stale member (expelled by a
//! view change it never saw) from disturbing the survivors. The MAC is
//! the same keyed FNV-1a stand-in the `sign` layer uses — it catches
//! corruption and accidental cross-cluster traffic, and marks where a
//! real deployment would put a cryptographic MAC.

use ensemble_util::Endpoint;

/// Frame magic: "EC" (Ensemble Cluster).
pub const MAGIC: u16 = 0x4543;
/// Wire format version (bumped when a frame layout changes; v2 added
/// the stalled flag to merge beacons, v3 the resume hint on Hello).
pub const VERSION: u8 = 3;

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_FENCE: u8 = 4;
const TAG_MERGE_BEACON: u8 = 5;
const TAG_MERGE_REQUEST: u8 = 6;
const TAG_MERGE_GRANT: u8 = 7;

/// The control-plane frame bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Joiner → seed: "I want in." Retried until a Welcome arrives.
    Hello {
        /// Resume hint: the application state version (for the KV
        /// service, the commit index) the joiner already holds from
        /// local recovery. A coordinator whose state is at or below
        /// this version skips shipping the snapshot — the rejoiner
        /// caught up from its own log. `0` = no local state.
        have: u64,
    },
    /// Seed → joiner: the agreed initial membership (rank order) plus an
    /// optional application state snapshot.
    Welcome {
        /// Members in rank order (sorted by endpoint).
        members: Vec<Endpoint>,
        /// Application snapshot shipped to the joiner (may be empty).
        snapshot: Vec<u8>,
    },
    /// Member → member: liveness, carrying a per-sender sequence number.
    Heartbeat {
        /// Monotonic per-sender heartbeat counter.
        seq: u64,
    },
    /// Receiver → stale sender: "the group has moved past your epoch."
    Fence,
    /// Component coordinator → seed & peers: "my component is alive at
    /// this view" — the rediscovery signal after a partition heals. The
    /// envelope epoch carries the advertised view `ltime`.
    MergeBeacon {
        /// The advertising component's live members, rank order.
        members: Vec<Endpoint>,
        /// Whether the advertising component is quorum-stalled. A
        /// component that kept quorum (and may have kept committing) is
        /// senior to any stalled one regardless of epoch, so merged
        /// state always flows *from* the side that made progress.
        stalled: bool,
    },
    /// Junior coordinator → senior coordinator: "absorb my component."
    MergeRequest {
        /// The requesting component's live members, rank order.
        members: Vec<Endpoint>,
    },
    /// Senior coordinator → admitted member: the merged view to install
    /// directly (the admitted side never saw the flush), plus a state
    /// snapshot for reconciliation.
    MergeGrant {
        /// The merged view's `ltime`.
        view_ltime: u64,
        /// The merged membership, rank order.
        members: Vec<Endpoint>,
        /// Application snapshot from the surviving primary (may be empty).
        snapshot: Vec<u8>,
    },
}

/// A decoded control frame with its envelope fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// The sending endpoint.
    pub src: Endpoint,
    /// The sender's view `ltime` when the frame was built.
    pub epoch: u64,
    /// The frame body.
    pub frame: Frame,
}

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed envelope needs.
    Truncated,
    /// Wrong magic — not cluster control traffic.
    BadMagic,
    /// A version this implementation does not speak.
    BadVersion,
    /// An unknown frame tag.
    BadTag,
    /// The MAC did not verify (corruption or wrong key).
    BadMac,
}

/// Keyed FNV-1a over `bytes` — the same stand-in MAC as the `sign` layer.
fn mac(bytes: &[u8], key: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ key;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encodes `env` under `key` into a datagram body.
pub fn encode(env: &Envelope, key: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    let tag = match &env.frame {
        Frame::Hello { .. } => TAG_HELLO,
        Frame::Welcome { .. } => TAG_WELCOME,
        Frame::Heartbeat { .. } => TAG_HEARTBEAT,
        Frame::Fence => TAG_FENCE,
        Frame::MergeBeacon { .. } => TAG_MERGE_BEACON,
        Frame::MergeRequest { .. } => TAG_MERGE_REQUEST,
        Frame::MergeGrant { .. } => TAG_MERGE_GRANT,
    };
    out.push(tag);
    out.extend_from_slice(&env.epoch.to_le_bytes());
    out.extend_from_slice(&env.src.to_wire().to_le_bytes());
    fn put_members(out: &mut Vec<u8>, members: &[Endpoint]) {
        out.extend_from_slice(&(members.len() as u16).to_le_bytes());
        for m in members {
            out.extend_from_slice(&m.to_wire().to_le_bytes());
        }
    }
    match &env.frame {
        Frame::Fence => {}
        Frame::Hello { have } => out.extend_from_slice(&have.to_le_bytes()),
        Frame::Welcome { members, snapshot } => {
            put_members(&mut out, members);
            out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
            out.extend_from_slice(snapshot);
        }
        Frame::Heartbeat { seq } => out.extend_from_slice(&seq.to_le_bytes()),
        Frame::MergeBeacon { members, stalled } => {
            put_members(&mut out, members);
            out.push(*stalled as u8);
        }
        Frame::MergeRequest { members } => {
            put_members(&mut out, members);
        }
        Frame::MergeGrant {
            view_ltime,
            members,
            snapshot,
        } => {
            out.extend_from_slice(&view_ltime.to_le_bytes());
            put_members(&mut out, members);
            out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
            out.extend_from_slice(snapshot);
        }
    }
    let m = mac(&out, key);
    out.extend_from_slice(&m.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
}

/// Decodes and verifies one control frame.
pub fn decode(bytes: &[u8], key: u64) -> Result<Envelope, WireError> {
    if bytes.len() < 8 {
        return Err(WireError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let claimed = u64::from_le_bytes(tail.try_into().unwrap());
    if mac(body, key) != claimed {
        return Err(WireError::BadMac);
    }
    let mut r = Reader { bytes: body, at: 0 };
    if r.u16()? != MAGIC {
        return Err(WireError::BadMagic);
    }
    if r.u8()? != VERSION {
        return Err(WireError::BadVersion);
    }
    let tag = r.u8()?;
    let epoch = r.u64()?;
    let src = Endpoint::from_wire(r.u64()?);
    fn get_members(r: &mut Reader<'_>) -> Result<Vec<Endpoint>, WireError> {
        let n = r.u16()? as usize;
        let mut members = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            members.push(Endpoint::from_wire(r.u64()?));
        }
        Ok(members)
    }
    let frame = match tag {
        TAG_HELLO => Frame::Hello { have: r.u64()? },
        TAG_FENCE => Frame::Fence,
        TAG_HEARTBEAT => Frame::Heartbeat { seq: r.u64()? },
        TAG_WELCOME => {
            let members = get_members(&mut r)?;
            let len = r.u32()? as usize;
            let snapshot = r.take(len)?.to_vec();
            Frame::Welcome { members, snapshot }
        }
        TAG_MERGE_BEACON => {
            let members = get_members(&mut r)?;
            let stalled = r.u8()? != 0;
            Frame::MergeBeacon { members, stalled }
        }
        TAG_MERGE_REQUEST => Frame::MergeRequest {
            members: get_members(&mut r)?,
        },
        TAG_MERGE_GRANT => {
            let view_ltime = r.u64()?;
            let members = get_members(&mut r)?;
            let len = r.u32()? as usize;
            let snapshot = r.take(len)?.to_vec();
            Frame::MergeGrant {
                view_ltime,
                members,
                snapshot,
            }
        }
        _ => return Err(WireError::BadTag),
    };
    Ok(Envelope { src, epoch, frame })
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xFEED_F00D;

    fn roundtrip(frame: Frame, epoch: u64) -> Envelope {
        let env = Envelope {
            src: Endpoint::with_incarnation(3, 1),
            epoch,
            frame,
        };
        let bytes = encode(&env, KEY);
        decode(&bytes, KEY).expect("roundtrip decodes")
    }

    #[test]
    fn every_frame_roundtrips() {
        assert_eq!(
            roundtrip(Frame::Hello { have: 0 }, 0).frame,
            Frame::Hello { have: 0 }
        );
        assert_eq!(
            roundtrip(Frame::Hello { have: 917 }, 0).frame,
            Frame::Hello { have: 917 },
            "the resume hint survives the wire"
        );
        assert_eq!(roundtrip(Frame::Fence, 7).epoch, 7);
        assert_eq!(
            roundtrip(Frame::Heartbeat { seq: 42 }, 2).frame,
            Frame::Heartbeat { seq: 42 }
        );
        let w = Frame::Welcome {
            members: vec![Endpoint::new(0), Endpoint::new(5)],
            snapshot: b"kv-state".to_vec(),
        };
        let env = roundtrip(w.clone(), 0);
        assert_eq!(env.frame, w);
        assert_eq!(env.src, Endpoint::with_incarnation(3, 1));
    }

    #[test]
    fn merge_frames_roundtrip() {
        let members = vec![Endpoint::new(4), Endpoint::with_incarnation(5, 2)];
        let b = Frame::MergeBeacon {
            members: members.clone(),
            stalled: true,
        };
        let env = roundtrip(b.clone(), 3);
        assert_eq!(env.frame, b);
        assert_eq!(env.epoch, 3, "beacon epoch carries the view ltime");
        let rq = Frame::MergeRequest {
            members: members.clone(),
        };
        assert_eq!(roundtrip(rq.clone(), 1).frame, rq);
        let g = Frame::MergeGrant {
            view_ltime: 9,
            members,
            snapshot: b"merged-state".to_vec(),
        };
        assert_eq!(roundtrip(g.clone(), 8).frame, g);
    }

    #[test]
    fn merge_grant_truncation_is_rejected_not_panicked() {
        let env = Envelope {
            src: Endpoint::new(1),
            epoch: 2,
            frame: Frame::MergeGrant {
                view_ltime: 4,
                members: vec![Endpoint::new(0), Endpoint::new(1), Endpoint::new(2)],
                snapshot: vec![7; 64],
            },
        };
        let bytes = encode(&env, KEY);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], KEY).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_key_is_rejected() {
        let env = Envelope {
            src: Endpoint::new(1),
            epoch: 1,
            frame: Frame::Heartbeat { seq: 1 },
        };
        let bytes = encode(&env, KEY);
        assert_eq!(decode(&bytes, KEY + 1), Err(WireError::BadMac));
    }

    #[test]
    fn corruption_is_rejected() {
        let env = Envelope {
            src: Endpoint::new(1),
            epoch: 1,
            frame: Frame::Hello { have: 0 },
        };
        let mut bytes = encode(&env, KEY);
        bytes[5] ^= 0x40;
        assert_eq!(decode(&bytes, KEY), Err(WireError::BadMac));
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let env = Envelope {
            src: Endpoint::new(1),
            epoch: 0,
            frame: Frame::Welcome {
                members: vec![Endpoint::new(0), Endpoint::new(1)],
                snapshot: vec![9; 100],
            },
        };
        let bytes = encode(&env, KEY);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], KEY).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn foreign_traffic_is_not_cluster_control() {
        // A well-MACed frame with the wrong magic is still refused.
        let mut raw = Vec::new();
        raw.extend_from_slice(&0xBEEFu16.to_le_bytes());
        raw.push(VERSION);
        raw.push(1);
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&0u64.to_le_bytes());
        let m = super::mac(&raw, KEY);
        raw.extend_from_slice(&m.to_le_bytes());
        assert_eq!(decode(&raw, KEY), Err(WireError::BadMagic));
    }
}
