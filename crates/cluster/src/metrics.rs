//! Cluster-level counters and their Prometheus exposition.

use ensemble_obs::Registry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one cluster member (driver thread writes, any
/// thread reads).
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Control heartbeats sent (one per peer per period).
    pub heartbeats_sent: AtomicU64,
    /// Control heartbeats accepted (current epoch, MAC verified).
    pub heartbeats_received: AtomicU64,
    /// Peers the detector reported suspected (once each per view).
    pub suspicions: AtomicU64,
    /// Views installed by the stack after formation.
    pub views_installed: AtomicU64,
    /// State snapshots shipped (seed) or installed (joiner).
    pub state_transfers: AtomicU64,
    /// Fence frames sent to stale-epoch peers.
    pub fences_sent: AtomicU64,
    /// Fence frames received (this member is behind the group).
    pub fences_received: AtomicU64,
    /// Control frames dropped for bad magic/version/MAC.
    pub bad_frames: AtomicU64,
    /// Merge beacons sent while rediscovering absent members.
    pub merge_beacons: AtomicU64,
    /// Merge requests sent (junior component asking to be absorbed).
    pub merge_requests: AtomicU64,
    /// Merge grants sent to admitted members.
    pub merge_grants_sent: AtomicU64,
    /// Merge grants accepted (this member installed a granted view).
    pub merge_grants_installed: AtomicU64,
    /// Times this member stalled its group for lack of quorum.
    pub minority_stalls: AtomicU64,
    /// Unknown endpoints admitted through the rejoin path.
    pub rejoins: AtomicU64,
    /// Merge-grant snapshots skipped because the rejoiner's resume hint
    /// showed it already recovered the coordinator's state version from
    /// its own log (state-transfer fast path).
    pub snapshots_skipped: AtomicU64,
}

impl ClusterMetrics {
    /// Renders the `ensemble_cluster_*` series in Prometheus text
    /// exposition format.
    pub fn render(&self) -> String {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut reg = Registry::new();
        reg.set_int(
            "ensemble_cluster_heartbeats_total",
            &[("dir", "sent")],
            ld(&self.heartbeats_sent),
        );
        reg.set_int(
            "ensemble_cluster_heartbeats_total",
            &[("dir", "recv")],
            ld(&self.heartbeats_received),
        );
        reg.set_int(
            "ensemble_cluster_suspicions_total",
            &[],
            ld(&self.suspicions),
        );
        reg.set_int(
            "ensemble_cluster_views_installed_total",
            &[],
            ld(&self.views_installed),
        );
        reg.set_int(
            "ensemble_cluster_state_transfers_total",
            &[],
            ld(&self.state_transfers),
        );
        reg.set_int(
            "ensemble_cluster_fences_total",
            &[("dir", "sent")],
            ld(&self.fences_sent),
        );
        reg.set_int(
            "ensemble_cluster_fences_total",
            &[("dir", "recv")],
            ld(&self.fences_received),
        );
        reg.set_int(
            "ensemble_cluster_bad_frames_total",
            &[],
            ld(&self.bad_frames),
        );
        reg.set_int(
            "ensemble_cluster_merge_beacons_total",
            &[],
            ld(&self.merge_beacons),
        );
        reg.set_int(
            "ensemble_cluster_merge_requests_total",
            &[],
            ld(&self.merge_requests),
        );
        reg.set_int(
            "ensemble_cluster_merge_grants_total",
            &[("dir", "sent")],
            ld(&self.merge_grants_sent),
        );
        reg.set_int(
            "ensemble_cluster_merge_grants_total",
            &[("dir", "installed")],
            ld(&self.merge_grants_installed),
        );
        reg.set_int(
            "ensemble_cluster_minority_stalls_total",
            &[],
            ld(&self.minority_stalls),
        );
        reg.set_int("ensemble_cluster_rejoins_total", &[], ld(&self.rejoins));
        reg.set_int(
            "ensemble_cluster_snapshot_skips_total",
            &[],
            ld(&self.snapshots_skipped),
        );
        reg.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_every_cluster_series() {
        let m = ClusterMetrics::default();
        m.heartbeats_sent.store(12, Ordering::Relaxed);
        m.suspicions.store(1, Ordering::Relaxed);
        let text = m.render();
        for series in [
            "ensemble_cluster_heartbeats_total{dir=\"sent\"} 12",
            "ensemble_cluster_heartbeats_total{dir=\"recv\"} 0",
            "ensemble_cluster_suspicions_total 1",
            "ensemble_cluster_views_installed_total 0",
            "ensemble_cluster_state_transfers_total 0",
            "ensemble_cluster_fences_total{dir=\"sent\"}",
            "ensemble_cluster_fences_total{dir=\"recv\"}",
            "ensemble_cluster_bad_frames_total",
            "ensemble_cluster_merge_beacons_total",
            "ensemble_cluster_merge_requests_total",
            "ensemble_cluster_merge_grants_total{dir=\"sent\"}",
            "ensemble_cluster_merge_grants_total{dir=\"installed\"}",
            "ensemble_cluster_minority_stalls_total",
            "ensemble_cluster_rejoins_total",
            "ensemble_cluster_snapshot_skips_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }
}
