//! Rendezvous: bootstrap a shared member map from one seed address.
//!
//! Joiners send signed `Hello` frames to the seed until a `Welcome`
//! arrives; the seed collects Hellos until the expected membership is
//! present, then Welcomes everyone with the agreed member list (sorted
//! by endpoint — rank 0, the initial coordinator, is the lowest) plus an
//! optional application snapshot ([`crate::StateProvider`]).
//!
//! Both sides are polled state machines with no thread or clock of their
//! own: [`crate::ClusterNode::form`] drives them against real transports
//! and wall-clock deadlines, and unit tests interleave `poll` calls on
//! one thread for determinism. All frames are idempotent — a duplicated
//! Hello re-registers the same joiner, a re-sent Welcome carries the
//! same membership — so the exchange survives the loopback hub's
//! duplicate/reorder faults and best-effort UDP.

use crate::wire::{decode, encode, Envelope, Frame};
use ensemble_runtime::Transport;
use ensemble_transport::Packet;
use ensemble_util::{DetRng, Endpoint, Time};
use std::collections::BTreeSet;

/// What a joiner learned once admitted: the agreed membership, the
/// snapshot shipped by the seed (or surviving primary), and the view
/// `ltime` the group runs in — 0 for an initial Welcome, the merged
/// view's ltime for a [`Frame::MergeGrant`] admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Joined {
    /// Members in rank order (sorted by endpoint).
    pub members: Vec<Endpoint>,
    /// Application snapshot (may be empty).
    pub snapshot: Vec<u8>,
    /// The view `ltime` to start the group stack and epoch at.
    pub view_ltime: u64,
}

/// The seed's half of rendezvous: collect Hellos, then Welcome everyone.
pub struct SeedRendezvous {
    me: Endpoint,
    expected: usize,
    key: u64,
    snapshot: Vec<u8>,
    joiners: BTreeSet<Endpoint>,
    /// Frames that failed magic/version/MAC checks.
    pub bad_frames: u64,
}

impl SeedRendezvous {
    /// A seed expecting `expected` total members (including itself),
    /// shipping `snapshot` to each joiner.
    pub fn new(me: Endpoint, expected: usize, key: u64, snapshot: Vec<u8>) -> SeedRendezvous {
        SeedRendezvous {
            me,
            expected,
            key,
            snapshot,
            joiners: BTreeSet::new(),
            bad_frames: 0,
        }
    }

    /// Drains control ingress; once every expected joiner has said
    /// Hello, Welcomes them all and returns the member list in rank
    /// order. Keep polling after `Some` is returned only via
    /// [`SeedRendezvous::rewelcome`] (the driver handles late Hellos).
    pub fn poll(&mut self, control: &mut dyn Transport) -> Option<Vec<Endpoint>> {
        while let Ok(Some(pkt)) = control.try_recv() {
            match decode(&pkt.bytes, self.key) {
                Ok(env) if matches!(env.frame, Frame::Hello { .. }) => {
                    self.joiners.insert(env.src);
                }
                Ok(_) => {}
                Err(_) => self.bad_frames += 1,
            }
        }
        if self.joiners.len() + 1 < self.expected {
            return None;
        }
        let mut members: Vec<Endpoint> = self.joiners.iter().copied().collect();
        members.push(self.me);
        members.sort();
        for &j in &self.joiners {
            self.welcome(control, j, &members);
        }
        Some(members)
    }

    /// Re-sends the Welcome to one joiner (a lost Welcome shows up as a
    /// repeated Hello after formation).
    pub fn rewelcome(&self, control: &mut dyn Transport, to: Endpoint, members: &[Endpoint]) {
        self.welcome(control, to, members);
    }

    fn welcome(&self, control: &mut dyn Transport, to: Endpoint, members: &[Endpoint]) {
        let env = Envelope {
            src: self.me,
            epoch: 0,
            frame: Frame::Welcome {
                members: members.to_vec(),
                snapshot: self.snapshot.clone(),
            },
        };
        let _ = control.send(&Packet::point(self.me, to, encode(&env, self.key)));
    }
}

/// A joiner's half of rendezvous: Hello until Welcomed (or merge-granted
/// into a running group, when rejoining after a fence or partition).
///
/// Retries back off exponentially from `base_ns` to `max_ns` with
/// deterministic jitter derived from the joiner's identity and the MAC
/// key — two runs of the same join produce the same Hello schedule, and
/// simultaneous joiners do not synchronize their retries.
pub struct JoinerRendezvous {
    me: Endpoint,
    seed: Endpoint,
    key: u64,
    max_ns: u64,
    cur_ns: u64,
    next_hello: Time,
    jitter: DetRng,
    /// Resume hint carried in every Hello: the application state
    /// version this joiner already recovered locally (0 = none).
    pub have: u64,
    /// Hello frames sent so far (surfaced by `JoinFailed`).
    pub attempts: u64,
    /// Frames that failed magic/version/MAC checks.
    pub bad_frames: u64,
}

impl JoinerRendezvous {
    /// A joiner that re-Hellos the seed starting every `base_ns`,
    /// doubling (with jitter) up to `max_ns`.
    pub fn new(
        me: Endpoint,
        seed: Endpoint,
        key: u64,
        base_ns: u64,
        max_ns: u64,
    ) -> JoinerRendezvous {
        let base_ns = base_ns.max(1);
        JoinerRendezvous {
            me,
            seed,
            key,
            max_ns: max_ns.max(base_ns),
            cur_ns: base_ns,
            next_hello: Time(0),
            jitter: DetRng::new(me.to_wire() ^ seed.to_wire().rotate_left(17) ^ key),
            have: 0,
            attempts: 0,
            bad_frames: 0,
        }
    }

    /// Sets the resume hint carried in every Hello (see
    /// [`Frame::Hello`]).
    pub fn with_resume_hint(mut self, have: u64) -> JoinerRendezvous {
        self.have = have;
        self
    }

    /// The retry interval after the next Hello: doubled, capped, and
    /// jittered by ±25% so concurrent joiners spread out.
    fn next_interval(&mut self) -> u64 {
        self.cur_ns = self.cur_ns.saturating_mul(2).min(self.max_ns);
        let span = (self.cur_ns / 4).max(1);
        self.cur_ns - span / 2 + self.jitter.below(span)
    }

    /// Sends a Hello when one is due and polls for admission: an initial
    /// `Welcome`, or a `MergeGrant` naming this endpoint (rejoin into a
    /// running group after a fence or heal).
    pub fn poll(&mut self, control: &mut dyn Transport, now: Time) -> Option<Joined> {
        if now >= self.next_hello {
            let env = Envelope {
                src: self.me,
                epoch: 0,
                frame: Frame::Hello { have: self.have },
            };
            let _ = control.send(&Packet::point(self.me, self.seed, encode(&env, self.key)));
            self.attempts += 1;
            let interval = self.next_interval();
            self.next_hello = Time(now.0.saturating_add(interval));
        }
        while let Ok(Some(pkt)) = control.try_recv() {
            match decode(&pkt.bytes, self.key) {
                Ok(Envelope {
                    frame: Frame::Welcome { members, snapshot },
                    ..
                }) if members.contains(&self.me) => {
                    return Some(Joined {
                        members,
                        snapshot,
                        view_ltime: 0,
                    })
                }
                Ok(Envelope {
                    frame:
                        Frame::MergeGrant {
                            view_ltime,
                            members,
                            snapshot,
                        },
                    ..
                }) if members.contains(&self.me) => {
                    return Some(Joined {
                        members,
                        snapshot,
                        view_ltime,
                    })
                }
                Ok(_) => {}
                Err(_) => self.bad_frames += 1,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_runtime::{FaultPlan, LoopbackHub};

    const KEY: u64 = 0xA11CE;

    /// Three nodes rendezvous deterministically on one thread by
    /// interleaved polling — no real clock, no threads.
    fn converge(hub: &LoopbackHub) -> (Vec<Endpoint>, Vec<u8>, Vec<u8>) {
        let (e0, e1, e2) = (Endpoint::new(0), Endpoint::new(1), Endpoint::new(2));
        let mut seed_t = hub.attach(e0);
        let mut j1_t = hub.attach(e1);
        let mut j2_t = hub.attach(e2);
        let mut seed = SeedRendezvous::new(e0, 3, KEY, b"snapshot!".to_vec());
        let mut j1 = JoinerRendezvous::new(e1, e0, KEY, 1_000, 8_000);
        let mut j2 = JoinerRendezvous::new(e2, e0, KEY, 1_000, 8_000);
        let (mut m0, mut r1, mut r2) = (None, None, None);
        for step in 0..200u64 {
            let now = Time(step * 500);
            if r1.is_none() {
                r1 = j1.poll(&mut j1_t, now);
            }
            if r2.is_none() {
                r2 = j2.poll(&mut j2_t, now);
            }
            if m0.is_none() {
                m0 = seed.poll(&mut seed_t);
            }
            if m0.is_some() && r1.is_some() && r2.is_some() {
                break;
            }
        }
        let m0 = m0.expect("seed forms");
        let j1 = r1.expect("joiner 1 welcomed");
        let j2 = r2.expect("joiner 2 welcomed");
        assert_eq!(m0, j1.members);
        assert_eq!(m0, j2.members);
        assert_eq!(j1.view_ltime, 0, "a Welcome starts at view ltime 0");
        (m0, j1.snapshot, j2.snapshot)
    }

    #[test]
    fn three_nodes_agree_on_sorted_membership_and_snapshot() {
        let hub = LoopbackHub::new(11);
        let (members, s1, s2) = converge(&hub);
        assert_eq!(
            members,
            vec![Endpoint::new(0), Endpoint::new(1), Endpoint::new(2)],
            "rank order is sorted by endpoint; rank 0 is the coordinator"
        );
        assert_eq!(s1, b"snapshot!");
        assert_eq!(s2, b"snapshot!");
    }

    #[test]
    fn rendezvous_survives_duplication_and_reordering() {
        let hub = LoopbackHub::with_faults(7, FaultPlan::lossy(0.0, 0.3, 0.3));
        let (members, s1, _) = converge(&hub);
        assert_eq!(members.len(), 3);
        assert_eq!(s1, b"snapshot!");
    }

    #[test]
    fn hello_retries_back_off_capped_and_deterministic() {
        let (e0, e1) = (Endpoint::new(0), Endpoint::new(1));
        let schedule = |_: ()| {
            let hub = LoopbackHub::new(5);
            let mut t = hub.attach(e1);
            let mut j = JoinerRendezvous::new(e1, e0, KEY, 1_000, 6_000);
            let mut sends = Vec::new();
            let mut now = 0u64;
            // Never welcomed: walk virtual time and record each Hello.
            while sends.len() < 8 {
                let before = j.attempts;
                assert!(j.poll(&mut t, Time(now)).is_none());
                if j.attempts > before {
                    sends.push(now);
                }
                now += 100;
            }
            (sends, j.attempts)
        };
        let (a, attempts_a) = schedule(());
        let (b, attempts_b) = schedule(());
        assert_eq!(a, b, "same identity + key ⇒ same Hello schedule");
        assert_eq!(attempts_a, attempts_b);
        assert_eq!(attempts_a, 8);
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).take(2).all(|w| w[1] > w[0]),
            "early gaps grow: {gaps:?}"
        );
        // Capped (with ±25% jitter) at max_ns; never collapses to zero.
        for g in &gaps {
            assert!(*g <= 6_000 + 6_000 / 4 + 100, "gap {g} exceeds the cap");
            assert!(*g >= 1_000 / 2, "gap {g} under half the base");
        }
        // A different joiner jitters differently.
        let hub = LoopbackHub::new(5);
        let mut t2 = hub.attach(Endpoint::new(2));
        let mut j2 = JoinerRendezvous::new(Endpoint::new(2), e0, KEY, 1_000, 6_000);
        let mut sends2 = Vec::new();
        let mut now = 0u64;
        while sends2.len() < 8 {
            let before = j2.attempts;
            assert!(j2.poll(&mut t2, Time(now)).is_none());
            if j2.attempts > before {
                sends2.push(now);
            }
            now += 100;
        }
        assert_ne!(a, sends2, "distinct joiners do not synchronize");
    }

    #[test]
    fn merge_grant_naming_the_joiner_is_accepted_with_view_ltime() {
        let hub = LoopbackHub::new(6);
        let (coord, me) = (Endpoint::new(0), Endpoint::new(9));
        let mut coord_t = hub.attach(coord);
        let mut me_t = hub.attach(me);
        let mut j = JoinerRendezvous::new(me, coord, KEY, 1_000, 4_000);
        assert!(j.poll(&mut me_t, Time(0)).is_none());
        // A grant for somebody else is ignored…
        let stranger = Envelope {
            src: coord,
            epoch: 5,
            frame: Frame::MergeGrant {
                view_ltime: 5,
                members: vec![coord, Endpoint::new(7)],
                snapshot: Vec::new(),
            },
        };
        coord_t
            .send(&Packet::point(coord, me, encode(&stranger, KEY)))
            .unwrap();
        assert!(j.poll(&mut me_t, Time(10)).is_none());
        // …a grant naming this joiner admits it at the granted ltime.
        let granted = Envelope {
            src: coord,
            epoch: 6,
            frame: Frame::MergeGrant {
                view_ltime: 6,
                members: vec![coord, me],
                snapshot: b"rejoin-state".to_vec(),
            },
        };
        coord_t
            .send(&Packet::point(coord, me, encode(&granted, KEY)))
            .unwrap();
        let joined = j.poll(&mut me_t, Time(20)).expect("grant admits");
        assert_eq!(joined.members, vec![coord, me]);
        assert_eq!(joined.view_ltime, 6);
        assert_eq!(joined.snapshot, b"rejoin-state");
    }

    #[test]
    fn unsigned_traffic_is_counted_and_ignored() {
        let hub = LoopbackHub::new(3);
        let (e0, e1) = (Endpoint::new(0), Endpoint::new(1));
        let mut seed_t = hub.attach(e0);
        let mut rogue = hub.attach(e1);
        let mut seed = SeedRendezvous::new(e0, 2, KEY, Vec::new());
        // A Hello signed with the wrong key never registers.
        let env = Envelope {
            src: e1,
            epoch: 0,
            frame: Frame::Hello { have: 0 },
        };
        rogue
            .send(&Packet::point(e1, e0, encode(&env, KEY ^ 1)))
            .unwrap();
        assert!(seed.poll(&mut seed_t).is_none());
        assert_eq!(seed.bad_frames, 1);
    }
}
