//! Rendezvous: bootstrap a shared member map from one seed address.
//!
//! Joiners send signed `Hello` frames to the seed until a `Welcome`
//! arrives; the seed collects Hellos until the expected membership is
//! present, then Welcomes everyone with the agreed member list (sorted
//! by endpoint — rank 0, the initial coordinator, is the lowest) plus an
//! optional application snapshot ([`crate::StateProvider`]).
//!
//! Both sides are polled state machines with no thread or clock of their
//! own: [`crate::ClusterNode::form`] drives them against real transports
//! and wall-clock deadlines, and unit tests interleave `poll` calls on
//! one thread for determinism. All frames are idempotent — a duplicated
//! Hello re-registers the same joiner, a re-sent Welcome carries the
//! same membership — so the exchange survives the loopback hub's
//! duplicate/reorder faults and best-effort UDP.

use crate::wire::{decode, encode, Envelope, Frame};
use ensemble_runtime::Transport;
use ensemble_transport::Packet;
use ensemble_util::{Endpoint, Time};
use std::collections::BTreeSet;

/// The seed's half of rendezvous: collect Hellos, then Welcome everyone.
pub struct SeedRendezvous {
    me: Endpoint,
    expected: usize,
    key: u64,
    snapshot: Vec<u8>,
    joiners: BTreeSet<Endpoint>,
    /// Frames that failed magic/version/MAC checks.
    pub bad_frames: u64,
}

impl SeedRendezvous {
    /// A seed expecting `expected` total members (including itself),
    /// shipping `snapshot` to each joiner.
    pub fn new(me: Endpoint, expected: usize, key: u64, snapshot: Vec<u8>) -> SeedRendezvous {
        SeedRendezvous {
            me,
            expected,
            key,
            snapshot,
            joiners: BTreeSet::new(),
            bad_frames: 0,
        }
    }

    /// Drains control ingress; once every expected joiner has said
    /// Hello, Welcomes them all and returns the member list in rank
    /// order. Keep polling after `Some` is returned only via
    /// [`SeedRendezvous::rewelcome`] (the driver handles late Hellos).
    pub fn poll(&mut self, control: &mut dyn Transport) -> Option<Vec<Endpoint>> {
        while let Ok(Some(pkt)) = control.try_recv() {
            match decode(&pkt.bytes, self.key) {
                Ok(env) if matches!(env.frame, Frame::Hello) => {
                    self.joiners.insert(env.src);
                }
                Ok(_) => {}
                Err(_) => self.bad_frames += 1,
            }
        }
        if self.joiners.len() + 1 < self.expected {
            return None;
        }
        let mut members: Vec<Endpoint> = self.joiners.iter().copied().collect();
        members.push(self.me);
        members.sort();
        for &j in &self.joiners {
            self.welcome(control, j, &members);
        }
        Some(members)
    }

    /// Re-sends the Welcome to one joiner (a lost Welcome shows up as a
    /// repeated Hello after formation).
    pub fn rewelcome(&self, control: &mut dyn Transport, to: Endpoint, members: &[Endpoint]) {
        self.welcome(control, to, members);
    }

    fn welcome(&self, control: &mut dyn Transport, to: Endpoint, members: &[Endpoint]) {
        let env = Envelope {
            src: self.me,
            epoch: 0,
            frame: Frame::Welcome {
                members: members.to_vec(),
                snapshot: self.snapshot.clone(),
            },
        };
        let _ = control.send(&Packet::point(self.me, to, encode(&env, self.key)));
    }
}

/// A joiner's half of rendezvous: Hello until Welcomed.
pub struct JoinerRendezvous {
    me: Endpoint,
    seed: Endpoint,
    key: u64,
    retry_ns: u64,
    next_hello: Time,
    /// Frames that failed magic/version/MAC checks.
    pub bad_frames: u64,
}

impl JoinerRendezvous {
    /// A joiner that re-Hellos the seed every `retry_ns`.
    pub fn new(me: Endpoint, seed: Endpoint, key: u64, retry_ns: u64) -> JoinerRendezvous {
        JoinerRendezvous {
            me,
            seed,
            key,
            retry_ns,
            next_hello: Time(0),
            bad_frames: 0,
        }
    }

    /// Sends a Hello when one is due and polls for the Welcome. Returns
    /// the agreed membership and the seed's snapshot once Welcomed.
    pub fn poll(
        &mut self,
        control: &mut dyn Transport,
        now: Time,
    ) -> Option<(Vec<Endpoint>, Vec<u8>)> {
        if now >= self.next_hello {
            let env = Envelope {
                src: self.me,
                epoch: 0,
                frame: Frame::Hello,
            };
            let _ = control.send(&Packet::point(self.me, self.seed, encode(&env, self.key)));
            self.next_hello = Time(now.0.saturating_add(self.retry_ns));
        }
        while let Ok(Some(pkt)) = control.try_recv() {
            match decode(&pkt.bytes, self.key) {
                Ok(Envelope {
                    frame: Frame::Welcome { members, snapshot },
                    ..
                }) if members.contains(&self.me) => return Some((members, snapshot)),
                Ok(_) => {}
                Err(_) => self.bad_frames += 1,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_runtime::{FaultPlan, LoopbackHub};

    const KEY: u64 = 0xA11CE;

    /// Three nodes rendezvous deterministically on one thread by
    /// interleaved polling — no real clock, no threads.
    fn converge(hub: &LoopbackHub) -> (Vec<Endpoint>, Vec<u8>, Vec<u8>) {
        let (e0, e1, e2) = (Endpoint::new(0), Endpoint::new(1), Endpoint::new(2));
        let mut seed_t = hub.attach(e0);
        let mut j1_t = hub.attach(e1);
        let mut j2_t = hub.attach(e2);
        let mut seed = SeedRendezvous::new(e0, 3, KEY, b"snapshot!".to_vec());
        let mut j1 = JoinerRendezvous::new(e1, e0, KEY, 1_000);
        let mut j2 = JoinerRendezvous::new(e2, e0, KEY, 1_000);
        let (mut m0, mut r1, mut r2) = (None, None, None);
        for step in 0..200u64 {
            let now = Time(step * 500);
            if r1.is_none() {
                r1 = j1.poll(&mut j1_t, now);
            }
            if r2.is_none() {
                r2 = j2.poll(&mut j2_t, now);
            }
            if m0.is_none() {
                m0 = seed.poll(&mut seed_t);
            }
            if m0.is_some() && r1.is_some() && r2.is_some() {
                break;
            }
        }
        let m0 = m0.expect("seed forms");
        let (m1, s1) = r1.expect("joiner 1 welcomed");
        let (m2, s2) = r2.expect("joiner 2 welcomed");
        assert_eq!(m0, m1);
        assert_eq!(m0, m2);
        (m0, s1, s2)
    }

    #[test]
    fn three_nodes_agree_on_sorted_membership_and_snapshot() {
        let hub = LoopbackHub::new(11);
        let (members, s1, s2) = converge(&hub);
        assert_eq!(
            members,
            vec![Endpoint::new(0), Endpoint::new(1), Endpoint::new(2)],
            "rank order is sorted by endpoint; rank 0 is the coordinator"
        );
        assert_eq!(s1, b"snapshot!");
        assert_eq!(s2, b"snapshot!");
    }

    #[test]
    fn rendezvous_survives_duplication_and_reordering() {
        let hub = LoopbackHub::with_faults(7, FaultPlan::lossy(0.0, 0.3, 0.3));
        let (members, s1, _) = converge(&hub);
        assert_eq!(members.len(), 3);
        assert_eq!(s1, b"snapshot!");
    }

    #[test]
    fn unsigned_traffic_is_counted_and_ignored() {
        let hub = LoopbackHub::new(3);
        let (e0, e1) = (Endpoint::new(0), Endpoint::new(1));
        let mut seed_t = hub.attach(e0);
        let mut rogue = hub.attach(e1);
        let mut seed = SeedRendezvous::new(e0, 2, KEY, Vec::new());
        // A Hello signed with the wrong key never registers.
        let env = Envelope {
            src: e1,
            epoch: 0,
            frame: Frame::Hello,
        };
        rogue
            .send(&Packet::point(e1, e0, encode(&env, KEY ^ 1)))
            .unwrap();
        assert!(seed.poll(&mut seed_t).is_none());
        assert_eq!(seed.bad_frames, 1);
    }
}
