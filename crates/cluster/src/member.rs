//! [`ClusterNode`]: one self-assembling group member.
//!
//! `form` runs rendezvous synchronously on the caller's thread, joins
//! the agreed view on a private [`Node`], then hands the control
//! transport and the group handle to a *driver* thread that:
//!
//! * heartbeats every peer each period and sweeps the [`Detector`], both
//!   off the runtime [`ensemble_runtime::TimerWheel`];
//! * feeds real `Suspect` events into the stack (suspect/elect/gmp run
//!   the actual view change — the driver never invents views);
//! * fences stale-epoch frames, so an expelled member cannot disturb the
//!   survivors and learns it has been passed by;
//! * drains stack deliveries into an unbounded [`ClusterEvent`] channel
//!   (the application reads at its own pace without stalling a shard).

use crate::config::{ClusterConfig, ClusterError, QuorumPolicy};
use crate::detector::Detector;
use crate::metrics::ClusterMetrics;
use crate::rendezvous::{JoinerRendezvous, SeedRendezvous};
use crate::wire::{decode, encode, Envelope, Frame};
use ensemble_event::ViewState;
use ensemble_obs::{now_ns, CcpFailure, Direction, Event, EventKind, Tag};
use ensemble_runtime::{Delivery, GroupHandle, GroupSender, Node, NodeObs, Transport, Waker};
use ensemble_transport::Packet;
use ensemble_util::{Endpoint, GroupId, Rank, Time, ViewId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Supplies the application snapshot shipped to joiners in the Welcome.
///
/// Implemented for any `FnMut() -> Vec<u8> + Send` closure.
pub trait StateProvider: Send {
    /// Serializes the current application state.
    fn snapshot(&mut self) -> Vec<u8>;

    /// A monotonic version of the state (for the KV service, the commit
    /// index). Joiners advertise the version they recovered locally in
    /// their Hello; a coordinator whose state is at or below that
    /// version skips shipping the snapshot — the rejoiner caught up
    /// from its own log. The default (`0`) disables the fast path.
    fn version(&mut self) -> u64 {
        0
    }
}

impl<F: FnMut() -> Vec<u8> + Send> StateProvider for F {
    fn snapshot(&mut self) -> Vec<u8> {
        self()
    }
}

/// What a cluster member reports to its application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterEvent {
    /// Rendezvous completed; the group stack runs in this view.
    Formed(ViewState),
    /// The seed's state snapshot (joiners only, before `Formed`).
    Snapshot(Vec<u8>),
    /// A delivery from the group stack (casts, sends, new views, …).
    Delivery(Delivery),
    /// We told a stale-epoch peer the group has moved on.
    FencedPeer {
        /// The stale member.
        peer: Endpoint,
        /// The epoch it was still in.
        epoch: u64,
    },
    /// A newer-epoch member fenced *us*: we were expelled by a view
    /// change we never saw. The driver stops heartbeating; rejoin with
    /// a fresh incarnation ([`Endpoint::reincarnate`]) via a new
    /// [`ClusterNode::form`] — the group admits it through the merge
    /// path and ships a state snapshot.
    FencedBy {
        /// The member that fenced us.
        peer: Endpoint,
        /// Its (newer) epoch.
        epoch: u64,
    },
    /// This component lost quorum (a partition left it in the minority):
    /// the group stalled — application egress parks, ingress is
    /// quarantined — until the partition heals and a merge readmits it.
    MinorityPartition {
        /// Live (unsuspected) members still reachable in this component.
        live: usize,
        /// Members needed for quorum (majority of the last primary view).
        needed: usize,
    },
}

/// One member of a self-assembling cluster.
///
/// See the crate docs for the protocol; see `examples/cluster_demo.rs`
/// for the three-node lifecycle.
pub struct ClusterNode {
    ep: Endpoint,
    node: Node,
    sender: GroupSender,
    events: Receiver<ClusterEvent>,
    metrics: Arc<ClusterMetrics>,
    view: Arc<Mutex<ViewState>>,
    stop: Arc<AtomicBool>,
    serving: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
}

impl ClusterNode {
    /// Rendezvous via `seed` and start this member.
    ///
    /// Blocks until the initial membership forms (or `cfg.form_timeout`
    /// passes). `control` carries the cluster's Hello/Welcome/Heartbeat
    /// frames; `data` carries the group stack's traffic — two transport
    /// instances for the same endpoint identity. When `ep == seed`,
    /// this node *is* the seed and `state` (if any) supplies the
    /// snapshot shipped to every joiner.
    pub fn form(
        ep: Endpoint,
        seed: Endpoint,
        cfg: ClusterConfig,
        mut control: Box<dyn Transport>,
        data: Box<dyn Transport>,
        state: Option<Box<dyn StateProvider>>,
    ) -> Result<ClusterNode, ClusterError> {
        cfg.validate()?;
        let metrics = Arc::new(ClusterMetrics::default());
        let deadline = std::time::Instant::now() + cfg.form_timeout;
        let poll_pause = (cfg.hello_retry / 4).max(std::time::Duration::from_micros(200));

        // --- Rendezvous (caller's thread, blocking) -------------------
        let am_seed = ep == seed;
        let mut state = state;
        let mut snapshot_out = Vec::new();
        let mut welcome_cache: Option<SeedRendezvous> = None;
        let (members, snapshot_in, start_ltime) = if am_seed {
            // Snapshot by borrow: the provider is retained and handed to
            // the driver, which re-snapshots for merge grants after heals.
            let snap = state.as_mut().map(|s| s.snapshot()).unwrap_or_default();
            let mut rdv = SeedRendezvous::new(ep, cfg.expected, cfg.key, snap.clone());
            let members = loop {
                if let Some(m) = rdv.poll(control.as_mut()) {
                    break m;
                }
                if std::time::Instant::now() >= deadline {
                    metrics
                        .bad_frames
                        .fetch_add(rdv.bad_frames, Ordering::Relaxed);
                    return Err(ClusterError::Timeout);
                }
                std::thread::sleep(poll_pause);
            };
            metrics
                .bad_frames
                .fetch_add(rdv.bad_frames, Ordering::Relaxed);
            if !snap.is_empty() {
                metrics
                    .state_transfers
                    .fetch_add((members.len() - 1) as u64, Ordering::Relaxed);
            }
            snapshot_out = snap;
            welcome_cache = Some(rdv);
            (members, Vec::new(), 0)
        } else {
            // Advertise the locally recovered state version so the
            // coordinator can skip the snapshot if we're already caught
            // up (crash-recovery rejoin fast path).
            let have = state.as_mut().map(|s| s.version()).unwrap_or(0);
            let mut rdv = JoinerRendezvous::new(
                ep,
                seed,
                cfg.key,
                cfg.hello_retry.as_nanos() as u64,
                cfg.hello_retry_max.as_nanos() as u64,
            )
            .with_resume_hint(have);
            let join_deadline = std::time::Instant::now() + cfg.join_deadline;
            let got = loop {
                if let Some(got) = rdv.poll(control.as_mut(), Time(now_ns())) {
                    break got;
                }
                if std::time::Instant::now() >= join_deadline {
                    metrics
                        .bad_frames
                        .fetch_add(rdv.bad_frames, Ordering::Relaxed);
                    return Err(ClusterError::JoinFailed {
                        attempts: rdv.attempts,
                    });
                }
                std::thread::sleep(poll_pause);
            };
            metrics
                .bad_frames
                .fetch_add(rdv.bad_frames, Ordering::Relaxed);
            (got.members, got.snapshot, got.view_ltime)
        };

        // --- Join the agreed view on a private runtime node -----------
        let rank = members
            .iter()
            .position(|&m| m == ep)
            .map(|i| Rank(i as u16))
            .expect("rendezvous produced a membership excluding this node");
        let vs = ViewState {
            group: GroupId(1),
            view_id: ViewId {
                ltime: start_ltime,
                coord: members[0],
            },
            members: members.clone(),
            rank,
        };
        let mut node = Node::new(cfg.runtime.clone());
        let handle: GroupHandle = node
            .join(cfg.stack, vs.clone(), cfg.engine, cfg.layers.clone(), data)
            .map_err(|e| ClusterError::Runtime(e.to_string()))?;
        let sender = handle.sender();

        // --- Start the driver -----------------------------------------
        let obs = node.obs_arc();
        let obs_shard = node.aux_obs_shard();
        let tag = obs.recorder.register("cluster");
        let (events_tx, events_rx) = channel();
        if !am_seed && !snapshot_in.is_empty() {
            metrics.state_transfers.fetch_add(1, Ordering::Relaxed);
            record(
                &obs,
                obs_shard,
                tag,
                ep,
                EventKind::StateTransfer,
                Direction::Up,
                snapshot_in.len() as u64,
            );
            let _ = events_tx.send(ClusterEvent::Snapshot(snapshot_in));
        } else if am_seed && !snapshot_out.is_empty() {
            record(
                &obs,
                obs_shard,
                tag,
                ep,
                EventKind::StateTransfer,
                Direction::Dn,
                snapshot_out.len() as u64,
            );
        }
        let _ = events_tx.send(ClusterEvent::Formed(vs.clone()));

        let view = Arc::new(Mutex::new(vs.clone()));
        let stop = Arc::new(AtomicBool::new(false));
        let serving = Arc::new(AtomicBool::new(true));
        let driver = Driver {
            me: ep,
            key: cfg.key,
            period_ns: cfg.heartbeat_period.as_nanos() as u64,
            control,
            handle,
            welcome: welcome_cache.map(|r| (r, members)),
            detector: Detector::new(cfg.heartbeat_period.as_nanos() as u64, cfg.miss_limit),
            view: Arc::clone(&view),
            metrics: Arc::clone(&metrics),
            events: events_tx,
            stop: Arc::clone(&stop),
            obs,
            obs_shard,
            tag,
            epoch: start_ltime,
            hb_seq: 0,
            fenced: false,
            suspicion_at: None,
            state,
            quorum: cfg.quorum,
            beacon_period_ns: cfg.merge_beacon_period.as_nanos() as u64,
            stalled: false,
            serving: Arc::clone(&serving),
            suspected_eps: Vec::new(),
            absent: Vec::new(),
            pending_admits: Vec::new(),
            admit_hints: Vec::new(),
            merging: false,
        };
        let worker = std::thread::Builder::new()
            .name(format!("ensemble-cluster-{}", ep.id()))
            .spawn(move || driver.run())
            .map_err(|e| ClusterError::Runtime(format!("spawn driver: {e}")))?;

        Ok(ClusterNode {
            ep,
            node,
            sender,
            events: events_rx,
            metrics,
            view,
            stop,
            serving,
            driver: Some(worker),
        })
    }

    /// This member's endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// The most recently installed view.
    pub fn view(&self) -> ViewState {
        self.view
            .lock()
            .expect("cluster view mutex poisoned: the driver thread panicked")
            .clone()
    }

    /// Multicasts `payload` to the group.
    pub fn cast(&self, payload: &[u8]) -> Result<(), ClusterError> {
        self.sender
            .cast(payload)
            .map_err(|e| ClusterError::Runtime(e.to_string()))
    }

    /// Sends `payload` point-to-point to `dst` (a rank in the current view).
    pub fn send(&self, dst: Rank, payload: &[u8]) -> Result<(), ClusterError> {
        self.sender
            .send(dst, payload)
            .map_err(|e| ClusterError::Runtime(e.to_string()))
    }

    /// A cloneable send-only handle usable from other threads.
    pub fn sender(&self) -> GroupSender {
        self.sender.clone()
    }

    /// Whether this member is currently serving application traffic.
    ///
    /// `false` while the member is stalled in a minority partition or
    /// fenced by a newer epoch — a service fronting this node (the KV
    /// server) should reject requests immediately instead of letting
    /// clients time out on operations parked behind the stall. One
    /// relaxed atomic load; safe to call on every request.
    pub fn is_serving(&self) -> bool {
        self.serving.load(Ordering::Relaxed)
    }

    /// A cloneable handle to the serving flag for threads that cannot
    /// borrow the node (e.g. TCP connection workers).
    pub fn serving_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.serving)
    }

    /// Blocks up to `timeout` for the next cluster event.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<ClusterEvent> {
        match self.events.recv_timeout(timeout) {
            Ok(e) => Some(e),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking poll for the next cluster event.
    pub fn try_recv(&self) -> Option<ClusterEvent> {
        self.events.try_recv().ok()
    }

    /// This member's cluster counters.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Drains this member's flight recorder: runtime trace events plus
    /// the cluster driver's (heartbeats, suspicion, merge beacons and
    /// grants, minority stalls). The partition demo prints the healing
    /// episode from here.
    pub fn trace_events(&self) -> Vec<ensemble_obs::TraceEvent> {
        self.node.obs_arc().drain()
    }

    /// The underlying runtime observability handle, so a service layered
    /// on this member (e.g. the KV replica) records its spans into the
    /// same flight recorder [`ClusterNode::trace_events`] drains.
    pub fn obs_arc(&self) -> Arc<NodeObs> {
        self.node.obs_arc()
    }

    /// The obs shard index reserved for threads outside the runtime's
    /// worker pool (pair with [`ClusterNode::obs_arc`]).
    pub fn aux_obs_shard(&self) -> usize {
        self.node.aux_obs_shard()
    }

    /// Runtime + cluster metrics in Prometheus text exposition format
    /// (includes the `ensemble_view_change_ns` histogram and every
    /// `ensemble_cluster_*` counter).
    pub fn metrics_text(&self) -> String {
        let mut text = self.node.metrics_text();
        text.push_str(&self.metrics.render());
        text
    }

    /// Gracefully leaves the group, then stops this member.
    pub fn leave(mut self) {
        let _ = self.sender.leave();
        // Give the stack a moment to emit Exit before tearing down.
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
        while std::time::Instant::now() < deadline {
            match self
                .events
                .recv_timeout(std::time::Duration::from_millis(50))
            {
                Ok(ClusterEvent::Delivery(Delivery::Exit)) => break,
                Ok(_) | Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.halt();
    }

    /// Stops this member abruptly — no Leave, no flush — simulating a
    /// crash. Survivors must detect it and install a new view.
    pub fn kill(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(d) = self.driver.take() {
            let _ = d.join();
        }
        self.node.shutdown();
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.halt();
    }
}

fn record(
    obs: &NodeObs,
    shard: usize,
    tag: Tag,
    ep: Endpoint,
    kind: EventKind,
    dir: Direction,
    aux: u64,
) {
    if !obs.enabled() {
        return;
    }
    obs.recorder.record(
        shard,
        &Event {
            t_ns: now_ns(),
            layer: tag,
            kind,
            dir,
            group: ep.id(),
            seqno: 0,
            ccp: CcpFailure::None,
            aux,
        },
    );
}

/// What the driver's timer wheel fires.
enum Tick {
    /// Send a heartbeat to every peer.
    Heartbeat,
    /// Sweep the detector for newly silent peers.
    Sweep,
    /// Advertise this component to absent/suspected members for merge.
    Beacon,
}

struct Driver {
    me: Endpoint,
    key: u64,
    period_ns: u64,
    control: Box<dyn Transport>,
    handle: GroupHandle,
    /// Seed only: the rendezvous state kept around to re-Welcome a
    /// joiner whose Welcome was lost (it shows up as a repeated Hello).
    welcome: Option<(SeedRendezvous, Vec<Endpoint>)>,
    detector: Detector,
    view: Arc<Mutex<ViewState>>,
    metrics: Arc<ClusterMetrics>,
    events: Sender<ClusterEvent>,
    stop: Arc<AtomicBool>,
    obs: Arc<NodeObs>,
    obs_shard: usize,
    tag: Tag,
    epoch: u64,
    hb_seq: u64,
    /// Set when a newer epoch fenced us: stop heartbeating, the group
    /// has moved on without this member.
    fenced: bool,
    /// When the current suspicion window opened (first suspicion since
    /// the last view install), for the view-change latency histogram.
    suspicion_at: Option<u64>,
    /// Application state provider, re-snapshotted for merge grants.
    state: Option<Box<dyn StateProvider>>,
    /// Whether to stall a component that lost quorum.
    quorum: QuorumPolicy,
    /// Interval between merge beacons while members are missing.
    beacon_period_ns: u64,
    /// This component lacks quorum: egress parks, ingress quarantines.
    stalled: bool,
    /// Published `!stalled && !fenced` for cheap service-plane queries.
    serving: Arc<AtomicBool>,
    /// Members of the current view the detector has silenced.
    suspected_eps: Vec<Endpoint>,
    /// Members expelled by past view changes — merge beacon targets.
    absent: Vec<Endpoint>,
    /// Endpoints awaiting admission through the next merge flush.
    pending_admits: Vec<Endpoint>,
    /// Resume hints (state version already held) advertised by pending
    /// admits in their Hello, by endpoint id. Component merges arrive
    /// without a hint and always receive the snapshot.
    admit_hints: Vec<(u32, u64)>,
    /// A merge flush is in flight; don't start another until it lands.
    merging: bool,
}

impl Driver {
    fn run(mut self) {
        let now = Time(now_ns());
        let mut wheel: ensemble_runtime::TimerWheel<Tick> = ensemble_runtime::TimerWheel::new(now);
        wheel.schedule(Time(now.0 + self.period_ns), Tick::Heartbeat);
        wheel.schedule(Time(now.0 + self.period_ns / 2), Tick::Sweep);
        wheel.schedule(Time(now.0 + self.beacon_period_ns), Tick::Beacon);
        self.detector.reset(&self.peers(), now);
        let mut fired: Vec<(Time, Tick)> = Vec::new();
        let pause = std::time::Duration::from_nanos((self.period_ns / 8).clamp(100_000, 5_000_000));

        // Park on a waker instead of sleeping blind: the shard nudges it
        // after every queued delivery and the control transport on every
        // ingress packet, so forwarding latency is wake-up time rather
        // than up to a full `pause`. The bound keeps timer ticks live.
        let waker = Arc::new(Waker::new());
        let _ = self.handle.set_delivery_waker(Arc::clone(&waker));
        self.control.set_waker(Arc::clone(&waker));

        while !self.stop.load(Ordering::Relaxed) {
            let mut busy = false;
            let now = Time(now_ns());

            // Control-plane ingress.
            while let Ok(Some(pkt)) = self.control.try_recv() {
                busy = true;
                match decode(&pkt.bytes, self.key) {
                    Ok(env) => self.on_frame(env, now),
                    Err(_) => {
                        self.metrics.bad_frames.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }

            // Timer wheel: heartbeats out, detector sweeps.
            fired.clear();
            wheel.advance(now, &mut fired);
            for (_, tick) in fired.drain(..) {
                busy = true;
                match tick {
                    Tick::Heartbeat => {
                        self.heartbeat(now);
                        wheel.schedule(Time(now.0 + self.period_ns), Tick::Heartbeat);
                    }
                    Tick::Sweep => {
                        self.sweep(now);
                        wheel.schedule(Time(now.0 + self.period_ns / 2), Tick::Sweep);
                    }
                    Tick::Beacon => {
                        self.beacon(now);
                        wheel.schedule(Time(now.0 + self.beacon_period_ns), Tick::Beacon);
                    }
                }
            }

            // Stack deliveries out to the application.
            while let Some(d) = self.handle.try_recv() {
                busy = true;
                self.on_delivery(d, Time(now_ns()));
            }

            if !busy {
                waker.park(pause);
            }
        }
        self.serving.store(false, Ordering::Relaxed);
    }

    /// Current peers (everyone in the view but us).
    fn peers(&self) -> Vec<Endpoint> {
        self.view
            .lock()
            .expect("cluster view mutex poisoned: the driver thread panicked")
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me)
            .collect()
    }

    fn send_control(&mut self, to: Endpoint, frame: Frame) {
        let env = Envelope {
            src: self.me,
            epoch: self.epoch,
            frame,
        };
        let bytes = encode(&env, self.key);
        let _ = self.control.send(&Packet::point(self.me, to, bytes));
    }

    fn heartbeat(&mut self, _now: Time) {
        // A stalled component keeps heartbeating its own side (else the
        // minority members suspect each other and heal one-by-one); the
        // Fences its stale epoch draws from the majority are ignored
        // while stalled.
        if self.fenced {
            return;
        }
        let seq = self.hb_seq;
        self.hb_seq += 1;
        let peers = self.peers();
        for p in &peers {
            self.send_control(*p, Frame::Heartbeat { seq });
        }
        self.metrics
            .heartbeats_sent
            .fetch_add(peers.len() as u64, Ordering::Relaxed);
        record(
            &self.obs,
            self.obs_shard,
            self.tag,
            self.me,
            EventKind::Heartbeat,
            Direction::Dn,
            seq,
        );
    }

    fn sweep(&mut self, now: Time) {
        let newly = self.detector.sweep(now);
        if newly.is_empty() {
            return;
        }
        let vs = self
            .view
            .lock()
            .expect("cluster view mutex poisoned: the driver thread panicked")
            .clone();
        let mut ranks = Vec::new();
        for ep in newly {
            self.metrics.suspicions.fetch_add(1, Ordering::Relaxed);
            record(
                &self.obs,
                self.obs_shard,
                self.tag,
                ep,
                EventKind::Suspect,
                Direction::None,
                now.0,
            );
            if !self.suspected_eps.contains(&ep) {
                self.suspected_eps.push(ep);
            }
            if let Some(r) = vs.rank_of(ep) {
                ranks.push(r);
            }
        }
        if ranks.is_empty() {
            return;
        }
        if self.suspicion_at.is_none() {
            self.suspicion_at = Some(now.0);
        }
        // Primary-partition gate: suspicion only reaches the stack while
        // this component still holds a strict majority of the last view.
        // Below that, stall instead — the other side of the split owns
        // the primary view sequence.
        let live = self.live_members(&vs).len();
        let needed = vs.members.len() / 2 + 1;
        if self.quorum == QuorumPolicy::MajorityOfLastView && live < needed {
            self.enter_stall(live, needed);
            return;
        }
        if self.am_acting_coord(&vs) {
            // The acting coordinator's gmp will open the flush: this is
            // where the new view is first proposed.
            record(
                &self.obs,
                self.obs_shard,
                self.tag,
                self.me,
                EventKind::ViewPropose,
                Direction::Dn,
                self.epoch + 1,
            );
        }
        let _ = self.handle.suspect(ranks);
    }

    /// Members of `vs` not currently suspected, in view order.
    fn live_members(&self, vs: &ViewState) -> Vec<Endpoint> {
        vs.members
            .iter()
            .copied()
            .filter(|m| !self.suspected_eps.contains(m))
            .collect()
    }

    /// The lowest unsuspected member acts as coordinator: rank 0 itself
    /// may be on the far side of a partition.
    fn acting_coord(&self, vs: &ViewState) -> Option<Endpoint> {
        self.live_members(vs).first().copied()
    }

    fn am_acting_coord(&self, vs: &ViewState) -> bool {
        self.acting_coord(vs) == Some(self.me)
    }

    /// Publishes the service-plane availability flag ([`ClusterNode::is_serving`]).
    fn publish_serving(&self) {
        self.serving
            .store(!self.stalled && !self.fenced, Ordering::Relaxed);
    }

    /// Parks the group: quorum is lost, so no view change may be driven
    /// from this component until a merge restores a majority.
    fn enter_stall(&mut self, live: usize, needed: usize) {
        if self.stalled {
            return;
        }
        self.stalled = true;
        let _ = self.handle.stall(true);
        self.publish_serving();
        self.metrics.minority_stalls.fetch_add(1, Ordering::Relaxed);
        record(
            &self.obs,
            self.obs_shard,
            self.tag,
            self.me,
            EventKind::MinorityStall,
            Direction::Dn,
            live as u64,
        );
        let _ = self
            .events
            .send(ClusterEvent::MinorityPartition { live, needed });
    }

    /// Periodic merge beacon: the acting coordinator advertises its
    /// component to every absent or suspected member so the two sides of
    /// a healed partition rediscover each other.
    fn beacon(&mut self, _now: Time) {
        if self.fenced {
            return;
        }
        let vs = self
            .view
            .lock()
            .expect("cluster view mutex poisoned: the driver thread panicked")
            .clone();
        if !self.am_acting_coord(&vs) {
            return;
        }
        let mut targets: Vec<Endpoint> = Vec::new();
        for ep in self.suspected_eps.iter().chain(self.absent.iter()) {
            if *ep != self.me && !targets.contains(ep) {
                targets.push(*ep);
            }
        }
        if targets.is_empty() {
            return;
        }
        let live = self.live_members(&vs);
        for t in &targets {
            self.send_control(
                *t,
                Frame::MergeBeacon {
                    members: live.clone(),
                    stalled: self.stalled,
                },
            );
        }
        self.metrics
            .merge_beacons
            .fetch_add(targets.len() as u64, Ordering::Relaxed);
        record(
            &self.obs,
            self.obs_shard,
            self.tag,
            self.me,
            EventKind::MergeBeacon,
            Direction::Dn,
            targets.len() as u64,
        );
    }

    /// A foreign coordinator advertised its component. Seniority (by
    /// `(holds quorum, epoch, endpoint)`) decides direction: the junior
    /// side requests absorption, the senior side answers with its own
    /// beacon so the junior learns who to ask. Quorum ranks above epoch
    /// because only a non-stalled component may have kept committing —
    /// merged state must flow from it, never over it; a stalled side
    /// with a racing epoch would otherwise absorb the primary and roll
    /// back acknowledged work.
    fn on_merge_beacon(
        &mut self,
        src: Endpoint,
        their_epoch: u64,
        their_stalled: bool,
        _now: Time,
    ) {
        if self.fenced {
            return;
        }
        let vs = self
            .view
            .lock()
            .expect("cluster view mutex poisoned: the driver thread panicked")
            .clone();
        if !self.am_acting_coord(&vs) {
            return;
        }
        // Beacons from a live same-view peer are echoes, not foreign
        // components — nothing to merge.
        let foreign =
            self.stalled || !vs.members.contains(&src) || self.suspected_eps.contains(&src);
        if !foreign {
            return;
        }
        record(
            &self.obs,
            self.obs_shard,
            self.tag,
            src,
            EventKind::MergeBeacon,
            Direction::Up,
            their_epoch,
        );
        let live = self.live_members(&vs);
        if (!their_stalled, their_epoch, src) > (!self.stalled, self.epoch, self.me) {
            self.metrics.merge_requests.fetch_add(1, Ordering::Relaxed);
            self.send_control(src, Frame::MergeRequest { members: live });
        } else {
            self.metrics.merge_beacons.fetch_add(1, Ordering::Relaxed);
            self.send_control(
                src,
                Frame::MergeBeacon {
                    members: live,
                    stalled: self.stalled,
                },
            );
        }
    }

    /// A junior component (or a lone rejoiner) asked to be absorbed.
    /// Non-coordinators relay to the acting coordinator; the coordinator
    /// queues the admits and starts a merge flush once quorum allows.
    fn on_merge_request(&mut self, members: Vec<Endpoint>, _now: Time) {
        if self.fenced {
            return;
        }
        let vs = self
            .view
            .lock()
            .expect("cluster view mutex poisoned: the driver thread panicked")
            .clone();
        if !self.am_acting_coord(&vs) {
            if let Some(c) = self.acting_coord(&vs) {
                if c != self.me {
                    self.send_control(c, Frame::MergeRequest { members });
                }
            }
            return;
        }
        for ep in members {
            if ep == self.me {
                continue;
            }
            let live_in_view = vs.members.contains(&ep) && !self.suspected_eps.contains(&ep);
            if live_in_view {
                continue;
            }
            if !self.pending_admits.contains(&ep) {
                self.pending_admits.push(ep);
            }
        }
        self.try_merge(&vs);
    }

    /// Starts a merge flush for the queued admits if none is in flight
    /// and the merged membership would hold quorum. A stalled senior
    /// unstalls here and injects its gated suspicions so gmp can run the
    /// combined suspect+merge view change without unreachable rows.
    fn try_merge(&mut self, vs: &ViewState) {
        if self.merging || self.pending_admits.is_empty() {
            return;
        }
        let mut merged = self.live_members(vs);
        for ep in &self.pending_admits {
            if !merged.iter().any(|m| m.id() == ep.id()) {
                merged.push(*ep);
            }
        }
        let needed = vs.members.len() / 2 + 1;
        if self.quorum == QuorumPolicy::MajorityOfLastView && merged.len() < needed {
            return;
        }
        self.merging = true;
        if self.stalled {
            self.stalled = false;
            let _ = self.handle.stall(false);
            self.publish_serving();
            record(
                &self.obs,
                self.obs_shard,
                self.tag,
                self.me,
                EventKind::MinorityStall,
                Direction::Up,
                merged.len() as u64,
            );
            let ranks: Vec<Rank> = self
                .suspected_eps
                .iter()
                .filter_map(|&e| vs.rank_of(e))
                .collect();
            if !ranks.is_empty() {
                let _ = self.handle.suspect(ranks);
            }
        }
        record(
            &self.obs,
            self.obs_shard,
            self.tag,
            self.me,
            EventKind::ViewPropose,
            Direction::Dn,
            self.epoch + 1,
        );
        let _ = self.handle.merge(self.pending_admits.clone());
    }

    /// The senior coordinator granted us membership in its merged view:
    /// install it directly (the control plane replaces the flush we
    /// could not participate in from the far side of the split).
    fn on_merge_grant(
        &mut self,
        view_ltime: u64,
        members: Vec<Endpoint>,
        snapshot: Vec<u8>,
        _now: Time,
    ) {
        if self.fenced || view_ltime <= self.epoch {
            return;
        }
        let Some(idx) = members.iter().position(|&m| m == self.me) else {
            return;
        };
        let vs = ViewState {
            group: GroupId(1),
            view_id: ViewId {
                ltime: view_ltime,
                coord: members[0],
            },
            members,
            rank: Rank(idx as u16),
        };
        self.metrics
            .merge_grants_installed
            .fetch_add(1, Ordering::Relaxed);
        record(
            &self.obs,
            self.obs_shard,
            self.tag,
            self.me,
            EventKind::MergeGrant,
            Direction::Up,
            view_ltime,
        );
        if self.stalled {
            self.stalled = false;
            let _ = self.handle.stall(false);
            self.publish_serving();
        }
        if !snapshot.is_empty() {
            self.metrics.state_transfers.fetch_add(1, Ordering::Relaxed);
            record(
                &self.obs,
                self.obs_shard,
                self.tag,
                self.me,
                EventKind::StateTransfer,
                Direction::Up,
                snapshot.len() as u64,
            );
            let _ = self.events.send(ClusterEvent::Snapshot(snapshot));
        }
        let _ = self.handle.install_view(vs);
    }

    fn on_frame(&mut self, env: Envelope, now: Time) {
        match env.frame {
            Frame::Heartbeat { .. } => {
                if self.fenced {
                    return;
                }
                if env.epoch < self.epoch {
                    let lagging = self
                        .view
                        .lock()
                        .expect("cluster view mutex poisoned: the driver thread panicked")
                        .members
                        .contains(&env.src);
                    if lagging {
                        // A current member still catching up to the view
                        // we installed first (e.g. freshly merge-granted
                        // while another merge lands): alive, not expelled.
                        self.detector.heard(env.src, now);
                    } else {
                        // A stale non-member: tell it the group moved on.
                        // The event goes out before the counter ticks so an
                        // observer that polls `fences_sent` is guaranteed to
                        // find the FencedPeer event already in the channel.
                        self.send_control(env.src, Frame::Fence);
                        let _ = self.events.send(ClusterEvent::FencedPeer {
                            peer: env.src,
                            epoch: env.epoch,
                        });
                        self.metrics.fences_sent.fetch_add(1, Ordering::Release);
                    }
                } else {
                    // Equal epoch, or newer while our own view change is
                    // still in flight — either way the peer is alive, and
                    // starving the detector of that fact would cascade
                    // into spurious suspicion mid-merge.
                    self.detector.heard(env.src, now);
                    if env.epoch == self.epoch {
                        self.metrics
                            .heartbeats_received
                            .fetch_add(1, Ordering::Relaxed);
                        record(
                            &self.obs,
                            self.obs_shard,
                            self.tag,
                            env.src,
                            EventKind::Heartbeat,
                            Direction::Up,
                            env.epoch,
                        );
                    }
                }
            }
            Frame::Fence => {
                if self.stalled {
                    // Expected crossfire during a heal: the majority
                    // moved on while we were parked. The merge path
                    // catches us up; being fenced here would strand us.
                    return;
                }
                if env.epoch > self.epoch && !self.fenced {
                    self.fenced = true;
                    self.publish_serving();
                    self.metrics.fences_received.fetch_add(1, Ordering::Relaxed);
                    let _ = self.events.send(ClusterEvent::FencedBy {
                        peer: env.src,
                        epoch: env.epoch,
                    });
                }
            }
            Frame::Hello { have } => {
                // A joiner whose Welcome was lost retries its Hello; the
                // seed answers idempotently.
                if let Some((rdv, members)) = &self.welcome {
                    if members.contains(&env.src) {
                        rdv.rewelcome(self.control.as_mut(), env.src, members);
                        self.metrics.state_transfers.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                if self.fenced {
                    return;
                }
                // An unknown endpoint — a fenced member back with a
                // fresh incarnation, or a late cold joiner — is admitted
                // through the merge path: the acting coordinator runs a
                // flush and grants it the next view with a snapshot
                // (skipped if its resume hint says it is caught up).
                if !self.pending_admits.contains(&env.src) {
                    self.metrics.rejoins.fetch_add(1, Ordering::Relaxed);
                }
                self.admit_hints.retain(|(id, _)| *id != env.src.id());
                self.admit_hints.push((env.src.id(), have));
                self.on_merge_request(vec![env.src], now);
            }
            Frame::MergeBeacon {
                members: _,
                stalled,
            } => {
                self.on_merge_beacon(env.src, env.epoch, stalled, now);
            }
            Frame::MergeRequest { members } => {
                self.on_merge_request(members, now);
            }
            Frame::MergeGrant {
                view_ltime,
                members,
                snapshot,
            } => {
                self.on_merge_grant(view_ltime, members, snapshot, now);
            }
            Frame::Welcome { .. } => {} // already formed
        }
    }

    fn on_delivery(&mut self, d: Delivery, now: Time) {
        if let Delivery::View(vs) = &d {
            self.epoch = vs.view_id.ltime;
            let prev = {
                let mut guard = self
                    .view
                    .lock()
                    .expect("cluster view mutex poisoned: the driver thread panicked");
                std::mem::replace(&mut *guard, vs.clone())
            };
            // Members the group expelled stay on the beacon list until a
            // merge (under any incarnation) brings them back.
            for m in prev.members {
                if m != self.me
                    && !vs.members.iter().any(|v| v.id() == m.id())
                    && !self.absent.contains(&m)
                {
                    self.absent.push(m);
                }
            }
            self.absent
                .retain(|a| !vs.members.iter().any(|v| v.id() == a.id()));
            self.suspected_eps.clear();
            if self.stalled {
                self.stalled = false;
                let _ = self.handle.stall(false);
                self.publish_serving();
            }
            self.detector.reset(&self.peers(), now);
            self.metrics.views_installed.fetch_add(1, Ordering::Relaxed);
            record(
                &self.obs,
                self.obs_shard,
                self.tag,
                self.me,
                EventKind::ViewInstall,
                Direction::None,
                vs.view_id.ltime,
            );
            if let Some(t0) = self.suspicion_at.take() {
                if self.obs.enabled() {
                    self.obs.view_change_ns.record(now.0.saturating_sub(t0));
                }
            }
            // This node drove the merge: grant the admitted members the
            // view they could not receive through the (partitioned) data
            // plane, with a fresh state snapshot.
            let granted: Vec<Endpoint> = self
                .pending_admits
                .iter()
                .copied()
                .filter(|ep| vs.members.contains(ep))
                .collect();
            if !granted.is_empty() {
                let version = self.state.as_mut().map(|s| s.version()).unwrap_or(0);
                let snap = self
                    .state
                    .as_mut()
                    .map(|s| s.snapshot())
                    .unwrap_or_default();
                let mut shipped = 0u64;
                for g in &granted {
                    // State-transfer fast path: a rejoiner that already
                    // recovered at least our state version from its own
                    // log gets the view without the snapshot.
                    let have = self
                        .admit_hints
                        .iter()
                        .find(|(id, _)| *id == g.id())
                        .map(|(_, h)| *h)
                        .unwrap_or(0);
                    let skip = have > 0 && version > 0 && have >= version;
                    let snapshot = if skip { Vec::new() } else { snap.clone() };
                    if skip {
                        self.metrics
                            .snapshots_skipped
                            .fetch_add(1, Ordering::Relaxed);
                    } else if !snap.is_empty() {
                        shipped += 1;
                    }
                    self.send_control(
                        *g,
                        Frame::MergeGrant {
                            view_ltime: vs.view_id.ltime,
                            members: vs.members.clone(),
                            snapshot,
                        },
                    );
                }
                self.metrics
                    .merge_grants_sent
                    .fetch_add(granted.len() as u64, Ordering::Relaxed);
                if shipped > 0 {
                    self.metrics
                        .state_transfers
                        .fetch_add(shipped, Ordering::Relaxed);
                }
                record(
                    &self.obs,
                    self.obs_shard,
                    self.tag,
                    self.me,
                    EventKind::MergeGrant,
                    Direction::Dn,
                    vs.view_id.ltime,
                );
                self.pending_admits.retain(|ep| !vs.members.contains(ep));
                self.admit_hints
                    .retain(|(id, _)| self.pending_admits.iter().any(|ep| ep.id() == *id));
            }
            self.merging = false;
            if !self.pending_admits.is_empty() {
                self.try_merge(vs);
            }
        }
        let _ = self.events.send(ClusterEvent::Delivery(d));
    }
}
