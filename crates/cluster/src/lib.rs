//! # ensemble-cluster
//!
//! Self-assembling group membership over the Ensemble runtime: nodes
//! rendezvous through one seed address, heartbeat each other, and let
//! the protocol stack's suspect/elect/gmp/sync layers run real view
//! changes when a member dies.
//!
//! Where `ensemble-runtime` executes a stack for a *pre-agreed* view,
//! this crate answers the question that precedes it: *how do the
//! members find each other, and who decides when one is gone?* The
//! pieces:
//!
//! * **Rendezvous** ([`rendezvous`]) — joiners send MAC-signed `Hello`
//!   frames to a seed endpoint; once the expected membership is present
//!   the seed `Welcome`s everyone with the sorted member list (rank 0 =
//!   lowest endpoint = initial coordinator) and an optional application
//!   snapshot ([`StateProvider`]).
//! * **Failure detection** ([`detector`]) — each member heartbeats its
//!   peers every `heartbeat_period` off the runtime timer wheel; a peer
//!   silent for `miss_limit` periods is suspected once (sticky until
//!   the next view) and fed into the stack as a real `Suspect` event.
//!   The stack — not this crate — then runs the flush and installs the
//!   new view on every survivor.
//! * **Epoch fencing** ([`wire`]) — every control frame carries the
//!   sender's view ltime. Heartbeats from an older epoch are answered
//!   with a `Fence`, so an expelled member stops disturbing the group
//!   and learns it has been passed by.
//! * **State transfer** — the seed's snapshot rides the `Welcome`;
//!   joiners surface it as [`ClusterEvent::Snapshot`] before `Formed`.
//! * **Primary partition** ([`QuorumPolicy`]) — suspicion only reaches
//!   the stack while a component holds a strict majority of the last
//!   installed view. A minority component *stalls* instead (egress
//!   parks, ingress quarantines, heartbeats go quiet) and reports
//!   [`ClusterEvent::MinorityPartition`] — so at most one side of a
//!   split keeps installing views.
//! * **Partition healing** — acting coordinators beacon their absent
//!   and suspected members every `merge_beacon_period`. When beacons
//!   cross a healed link, seniority by `(epoch, endpoint)` decides
//!   direction: the junior side sends a `MergeRequest`, the senior
//!   coordinator runs a gmp merge flush, and `MergeGrant`s (with a
//!   fresh state snapshot) pull the absorbed members into the merged
//!   view. A fenced member rejoins the same way with a fresh
//!   incarnation. [`VsyncChecker`] replays a recorded execution against
//!   the virtual-synchrony contract; the `chaos_soak` test drives it
//!   over seeded [`ensemble_runtime::PartitionScript`]s.
//!
//! ```no_run
//! use ensemble_cluster::{ClusterConfig, ClusterNode};
//! use ensemble_runtime::LoopbackHub;
//! use ensemble_util::Endpoint;
//!
//! let control = LoopbackHub::new(1);
//! let data = LoopbackHub::new(2);
//! let (me, seed) = (Endpoint::new(0), Endpoint::new(0));
//! let node = ClusterNode::form(
//!     me,
//!     seed,
//!     ClusterConfig::new(3),
//!     Box::new(control.attach(me)),
//!     Box::new(data.attach(me)),
//!     None,
//! )
//! .unwrap();
//! println!("{}", node.metrics_text());
//! ```
//!
//! `examples/cluster_demo.rs` runs the full lifecycle: three nodes
//! rendezvous, one is killed, and the survivors install the new view
//! within a bounded number of heartbeat periods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod invariant;
pub mod member;
pub mod metrics;
pub mod rendezvous;
pub mod wire;

pub use config::{ClusterConfig, ClusterError, QuorumPolicy};
pub use detector::Detector;
pub use invariant::VsyncChecker;
pub use member::{ClusterEvent, ClusterNode, StateProvider};
pub use metrics::ClusterMetrics;
pub use rendezvous::{Joined, JoinerRendezvous, SeedRendezvous};
pub use wire::{decode, encode, Envelope, Frame, WireError};
