//! # ensemble-cluster
//!
//! Self-assembling group membership over the Ensemble runtime: nodes
//! rendezvous through one seed address, heartbeat each other, and let
//! the protocol stack's suspect/elect/gmp/sync layers run real view
//! changes when a member dies.
//!
//! Where `ensemble-runtime` executes a stack for a *pre-agreed* view,
//! this crate answers the question that precedes it: *how do the
//! members find each other, and who decides when one is gone?* The
//! pieces:
//!
//! * **Rendezvous** ([`rendezvous`]) — joiners send MAC-signed `Hello`
//!   frames to a seed endpoint; once the expected membership is present
//!   the seed `Welcome`s everyone with the sorted member list (rank 0 =
//!   lowest endpoint = initial coordinator) and an optional application
//!   snapshot ([`StateProvider`]).
//! * **Failure detection** ([`detector`]) — each member heartbeats its
//!   peers every `heartbeat_period` off the runtime timer wheel; a peer
//!   silent for `miss_limit` periods is suspected once (sticky until
//!   the next view) and fed into the stack as a real `Suspect` event.
//!   The stack — not this crate — then runs the flush and installs the
//!   new view on every survivor.
//! * **Epoch fencing** ([`wire`]) — every control frame carries the
//!   sender's view ltime. Heartbeats from an older epoch are answered
//!   with a `Fence`, so an expelled member stops disturbing the group
//!   and learns it has been passed by.
//! * **State transfer** — the seed's snapshot rides the `Welcome`;
//!   joiners surface it as [`ClusterEvent::Snapshot`] before `Formed`.
//!
//! ```no_run
//! use ensemble_cluster::{ClusterConfig, ClusterNode};
//! use ensemble_runtime::LoopbackHub;
//! use ensemble_util::Endpoint;
//!
//! let control = LoopbackHub::new(1);
//! let data = LoopbackHub::new(2);
//! let (me, seed) = (Endpoint::new(0), Endpoint::new(0));
//! let node = ClusterNode::form(
//!     me,
//!     seed,
//!     ClusterConfig::new(3),
//!     Box::new(control.attach(me)),
//!     Box::new(data.attach(me)),
//!     None,
//! )
//! .unwrap();
//! println!("{}", node.metrics_text());
//! ```
//!
//! `examples/cluster_demo.rs` runs the full lifecycle: three nodes
//! rendezvous, one is killed, and the survivors install the new view
//! within a bounded number of heartbeat periods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod member;
pub mod metrics;
pub mod rendezvous;
pub mod wire;

pub use config::{ClusterConfig, ClusterError};
pub use detector::Detector;
pub use member::{ClusterEvent, ClusterNode, StateProvider};
pub use metrics::ClusterMetrics;
pub use rendezvous::{JoinerRendezvous, SeedRendezvous};
pub use wire::{decode, encode, Envelope, Frame, WireError};
