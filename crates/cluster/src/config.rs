//! Cluster-wide tunables and their validity checks.

use ensemble_layers::{LayerConfig, STACK_VSYNC};
use ensemble_runtime::RuntimeConfig;
use ensemble_stack::EngineKind;
use std::time::Duration;

/// Why a cluster operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The configuration cannot work (see the message).
    Config(String),
    /// Rendezvous did not complete within `form_timeout`.
    Timeout,
    /// A joiner gave up: no Welcome (or merge grant) arrived within
    /// `join_deadline` despite the recorded number of Hello attempts.
    JoinFailed {
        /// Hello frames sent before giving up.
        attempts: u64,
    },
    /// The runtime refused the group (stack build failed or shut down).
    Runtime(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "invalid cluster config: {m}"),
            ClusterError::Timeout => write!(f, "rendezvous timed out"),
            ClusterError::JoinFailed { attempts } => {
                write!(f, "join failed after {attempts} hello attempts")
            }
            ClusterError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

/// How a member decides whether its component may keep changing views.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// Suspicion is only fed into the stack while the live (unsuspected)
    /// membership holds a strict majority of the last installed view.
    /// A component below that threshold stalls — parks application
    /// egress, quarantines ingress — so at most one side of a split
    /// installs primary views (default).
    #[default]
    MajorityOfLastView,
    /// No gate: every component keeps installing views. Split-brain is
    /// possible; only for tests and deployments that accept it.
    Disabled,
}

impl std::error::Error for ClusterError {}

/// Everything a [`crate::ClusterNode`] needs besides its transports.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The protocol stack, top first. Must contain `suspect` below `gmp`
    /// (checked by [`ClusterConfig::validate`], mirroring lint SL009) —
    /// the cluster feeds real `Suspect` events into it.
    pub stack: &'static [&'static str],
    /// Execution engine for the stack.
    pub engine: EngineKind,
    /// Per-layer protocol parameters (retransmission, suspicion, keys).
    pub layers: LayerConfig,
    /// Runtime tuning for this member's [`ensemble_runtime::Node`].
    pub runtime: RuntimeConfig,
    /// Initial membership size, including the seed.
    pub expected: usize,
    /// Interval between control-plane heartbeats to every peer.
    pub heartbeat_period: Duration,
    /// Heartbeat periods without contact before a peer is suspected.
    pub miss_limit: u32,
    /// Initial interval between Hello retries while rendezvousing. Each
    /// retry doubles the interval (with seed-derived jitter) up to
    /// `hello_retry_max`.
    pub hello_retry: Duration,
    /// Cap on the Hello retry backoff.
    pub hello_retry_max: Duration,
    /// A joiner gives up (with [`ClusterError::JoinFailed`]) after this
    /// long without a Welcome or merge grant.
    pub join_deadline: Duration,
    /// Give up on rendezvous after this long.
    pub form_timeout: Duration,
    /// Primary-partition policy: when (if ever) to stall a component
    /// that lost quorum.
    pub quorum: QuorumPolicy,
    /// Interval between merge beacons while a coordinator has absent or
    /// unreachable members to rediscover (partition healing).
    pub merge_beacon_period: Duration,
    /// MAC key for control frames (the data plane has its own
    /// `layers.sign_key`).
    pub key: u64,
}

impl ClusterConfig {
    /// A config for an `expected`-member cluster with demo-friendly
    /// timings (40 ms heartbeats, suspicion after 3 misses).
    pub fn new(expected: usize) -> ClusterConfig {
        ClusterConfig {
            stack: STACK_VSYNC,
            engine: EngineKind::Imp,
            layers: {
                let mut l = LayerConfig::fast();
                // The control-plane heartbeat detector is the authority
                // on liveness; the in-stack suspect layer stays as a
                // slow in-band backstop so the two never race.
                l.suspect_interval = ensemble_util::Duration::from_millis(500);
                l.suspect_misses = 8;
                l
            },
            runtime: RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
            expected,
            heartbeat_period: Duration::from_millis(40),
            miss_limit: 3,
            hello_retry: Duration::from_millis(20),
            hello_retry_max: Duration::from_millis(320),
            join_deadline: Duration::from_secs(10),
            form_timeout: Duration::from_secs(10),
            quorum: QuorumPolicy::MajorityOfLastView,
            merge_beacon_period: Duration::from_millis(100),
            key: 0xC1A5_7E2E_5EED_0001,
        }
    }

    /// Rejects configurations that would hang or misbehave at runtime.
    ///
    /// The stack-shape check mirrors `ensemble-analyze` lint SL009: a
    /// stack consuming real `Suspect` events must contain the `suspect`
    /// layer below `gmp`, otherwise suspicion never reaches the
    /// membership protocol and a crashed peer is never expelled — a
    /// silent hang, not an error, which is why it is refused here.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.expected == 0 {
            return Err(ClusterError::Config("expected membership of zero".into()));
        }
        if self.heartbeat_period.is_zero() {
            return Err(ClusterError::Config("zero heartbeat period".into()));
        }
        if self.miss_limit == 0 {
            return Err(ClusterError::Config(
                "miss_limit of zero would suspect every peer instantly".into(),
            ));
        }
        if self.hello_retry.is_zero() {
            return Err(ClusterError::Config(
                "zero hello_retry would busy-spin the rendezvous".into(),
            ));
        }
        if self.hello_retry_max < self.hello_retry {
            return Err(ClusterError::Config(
                "hello_retry_max below hello_retry inverts the backoff".into(),
            ));
        }
        if self.join_deadline.is_zero() {
            return Err(ClusterError::Config(
                "zero join_deadline fails every join immediately".into(),
            ));
        }
        if self.merge_beacon_period.is_zero() {
            return Err(ClusterError::Config(
                "zero merge_beacon_period would flood the control plane".into(),
            ));
        }
        let idx = |name: &str| self.stack.iter().position(|l| *l == name);
        let (Some(gmp), Some(suspect)) = (idx("gmp"), idx("suspect")) else {
            return Err(ClusterError::Config(
                "stack must contain both gmp and suspect to consume Suspect events (SL009)".into(),
            ));
        };
        // Stacks are written top-first: "below gmp" means a larger index.
        if suspect < gmp {
            return Err(ClusterError::Config(
                "suspect must sit below gmp so suspicion reaches the membership protocol (SL009)"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ClusterConfig::new(3)
            .validate()
            .expect("vsync stack is fine");
    }

    #[test]
    fn stack_without_suspect_is_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.stack = ensemble_layers::STACK_4;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ClusterError::Config(ref m) if m.contains("SL009")));
    }

    #[test]
    fn suspect_above_gmp_is_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.stack = &["top", "suspect", "gmp", "sync", "elect", "bottom"];
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ClusterError::Config(ref m) if m.contains("below gmp")));
    }

    #[test]
    fn degenerate_timings_are_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.miss_limit = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::new(3);
        cfg.heartbeat_period = Duration::ZERO;
        assert!(cfg.validate().is_err());
        assert!(ClusterConfig::new(0).validate().is_err());
    }

    #[test]
    fn degenerate_partition_knobs_are_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.hello_retry = Duration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::new(3);
        cfg.hello_retry_max = cfg.hello_retry / 2;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::new(3);
        cfg.join_deadline = Duration::ZERO;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::new(3);
        cfg.merge_beacon_period = Duration::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quorum_defaults_to_majority_and_join_failed_displays_attempts() {
        let cfg = ClusterConfig::new(5);
        assert_eq!(cfg.quorum, QuorumPolicy::MajorityOfLastView);
        let e = ClusterError::JoinFailed { attempts: 17 };
        assert!(format!("{e}").contains("17"));
    }
}
