//! Cluster-wide tunables and their validity checks.

use ensemble_layers::{LayerConfig, STACK_VSYNC};
use ensemble_runtime::RuntimeConfig;
use ensemble_stack::EngineKind;
use std::time::Duration;

/// Why a cluster operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The configuration cannot work (see the message).
    Config(String),
    /// Rendezvous did not complete within `form_timeout`.
    Timeout,
    /// The runtime refused the group (stack build failed or shut down).
    Runtime(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(m) => write!(f, "invalid cluster config: {m}"),
            ClusterError::Timeout => write!(f, "rendezvous timed out"),
            ClusterError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Everything a [`crate::ClusterNode`] needs besides its transports.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The protocol stack, top first. Must contain `suspect` below `gmp`
    /// (checked by [`ClusterConfig::validate`], mirroring lint SL009) —
    /// the cluster feeds real `Suspect` events into it.
    pub stack: &'static [&'static str],
    /// Execution engine for the stack.
    pub engine: EngineKind,
    /// Per-layer protocol parameters (retransmission, suspicion, keys).
    pub layers: LayerConfig,
    /// Runtime tuning for this member's [`ensemble_runtime::Node`].
    pub runtime: RuntimeConfig,
    /// Initial membership size, including the seed.
    pub expected: usize,
    /// Interval between control-plane heartbeats to every peer.
    pub heartbeat_period: Duration,
    /// Heartbeat periods without contact before a peer is suspected.
    pub miss_limit: u32,
    /// Interval between Hello retries while rendezvousing.
    pub hello_retry: Duration,
    /// Give up on rendezvous after this long.
    pub form_timeout: Duration,
    /// MAC key for control frames (the data plane has its own
    /// `layers.sign_key`).
    pub key: u64,
}

impl ClusterConfig {
    /// A config for an `expected`-member cluster with demo-friendly
    /// timings (40 ms heartbeats, suspicion after 3 misses).
    pub fn new(expected: usize) -> ClusterConfig {
        ClusterConfig {
            stack: STACK_VSYNC,
            engine: EngineKind::Imp,
            layers: {
                let mut l = LayerConfig::fast();
                // The control-plane heartbeat detector is the authority
                // on liveness; the in-stack suspect layer stays as a
                // slow in-band backstop so the two never race.
                l.suspect_interval = ensemble_util::Duration::from_millis(500);
                l.suspect_misses = 8;
                l
            },
            runtime: RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
            expected,
            heartbeat_period: Duration::from_millis(40),
            miss_limit: 3,
            hello_retry: Duration::from_millis(20),
            form_timeout: Duration::from_secs(10),
            key: 0xC1A5_7E2E_5EED_0001,
        }
    }

    /// Rejects configurations that would hang or misbehave at runtime.
    ///
    /// The stack-shape check mirrors `ensemble-analyze` lint SL009: a
    /// stack consuming real `Suspect` events must contain the `suspect`
    /// layer below `gmp`, otherwise suspicion never reaches the
    /// membership protocol and a crashed peer is never expelled — a
    /// silent hang, not an error, which is why it is refused here.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.expected == 0 {
            return Err(ClusterError::Config("expected membership of zero".into()));
        }
        if self.heartbeat_period.is_zero() {
            return Err(ClusterError::Config("zero heartbeat period".into()));
        }
        if self.miss_limit == 0 {
            return Err(ClusterError::Config(
                "miss_limit of zero would suspect every peer instantly".into(),
            ));
        }
        let idx = |name: &str| self.stack.iter().position(|l| *l == name);
        let (Some(gmp), Some(suspect)) = (idx("gmp"), idx("suspect")) else {
            return Err(ClusterError::Config(
                "stack must contain both gmp and suspect to consume Suspect events (SL009)".into(),
            ));
        };
        // Stacks are written top-first: "below gmp" means a larger index.
        if suspect < gmp {
            return Err(ClusterError::Config(
                "suspect must sit below gmp so suspicion reaches the membership protocol (SL009)"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ClusterConfig::new(3)
            .validate()
            .expect("vsync stack is fine");
    }

    #[test]
    fn stack_without_suspect_is_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.stack = ensemble_layers::STACK_4;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ClusterError::Config(ref m) if m.contains("SL009")));
    }

    #[test]
    fn suspect_above_gmp_is_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.stack = &["top", "suspect", "gmp", "sync", "elect", "bottom"];
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ClusterError::Config(ref m) if m.contains("below gmp")));
    }

    #[test]
    fn degenerate_timings_are_refused() {
        let mut cfg = ClusterConfig::new(3);
        cfg.miss_limit = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::new(3);
        cfg.heartbeat_period = Duration::ZERO;
        assert!(cfg.validate().is_err());
        assert!(ClusterConfig::new(0).validate().is_err());
    }
}
