//! Virtual-synchrony invariant checking over recorded executions.
//!
//! The chaos harness feeds every node's view installs and cast
//! deliveries into a [`VsyncChecker`]; [`VsyncChecker::finish`] then
//! replays the partitionable virtual-synchrony contract over the whole
//! execution:
//!
//! 1. **Primary partition** — at most one distinct membership exists per
//!    view ltime across all nodes (no split brain).
//! 2. **Monotone views** — each node installs strictly increasing view
//!    ltimes (epoch fencing works).
//! 3. **Self membership** — a node only installs views it belongs to.
//! 4. **Agreed delivery** — nodes that leave a view *together* (same
//!    successor ltime) delivered exactly the same cast sequence in it;
//!    nodes separated by a partition may lag, but only as a prefix (the
//!    total-order layer forbids divergent interleavings).
//! 5. **Exactly-once** — no node delivers the same (unique) payload
//!    twice, across all views.
//!
//! The checker is deliberately offline: it never touches the protocol,
//! so a bug cannot hide by influencing its own observer.

use ensemble_event::ViewState;
use ensemble_util::Endpoint;
use std::collections::{BTreeMap, HashSet};

/// Everything recorded about one node's execution.
#[derive(Default)]
struct NodeLog {
    /// Views in install order.
    views: Vec<ViewState>,
    /// Cast payloads in delivery order, keyed by the ltime of the view
    /// they were delivered in.
    casts: BTreeMap<u64, Vec<Vec<u8>>>,
}

impl NodeLog {
    /// The ltime of the first view installed after `ltime` (the view
    /// this node transitioned *to* when it left view `ltime`).
    fn successor(&self, ltime: u64) -> Option<u64> {
        self.views
            .iter()
            .map(|v| v.view_id.ltime)
            .filter(|&l| l > ltime)
            .min()
    }
}

/// Offline checker for the virtual-synchrony contract (see the module
/// docs for the five invariants).
///
/// Feed it with [`VsyncChecker::on_view`] and
/// [`VsyncChecker::on_cast_delivery`] while the system runs, then call
/// [`VsyncChecker::finish`] once traffic has drained.
#[derive(Default)]
pub struct VsyncChecker {
    nodes: BTreeMap<Endpoint, NodeLog>,
}

impl VsyncChecker {
    /// An empty checker.
    pub fn new() -> VsyncChecker {
        VsyncChecker::default()
    }

    /// Records that `node` installed `vs`.
    pub fn on_view(&mut self, node: Endpoint, vs: &ViewState) {
        self.nodes.entry(node).or_default().views.push(vs.clone());
    }

    /// Records that `node` delivered the cast `payload` (in its most
    /// recently installed view).
    pub fn on_cast_delivery(&mut self, node: Endpoint, payload: &[u8]) {
        let log = self.nodes.entry(node).or_default();
        let ltime = log.views.last().map(|v| v.view_id.ltime).unwrap_or(0);
        log.casts.entry(ltime).or_default().push(payload.to_vec());
    }

    /// Checks every invariant and returns the violations (empty means
    /// the execution was virtually synchronous).
    pub fn finish(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.check_per_node(&mut out);
        self.check_primary_partition(&mut out);
        self.check_agreed_delivery(&mut out);
        out
    }

    fn check_per_node(&self, out: &mut Vec<String>) {
        for (ep, log) in &self.nodes {
            let mut last: Option<u64> = None;
            for vs in &log.views {
                if !vs.members.contains(ep) {
                    out.push(format!(
                        "{ep:?} installed view ltime={} it is not a member of",
                        vs.view_id.ltime
                    ));
                }
                if let Some(prev) = last {
                    if vs.view_id.ltime <= prev {
                        out.push(format!(
                            "{ep:?} view ltimes not strictly increasing: {prev} then {}",
                            vs.view_id.ltime
                        ));
                    }
                }
                last = Some(vs.view_id.ltime);
            }
            let mut seen: HashSet<&[u8]> = HashSet::new();
            for seq in log.casts.values() {
                for p in seq {
                    if !seen.insert(p.as_slice()) {
                        out.push(format!(
                            "{ep:?} delivered payload {:?} more than once",
                            String::from_utf8_lossy(p)
                        ));
                    }
                }
            }
        }
    }

    fn check_primary_partition(&self, out: &mut Vec<String>) {
        let mut by_ltime: BTreeMap<u64, (Endpoint, Vec<Endpoint>)> = BTreeMap::new();
        for (ep, log) in &self.nodes {
            for vs in &log.views {
                match by_ltime.get(&vs.view_id.ltime) {
                    None => {
                        by_ltime.insert(vs.view_id.ltime, (*ep, vs.members.clone()));
                    }
                    Some((first, members)) if *members != vs.members => {
                        out.push(format!(
                            "split brain at ltime={}: {first:?} and {ep:?} installed \
                             different memberships ({} vs {} members)",
                            vs.view_id.ltime,
                            members.len(),
                            vs.members.len()
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
    }

    fn check_agreed_delivery(&self, out: &mut Vec<String>) {
        let ltimes: HashSet<u64> = self
            .nodes
            .values()
            .flat_map(|l| l.casts.keys().copied())
            .collect();
        // A node's record for one view: (who, delivered casts, successor).
        type ViewRecord<'a> = (Endpoint, &'a Vec<Vec<u8>>, Option<u64>);
        for lt in ltimes {
            let empty = Vec::new();
            let entries: Vec<ViewRecord> = self
                .nodes
                .iter()
                .filter(|(_, log)| log.views.iter().any(|v| v.view_id.ltime == lt))
                .map(|(ep, log)| (*ep, log.casts.get(&lt).unwrap_or(&empty), log.successor(lt)))
                .collect();
            for (i, (ep_a, seq_a, succ_a)) in entries.iter().enumerate() {
                for (ep_b, seq_b, succ_b) in entries.iter().skip(i + 1) {
                    let (short, long) = if seq_a.len() <= seq_b.len() {
                        (seq_a, seq_b)
                    } else {
                        (seq_b, seq_a)
                    };
                    if long[..short.len()] != short[..] {
                        out.push(format!(
                            "divergent delivery in view ltime={lt}: {ep_a:?} and {ep_b:?} \
                             disagree on cast order"
                        ));
                    } else if succ_a == succ_b && succ_a.is_some() && seq_a.len() != seq_b.len() {
                        out.push(format!(
                            "agreed delivery broken in view ltime={lt}: {ep_a:?} ({} casts) and \
                             {ep_b:?} ({} casts) left together for ltime={} with different \
                             sequences",
                            seq_a.len(),
                            seq_b.len(),
                            succ_a.expect("checked is_some")
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_util::{GroupId, Rank, ViewId};

    fn view(ltime: u64, ids: &[u32]) -> ViewState {
        let members: Vec<Endpoint> = ids.iter().map(|&i| Endpoint::new(i)).collect();
        ViewState {
            group: GroupId(1),
            view_id: ViewId {
                ltime,
                coord: members[0],
            },
            members,
            rank: Rank(0),
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut c = VsyncChecker::new();
        let (a, b) = (Endpoint::new(0), Endpoint::new(1));
        for n in [a, b] {
            c.on_view(n, &view(0, &[0, 1]));
            c.on_cast_delivery(n, b"m1");
            c.on_cast_delivery(n, b"m2");
            c.on_view(n, &view(1, &[0, 1]));
            c.on_cast_delivery(n, b"m3");
        }
        assert_eq!(c.finish(), Vec::<String>::new());
    }

    #[test]
    fn split_brain_same_ltime_is_flagged() {
        let mut c = VsyncChecker::new();
        c.on_view(Endpoint::new(0), &view(3, &[0, 1]));
        c.on_view(Endpoint::new(2), &view(3, &[2, 3]));
        let v = c.finish();
        assert!(
            v.iter().any(|m| m.contains("split brain")),
            "missing split-brain violation in {v:?}"
        );
    }

    #[test]
    fn divergent_delivery_order_is_flagged() {
        let mut c = VsyncChecker::new();
        let (a, b) = (Endpoint::new(0), Endpoint::new(1));
        for n in [a, b] {
            c.on_view(n, &view(0, &[0, 1]));
        }
        c.on_cast_delivery(a, b"x");
        c.on_cast_delivery(a, b"y");
        c.on_cast_delivery(b, b"y");
        c.on_cast_delivery(b, b"x");
        let v = c.finish();
        assert!(
            v.iter().any(|m| m.contains("divergent delivery")),
            "missing divergence violation in {v:?}"
        );
    }

    #[test]
    fn co_transitioning_nodes_must_agree_exactly() {
        let mut c = VsyncChecker::new();
        let (a, b) = (Endpoint::new(0), Endpoint::new(1));
        for n in [a, b] {
            c.on_view(n, &view(0, &[0, 1]));
        }
        c.on_cast_delivery(a, b"x");
        c.on_cast_delivery(a, b"y");
        c.on_cast_delivery(b, b"x"); // prefix only, yet both move on…
        for n in [a, b] {
            c.on_view(n, &view(1, &[0, 1]));
        }
        let v = c.finish();
        assert!(
            v.iter().any(|m| m.contains("agreed delivery broken")),
            "missing agreed-delivery violation in {v:?}"
        );
        // …whereas a node that never left the view may lag as a prefix.
        let mut c = VsyncChecker::new();
        for n in [a, b] {
            c.on_view(n, &view(0, &[0, 1]));
        }
        c.on_cast_delivery(a, b"x");
        c.on_cast_delivery(a, b"y");
        c.on_cast_delivery(b, b"x");
        c.on_view(a, &view(1, &[0]));
        assert_eq!(c.finish(), Vec::<String>::new());
    }

    #[test]
    fn duplicate_delivery_is_flagged() {
        let mut c = VsyncChecker::new();
        let a = Endpoint::new(0);
        c.on_view(a, &view(0, &[0]));
        c.on_cast_delivery(a, b"once");
        c.on_cast_delivery(a, b"once");
        let v = c.finish();
        assert!(
            v.iter().any(|m| m.contains("more than once")),
            "missing duplicate violation in {v:?}"
        );
    }

    #[test]
    fn decreasing_ltime_and_foreign_view_are_flagged() {
        let mut c = VsyncChecker::new();
        let a = Endpoint::new(0);
        c.on_view(a, &view(2, &[0, 1]));
        c.on_view(a, &view(1, &[0, 1]));
        c.on_view(a, &view(3, &[1, 2]));
        let v = c.finish();
        assert!(v.iter().any(|m| m.contains("strictly increasing")));
        assert!(v.iter().any(|m| m.contains("not a member")));
    }
}
