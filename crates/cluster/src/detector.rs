//! The heartbeat failure detector.
//!
//! Pure state, no I/O and no clock: the cluster driver feeds it arrival
//! events (`heard`) and periodic sweeps (`sweep`) off the runtime timer
//! wheel. A peer silent for `miss_limit` heartbeat periods is reported
//! suspected exactly once — suspicion is *sticky* until the next view
//! change resets the detector, which is the backoff: one crashed peer
//! produces one `Suspect` into the stack, not one per sweep, no matter
//! how long the flush takes.

use ensemble_util::{Endpoint, Time};

struct PeerState {
    ep: Endpoint,
    last_heard: Time,
    suspected: bool,
}

/// Miss-count suspicion over one view's peers.
pub struct Detector {
    period_ns: u64,
    miss_limit: u32,
    peers: Vec<PeerState>,
}

impl Detector {
    /// A detector that suspects after `miss_limit` periods of silence.
    pub fn new(period_ns: u64, miss_limit: u32) -> Detector {
        Detector {
            period_ns,
            miss_limit,
            peers: Vec::new(),
        }
    }

    /// Installs a new peer set (a formation or a view change). Every
    /// peer starts fresh: credited as heard `now`, not suspected.
    pub fn reset(&mut self, peers: &[Endpoint], now: Time) {
        self.peers = peers
            .iter()
            .map(|&ep| PeerState {
                ep,
                last_heard: now,
                suspected: false,
            })
            .collect();
    }

    /// Credits a heartbeat from `ep`. Unknown peers are ignored (a
    /// stale member's heartbeats are fenced before reaching here).
    pub fn heard(&mut self, ep: Endpoint, now: Time) {
        if let Some(p) = self.peers.iter_mut().find(|p| p.ep == ep) {
            p.last_heard = now;
        }
    }

    /// Returns peers that just crossed the suspicion threshold. Each is
    /// reported once; a later `reset` (new view) starts them over.
    pub fn sweep(&mut self, now: Time) -> Vec<Endpoint> {
        let deadline = self.period_ns.saturating_mul(self.miss_limit as u64);
        let mut newly = Vec::new();
        for p in &mut self.peers {
            if !p.suspected && now.0.saturating_sub(p.last_heard.0) > deadline {
                p.suspected = true;
                newly.push(p.ep);
            }
        }
        newly
    }

    /// Whether `ep` is currently suspected.
    pub fn is_suspected(&self, ep: Endpoint) -> bool {
        self.peers.iter().any(|p| p.ep == ep && p.suspected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = 1_000; // 1 µs periods keep the arithmetic readable

    #[test]
    fn silence_is_suspected_once_after_miss_limit() {
        let mut d = Detector::new(P, 3);
        let (a, b) = (Endpoint::new(1), Endpoint::new(2));
        d.reset(&[a, b], Time(0));
        // Within the allowance: nothing.
        assert!(d.sweep(Time(3 * P)).is_empty());
        // b keeps talking, a goes silent.
        d.heard(b, Time(3 * P));
        let newly = d.sweep(Time(3 * P + 1));
        assert_eq!(newly, vec![a]);
        assert!(d.is_suspected(a));
        assert!(!d.is_suspected(b));
        // Sticky: a is not re-reported on later sweeps (the backoff).
        d.heard(b, Time(10 * P));
        assert!(d.sweep(Time(10 * P)).is_empty());
    }

    #[test]
    fn heartbeats_keep_a_peer_alive_indefinitely() {
        let mut d = Detector::new(P, 3);
        let a = Endpoint::new(1);
        d.reset(&[a], Time(0));
        for i in 1..100 {
            d.heard(a, Time(i * 2 * P));
            assert!(d.sweep(Time(i * 2 * P + P)).is_empty(), "tick {i}");
        }
    }

    #[test]
    fn reset_clears_suspicion_for_the_new_view() {
        let mut d = Detector::new(P, 2);
        let a = Endpoint::new(1);
        d.reset(&[a], Time(0));
        assert_eq!(d.sweep(Time(5 * P)), vec![a]);
        d.reset(&[a], Time(5 * P));
        assert!(!d.is_suspected(a));
        assert!(d.sweep(Time(5 * P + 1)).is_empty());
    }

    #[test]
    fn unknown_peers_are_ignored() {
        let mut d = Detector::new(P, 2);
        d.reset(&[Endpoint::new(1)], Time(0));
        d.heard(Endpoint::new(9), Time(1)); // no panic, no state
        assert!(!d.is_suspected(Endpoint::new(9)));
    }
}
