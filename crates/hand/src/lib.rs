//! The hand-optimized bypass (HAND configuration, §4.2).
//!
//! "For particular common protocol stacks, Ensemble provides carefully
//! optimized bypass code for common paths through the protocol stack.
//! These paths were created manually." This crate is that code for the
//! 4-layer stack (`top, pt2pt, mnak, bottom`, Figure 4): a hand-written
//! Rust fast path with the Transport module *integrated* (the paper
//! attributes HAND's ~25 % edge over MACH to exactly this), plus the
//! deliver-then-send optimization: after a delivery through the bypass,
//! the next send skips the CCP re-check.

#![forbid(unsafe_code)]

pub mod fastpath;

pub use fastpath::{HandBypass, HandOutput};
