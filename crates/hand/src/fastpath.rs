//! The hand-written fast path for the 4-layer stack.
//!
//! Functionally equal (under its CCP) to routing the event through
//! `top | pt2pt | mnak | bottom` plus the generic marshaler, but written
//! as straight-line Rust with the wire encoding inlined:
//!
//! * casts: `mnak` numbering + the 16-byte compressed header, in place;
//! * sends: `pt2pt` numbering with piggybacked cumulative ack;
//! * deliveries: in-sequence check, state bump, payload out;
//! * buffering (retransmission stores) is deferred off the critical path;
//! * the deliver→send optimization (§4.2): a send issued right after a
//!   bypass delivery skips the CCP check, assuming the response is
//!   bypassable too. The paper notes this assumption is not generally
//!   safe, which is why HAND "cannot be generally substituted for the
//!   original code"; we replicate both the optimization and its
//!   documented caveat.
//!
//! The wire format matches `ensemble-synth`'s compressed headers so HAND
//! and MACH peers interoperate.

use ensemble_event::Payload;
use ensemble_transport::{stack_id, CompressedHdr};

/// Wire-format case tags (shared with the synthesized bypass).
const CASE_CAST: u8 = 0;
const CASE_SEND: u8 = 1;

/// The 4-layer stack this bypass is hard-wired for.
pub const HAND_STACK: &[&str] = &["top", "pt2pt", "mnak", "bottom"];

/// Output of a fast-path invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandOutput {
    /// The CCP failed: route through the real stack.
    Fallback,
    /// Wire bytes ready to transmit (dst `None` = cast).
    Wire {
        /// Destination rank, or `None` for a cast.
        dst: Option<u16>,
        /// The marshaled bytes.
        bytes: Vec<u8>,
    },
    /// A delivery `(origin, payload)`.
    Deliver(u16, Payload),
}

/// Deferred buffering work (processed off the critical path).
#[derive(Clone, Debug)]
pub struct HandDeferred {
    /// `true` for cast traffic, `false` for sends.
    pub is_cast: bool,
    /// The sequence number assigned.
    pub seqno: u64,
    /// The retained payload.
    pub payload: Payload,
}

/// The hand-optimized 4-layer bypass.
pub struct HandBypass {
    id: u32,
    my_rank: u16,
    view_ltime: u64,
    // mnak state.
    cast_next: u64,
    cast_expected: Vec<u64>,
    // pt2pt state.
    send_next: Vec<u64>,
    recv_next: Vec<u64>,
    // The deliver→send optimization: set after a bypass delivery.
    hot: bool,
    deferred: Vec<HandDeferred>,
    /// CCP failures observed.
    pub fallbacks: u64,
    /// Sends that skipped the CCP via the deliver→send optimization.
    pub hot_sends: u64,
}

impl HandBypass {
    /// Builds the bypass for a view of `n` members at `my_rank`.
    pub fn new(n: usize, my_rank: u16) -> Self {
        HandBypass {
            // A HAND-specific marker is folded in: the hand-written
            // layout is not byte-compatible with the synthesized one, so
            // the identifiers must differ (mis-acceptance would corrupt).
            id: stack_id(HAND_STACK) ^ 0x48_41_4E_44,
            my_rank,
            view_ltime: 0,
            cast_next: 0,
            cast_expected: vec![0; n],
            send_next: vec![0; n],
            recv_next: vec![0; n],
            hot: false,
            deferred: Vec::new(),
            fallbacks: 0,
            hot_sends: 0,
        }
    }

    /// The compressed-header stack identifier.
    pub fn stack_id(&self) -> u32 {
        self.id
    }

    /// Fast-path multicast. The 4-layer cast CCP is simply "the stack is
    /// enabled" (always true here), so this never falls back.
    pub fn dn_cast(&mut self, payload: &Payload) -> HandOutput {
        let seqno = self.cast_next;
        self.cast_next += 1;
        // Transport integrated: encode straight into the packet buffer.
        let hdr = CompressedHdr::new(self.id, CASE_CAST, vec![seqno, self.view_ltime]);
        let bytes = hdr.encode(&payload.gather());
        self.deferred.push(HandDeferred {
            is_cast: true,
            seqno,
            payload: payload.clone(),
        });
        self.hot = false;
        HandOutput::Wire { dst: None, bytes }
    }

    /// Fast-path point-to-point send.
    pub fn dn_send(&mut self, dst: u16, payload: &Payload) -> HandOutput {
        if dst == self.my_rank || dst as usize >= self.send_next.len() {
            self.fallbacks += 1;
            return HandOutput::Fallback;
        }
        if self.hot {
            // Deliver→send: the CCP outcome of the delivery is assumed to
            // carry over to the response (§4.2).
            self.hot_sends += 1;
            self.hot = false;
        }
        let d = dst as usize;
        let seqno = self.send_next[d];
        self.send_next[d] += 1;
        let hdr = CompressedHdr::new(
            self.id,
            CASE_SEND,
            vec![seqno, self.recv_next[d], self.view_ltime],
        );
        let bytes = hdr.encode(&payload.gather());
        self.deferred.push(HandDeferred {
            is_cast: false,
            seqno,
            payload: payload.clone(),
        });
        HandOutput::Wire {
            dst: Some(dst),
            bytes,
        }
    }

    /// Fast-path cast receive.
    pub fn up_cast(&mut self, origin: u16, bytes: &[u8]) -> HandOutput {
        let Ok((hdr, body)) = CompressedHdr::decode(bytes) else {
            self.fallbacks += 1;
            return HandOutput::Fallback;
        };
        // CCP: right stack, right case, current view, in sequence.
        if hdr.stack_id != self.id
            || hdr.case != CASE_CAST
            || hdr.fields.len() != 2
            || hdr.fields[1] != self.view_ltime
            || origin as usize >= self.cast_expected.len()
            || hdr.fields[0] != self.cast_expected[origin as usize]
        {
            self.fallbacks += 1;
            return HandOutput::Fallback;
        }
        self.cast_expected[origin as usize] += 1;
        self.hot = true;
        HandOutput::Deliver(origin, Payload::from_slice(body))
    }

    /// Fast-path send receive.
    pub fn up_send(&mut self, origin: u16, bytes: &[u8]) -> HandOutput {
        let Ok((hdr, body)) = CompressedHdr::decode(bytes) else {
            self.fallbacks += 1;
            return HandOutput::Fallback;
        };
        if hdr.stack_id != self.id
            || hdr.case != CASE_SEND
            || hdr.fields.len() != 3
            || hdr.fields[2] != self.view_ltime
            || origin as usize >= self.recv_next.len()
            || hdr.fields[0] != self.recv_next[origin as usize]
        {
            self.fallbacks += 1;
            return HandOutput::Fallback;
        }
        let o = origin as usize;
        self.recv_next[o] += 1;
        // The piggybacked cumulative ack prunes our unacked store — that
        // store lives in the real stack; pruning is deferred work here.
        self.hot = true;
        HandOutput::Deliver(origin, Payload::from_slice(body))
    }

    /// Bench hook: the "stack" part of a cast send — sequence-number
    /// assignment only (buffering is deferred, encoding is transport).
    pub fn bench_cast_state(&mut self) -> u64 {
        let s = self.cast_next;
        self.cast_next += 1;
        s
    }

    /// Bench hook: the "stack" part of a cast receive over decoded fields.
    pub fn bench_cast_deliver(&mut self, origin: u16, seqno: u64, vl: u64) -> bool {
        let o = origin as usize;
        if vl != self.view_ltime || o >= self.cast_expected.len() || seqno != self.cast_expected[o]
        {
            return false;
        }
        self.cast_expected[o] += 1;
        self.hot = true;
        true
    }

    /// Bench hook: the "stack" part of a point-to-point send.
    pub fn bench_send_state(&mut self, dst: u16) -> (u64, u64) {
        let d = dst as usize;
        let s = self.send_next[d];
        self.send_next[d] += 1;
        (s, self.recv_next[d])
    }

    /// Bench hook: the "stack" part of a point-to-point receive.
    pub fn bench_send_deliver(&mut self, origin: u16, seqno: u64, vl: u64) -> bool {
        let o = origin as usize;
        if vl != self.view_ltime || o >= self.recv_next.len() || seqno != self.recv_next[o] {
            return false;
        }
        self.recv_next[o] += 1;
        self.hot = true;
        true
    }

    /// Pending deferred items (buffering, ack pruning).
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Drains the deferred work.
    pub fn drain_deferred(&mut self) -> Vec<HandDeferred> {
        std::mem::take(&mut self.deferred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_roundtrip() {
        let mut a = HandBypass::new(3, 0);
        let mut b = HandBypass::new(3, 1);
        let p = Payload::from_slice(b"hello");
        let HandOutput::Wire { dst, bytes } = a.dn_cast(&p) else {
            panic!("wire expected");
        };
        assert!(dst.is_none());
        assert_eq!(bytes.len(), 8 + 16 + 5, "base + 2 fields + payload");
        match b.up_cast(0, &bytes) {
            HandOutput::Deliver(o, pay) => {
                assert_eq!(o, 0);
                assert_eq!(pay, p);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn casts_in_order_only() {
        let mut a = HandBypass::new(2, 0);
        let mut b = HandBypass::new(2, 1);
        let w1 = match a.dn_cast(&Payload::from_slice(b"1")) {
            HandOutput::Wire { bytes, .. } => bytes,
            other => panic!("{other:?}"),
        };
        let w2 = match a.dn_cast(&Payload::from_slice(b"2")) {
            HandOutput::Wire { bytes, .. } => bytes,
            other => panic!("{other:?}"),
        };
        assert_eq!(b.up_cast(0, &w2), HandOutput::Fallback);
        assert!(matches!(b.up_cast(0, &w1), HandOutput::Deliver(..)));
        assert_eq!(b.fallbacks, 1);
    }

    #[test]
    fn send_roundtrip_with_seqnos() {
        let mut a = HandBypass::new(2, 0);
        let mut b = HandBypass::new(2, 1);
        for i in 0..10u8 {
            let p = Payload::from_slice(&[i]);
            let HandOutput::Wire { dst, bytes } = a.dn_send(1, &p) else {
                panic!("wire expected");
            };
            assert_eq!(dst, Some(1));
            match b.up_send(0, &bytes) {
                HandOutput::Deliver(_, pay) => assert_eq!(pay.gather(), vec![i]),
                other => panic!("{other:?} at {i}"),
            }
        }
        assert_eq!(b.fallbacks, 0);
    }

    #[test]
    fn deliver_then_send_skips_ccp() {
        let mut a = HandBypass::new(2, 0);
        let mut b = HandBypass::new(2, 1);
        let HandOutput::Wire { bytes, .. } = a.dn_send(1, &Payload::from_slice(b"req")) else {
            panic!();
        };
        b.up_send(0, &bytes);
        // The response rides the hot path.
        let before = b.hot_sends;
        b.dn_send(0, &Payload::from_slice(b"resp"));
        assert_eq!(b.hot_sends, before + 1);
    }

    #[test]
    fn self_send_falls_back() {
        let mut a = HandBypass::new(2, 0);
        assert_eq!(
            a.dn_send(0, &Payload::from_slice(b"me")),
            HandOutput::Fallback
        );
    }

    #[test]
    fn garbage_falls_back() {
        let mut b = HandBypass::new(2, 1);
        assert_eq!(b.up_cast(0, &[0, 1, 2]), HandOutput::Fallback);
        assert_eq!(b.up_send(0, &[]), HandOutput::Fallback);
    }

    #[test]
    fn wrong_view_falls_back() {
        let mut a = HandBypass::new(2, 0);
        let mut b = HandBypass::new(2, 1);
        b.view_ltime = 3;
        let HandOutput::Wire { bytes, .. } = a.dn_cast(&Payload::from_slice(b"x")) else {
            panic!();
        };
        assert_eq!(b.up_cast(0, &bytes), HandOutput::Fallback);
    }

    #[test]
    fn deferred_buffering_accumulates() {
        let mut a = HandBypass::new(2, 0);
        a.dn_cast(&Payload::from_slice(b"a"));
        a.dn_send(1, &Payload::from_slice(b"b"));
        assert_eq!(a.deferred_len(), 2);
        let work = a.drain_deferred();
        assert_eq!(work.len(), 2);
        assert!(work[0].is_cast);
        assert!(!work[1].is_cast);
        assert_eq!(a.deferred_len(), 0);
    }
}
