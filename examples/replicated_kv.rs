//! A replicated key-value store on totally ordered multicast — the
//! classic state-machine-replication pattern group communication exists
//! for (the paper's intro motivates exactly such fault-tolerant
//! applications).
//!
//! Each replica applies every `SET` in the agreed total order, so the
//! replicas converge to identical maps without any further coordination.
//!
//! ```sh
//! cargo run --example replicated_kv
//! ```

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{LayerConfig, LossyModel, STACK_10};
use ensemble_util::Duration;
use std::collections::BTreeMap;

/// A `SET key value` operation, one per cast.
fn encode(key: &str, value: u64) -> Vec<u8> {
    format!("{key}={value}").into_bytes()
}

fn apply(store: &mut BTreeMap<String, u64>, body: &[u8]) {
    let text = String::from_utf8_lossy(body);
    if let Some((k, v)) = text.split_once('=') {
        if let Ok(v) = v.parse() {
            store.insert(k.to_owned(), v);
        }
    }
}

fn main() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        LossyModel {
            latency: Duration::from_micros(60),
            jitter: Duration::from_micros(50),
            drop_p: 0.08,
            dup_p: 0.02,
        },
        7,
    )
    .expect("stack builds");

    // Conflicting writes to the same keys from different replicas: the
    // total order decides who wins, identically everywhere.
    for round in 0..8u64 {
        sim.cast(0, &encode("x", round * 10));
        sim.cast(1, &encode("x", round * 10 + 1));
        sim.cast(2, &encode("y", round));
        sim.cast(1, &encode(&format!("k{round}"), round));
        sim.run_for(Duration::from_micros(600));
    }
    sim.run_for(Duration::from_millis(150));

    // Replay each replica's delivery log into its own store.
    let mut stores: Vec<BTreeMap<String, u64>> = Vec::new();
    for r in 0..3u32 {
        let mut store = BTreeMap::new();
        for (_, body) in sim.cast_deliveries(r) {
            apply(&mut store, &body);
        }
        stores.push(store);
    }

    println!("replica 0 state:");
    for (k, v) in &stores[0] {
        println!("  {k} = {v}");
    }
    assert_eq!(stores[0], stores[1], "replica 1 diverged");
    assert_eq!(stores[0], stores[2], "replica 2 diverged");
    assert_eq!(stores[0].get("x"), Some(&71), "total order decided x");
    println!(
        "\nreplicated_kv ok: 3 replicas converged on {} keys despite loss",
        stores[0].len()
    );
}
