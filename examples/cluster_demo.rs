//! Three nodes rendezvous from one seed address, one member is killed,
//! and the survivors install the successor view.
//!
//! The default run wires the nodes over the deterministic in-process
//! loopback hub; pass `--udp` for a best-effort run over real sockets
//! on 127.0.0.1 (the group stack's retransmission absorbs loss, the
//! heartbeat miss budget absorbs jitter). Either way the demo exits
//! nonzero if the survivors fail to install the new view within ten
//! heartbeat periods — CI runs the loopback mode as a regression gate.
//!
//! Run with:
//!
//! ```text
//! cargo run --example cluster_demo            # deterministic loopback
//! cargo run --example cluster_demo -- --udp   # real sockets
//! ```

use ensemble_cluster::{ClusterConfig, ClusterEvent, ClusterNode, StateProvider};
use ensemble_runtime::{Delivery, LoopbackHub, Transport, UdpTransport};
use ensemble_util::Endpoint;
use std::time::{Duration, Instant};

const N: usize = 3;

/// Per node: its endpoint, the control-plane transport, the data-plane
/// transport.
type Planes = Vec<(Endpoint, Box<dyn Transport>, Box<dyn Transport>)>;

fn main() {
    let udp = std::env::args().any(|a| a == "--udp");
    let planes = if udp { udp_planes() } else { loopback_planes() };
    let planes = match planes {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster_demo: transport setup failed: {e}");
            std::process::exit(1);
        }
    };
    if run(planes) {
        println!("cluster_demo: OK");
    } else {
        eprintln!("cluster_demo: FAILED");
        std::process::exit(1);
    }
}

fn loopback_planes() -> Result<Planes, String> {
    let control = LoopbackHub::new(42);
    let data = LoopbackHub::new(43);
    Ok((0..N as u32)
        .map(|i| {
            let ep = Endpoint::new(i);
            (
                ep,
                Box::new(control.attach(ep)) as Box<dyn Transport>,
                Box::new(data.attach(ep)) as Box<dyn Transport>,
            )
        })
        .collect())
}

fn udp_planes() -> Result<Planes, String> {
    let eps: Vec<Endpoint> = (0..N as u32).map(Endpoint::new).collect();
    let mut control = Vec::new();
    let mut data = Vec::new();
    for &ep in &eps {
        control.push(UdpTransport::bind(ep).map_err(|e| e.to_string())?);
        data.push(UdpTransport::bind(ep).map_err(|e| e.to_string())?);
    }
    let control_addrs: Vec<_> = control
        .iter()
        .map(|t| t.local_addr().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let data_addrs: Vec<_> = data
        .iter()
        .map(|t| t.local_addr().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    for i in 0..N {
        for j in 0..N {
            if i != j {
                control[i].add_peer(eps[j], control_addrs[j]);
                data[i].add_peer(eps[j], data_addrs[j]);
            }
        }
    }
    Ok(eps
        .into_iter()
        .zip(control)
        .zip(data)
        .map(|((ep, c), d)| (ep, Box::new(c) as Box<dyn Transport>, Box::new(d) as _))
        .collect())
}

fn run(planes: Planes) -> bool {
    let cfg = ClusterConfig::new(N);
    let hb = cfg.heartbeat_period;
    let seed = planes[0].0;

    // --- Rendezvous: every node forms through the one seed address. ---
    let mut formers = Vec::new();
    for (ep, control, data) in planes {
        let cfg = cfg.clone();
        formers.push(std::thread::spawn(move || {
            let state: Option<Box<dyn StateProvider>> = if ep == seed {
                Some(Box::new(|| b"demo-state".to_vec()))
            } else {
                None
            };
            ClusterNode::form(ep, seed, cfg, control, data, state)
        }));
    }
    let mut nodes = Vec::new();
    for f in formers {
        match f.join().expect("forming thread panicked") {
            Ok(n) => nodes.push(n),
            Err(e) => {
                eprintln!("formation failed: {e}");
                return false;
            }
        }
    }
    for n in &nodes {
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut formed = false;
        while !formed && Instant::now() < deadline {
            match n.recv_timeout(Duration::from_millis(20)) {
                Some(ClusterEvent::Snapshot(s)) => println!(
                    "node {}: received {}-byte state snapshot",
                    n.endpoint().id(),
                    s.len()
                ),
                Some(ClusterEvent::Formed(vs)) => {
                    println!(
                        "node {}: formed with {} members, rank {}",
                        n.endpoint().id(),
                        vs.nmembers(),
                        vs.rank.0
                    );
                    formed = vs.nmembers() == N;
                }
                _ => {}
            }
        }
        if !formed {
            eprintln!("node {} never formed the full view", n.endpoint().id());
            return false;
        }
    }

    // --- A cast in the old view, then kill the highest-ranked member. -
    if let Err(e) = nodes[0].cast(b"before-view-change") {
        eprintln!("cast failed: {e}");
        return false;
    }
    let victim = nodes.pop().expect("three nodes formed");
    let victim_ep = victim.endpoint();
    victim.kill();
    let killed_at = Instant::now();
    println!("node {}: killed (no Leave, no flush)", victim_ep.id());

    // --- Survivors must install the successor view within 10 periods. -
    let deadline = killed_at + hb * 10;
    let mut views = Vec::new();
    let mut casts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        let vs = loop {
            if Instant::now() >= deadline {
                eprintln!(
                    "node {}: no new view within 10 heartbeat periods",
                    n.endpoint().id()
                );
                return false;
            }
            match n.recv_timeout(Duration::from_millis(20)) {
                Some(ClusterEvent::Delivery(Delivery::View(vs))) if vs.nmembers() == N - 1 => {
                    break vs;
                }
                Some(ClusterEvent::Delivery(Delivery::Cast { bytes, .. })) => {
                    casts[i].push(bytes);
                }
                _ => {}
            }
        };
        println!(
            "node {}: installed view ltime={} with {} members after {:?}",
            n.endpoint().id(),
            vs.view_id.ltime,
            vs.nmembers(),
            killed_at.elapsed()
        );
        views.push(vs);
    }
    if views[0].view_id != views[1].view_id {
        eprintln!("survivors installed different views");
        return false;
    }
    if views.iter().any(|v| v.rank_of(victim_ep).is_some()) {
        eprintln!("the killed member survived the view change");
        return false;
    }

    // --- Exactly-once delivery across the change, old cast and new. ---
    if let Err(e) = nodes[1].cast(b"after-view-change") {
        eprintln!("post-view cast failed: {e}");
        return false;
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    for (i, n) in nodes.iter().enumerate() {
        while casts[i].len() < 2 && Instant::now() < deadline {
            if let Some(ClusterEvent::Delivery(Delivery::Cast { bytes, .. })) =
                n.recv_timeout(Duration::from_millis(20))
            {
                casts[i].push(bytes);
            }
        }
        for payload in [&b"before-view-change"[..], &b"after-view-change"[..]] {
            let copies = casts[i].iter().filter(|b| &b[..] == payload).count();
            if copies != 1 {
                eprintln!(
                    "node {}: {} copies of {:?} (want exactly 1)",
                    n.endpoint().id(),
                    copies,
                    String::from_utf8_lossy(payload)
                );
                return false;
            }
        }
    }

    // --- The counters that monitoring would scrape. --------------------
    let text = nodes[0].metrics_text();
    for series in [
        "ensemble_cluster_heartbeats_total",
        "ensemble_cluster_suspicions_total",
        "ensemble_cluster_views_installed_total",
        "ensemble_view_change_ns",
    ] {
        if !text.contains(series) {
            eprintln!("metrics exposition is missing {series}");
            return false;
        }
    }
    println!(
        "survivor metrics:\n{}",
        text.lines()
            .filter(|l| l.contains("ensemble_cluster") || l.contains("view_change_ns_count"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    true
}
