//! Three nodes rendezvous from one seed address, one member is killed,
//! and the survivors install the successor view.
//!
//! The default run wires the nodes over the deterministic in-process
//! loopback hub; pass `--udp` for a best-effort run over real sockets
//! on 127.0.0.1 (the group stack's retransmission absorbs loss, the
//! heartbeat miss budget absorbs jitter). Either way the demo exits
//! nonzero if the survivors fail to install the new view within ten
//! heartbeat periods — CI runs the loopback mode as a regression gate.
//!
//! Pass `--partition` for the partition-healing episode instead: six
//! nodes form, a scripted [`PartitionScript`] splits both planes 4/2,
//! the minority stalls for lack of quorum while the majority installs
//! the shrunk primary view, the script heals, merge beacons cross, and
//! a single merged six-member view comes back. The run feeds every view
//! install and cast delivery into a [`VsyncChecker`], prints the
//! merge/stall trace events, and exits nonzero on any virtual-synchrony
//! violation — CI runs this as the chaos regression gate.
//!
//! Run with:
//!
//! ```text
//! cargo run --example cluster_demo                 # deterministic loopback
//! cargo run --example cluster_demo -- --udp        # real sockets
//! cargo run --example cluster_demo -- --partition  # split/stall/heal/merge
//! ```

use ensemble_cluster::{ClusterConfig, ClusterEvent, ClusterNode, StateProvider, VsyncChecker};
use ensemble_obs::EventKind;
use ensemble_runtime::{
    Delivery, LoopbackHub, PartitionOp, PartitionScript, Transport, UdpTransport,
};
use ensemble_util::Endpoint;
use std::time::{Duration, Instant};

const N: usize = 3;

/// Per node: its endpoint, the control-plane transport, the data-plane
/// transport.
type Planes = Vec<(Endpoint, Box<dyn Transport>, Box<dyn Transport>)>;

fn main() {
    let udp = std::env::args().any(|a| a == "--udp");
    let partition = std::env::args().any(|a| a == "--partition");
    if partition {
        if udp {
            eprintln!("cluster_demo: --partition needs the loopback hub (drop --udp)");
            std::process::exit(1);
        }
        if run_partition() {
            println!("cluster_demo: partition OK");
        } else {
            eprintln!("cluster_demo: FAILED");
            std::process::exit(1);
        }
        return;
    }
    let planes = if udp { udp_planes() } else { loopback_planes() };
    let planes = match planes {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster_demo: transport setup failed: {e}");
            std::process::exit(1);
        }
    };
    if run(planes) {
        println!("cluster_demo: OK");
    } else {
        eprintln!("cluster_demo: FAILED");
        std::process::exit(1);
    }
}

fn loopback_planes() -> Result<Planes, String> {
    let control = LoopbackHub::new(42);
    let data = LoopbackHub::new(43);
    Ok((0..N as u32)
        .map(|i| {
            let ep = Endpoint::new(i);
            (
                ep,
                Box::new(control.attach(ep)) as Box<dyn Transport>,
                Box::new(data.attach(ep)) as Box<dyn Transport>,
            )
        })
        .collect())
}

fn udp_planes() -> Result<Planes, String> {
    let eps: Vec<Endpoint> = (0..N as u32).map(Endpoint::new).collect();
    let mut control = Vec::new();
    let mut data = Vec::new();
    for &ep in &eps {
        control.push(UdpTransport::bind(ep).map_err(|e| e.to_string())?);
        data.push(UdpTransport::bind(ep).map_err(|e| e.to_string())?);
    }
    let control_addrs: Vec<_> = control
        .iter()
        .map(|t| t.local_addr().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let data_addrs: Vec<_> = data
        .iter()
        .map(|t| t.local_addr().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    for i in 0..N {
        for j in 0..N {
            if i != j {
                control[i].add_peer(eps[j], control_addrs[j]);
                data[i].add_peer(eps[j], data_addrs[j]);
            }
        }
    }
    Ok(eps
        .into_iter()
        .zip(control)
        .zip(data)
        .map(|((ep, c), d)| (ep, Box::new(c) as Box<dyn Transport>, Box::new(d) as _))
        .collect())
}

fn run(planes: Planes) -> bool {
    let cfg = ClusterConfig::new(N);
    let hb = cfg.heartbeat_period;
    let seed = planes[0].0;

    // --- Rendezvous: every node forms through the one seed address. ---
    let mut formers = Vec::new();
    for (ep, control, data) in planes {
        let cfg = cfg.clone();
        formers.push(std::thread::spawn(move || {
            let state: Option<Box<dyn StateProvider>> = if ep == seed {
                Some(Box::new(|| b"demo-state".to_vec()))
            } else {
                None
            };
            ClusterNode::form(ep, seed, cfg, control, data, state)
        }));
    }
    let mut nodes = Vec::new();
    for f in formers {
        match f.join().expect("forming thread panicked") {
            Ok(n) => nodes.push(n),
            Err(e) => {
                eprintln!("formation failed: {e}");
                return false;
            }
        }
    }
    for n in &nodes {
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut formed = false;
        while !formed && Instant::now() < deadline {
            match n.recv_timeout(Duration::from_millis(20)) {
                Some(ClusterEvent::Snapshot(s)) => println!(
                    "node {}: received {}-byte state snapshot",
                    n.endpoint().id(),
                    s.len()
                ),
                Some(ClusterEvent::Formed(vs)) => {
                    println!(
                        "node {}: formed with {} members, rank {}",
                        n.endpoint().id(),
                        vs.nmembers(),
                        vs.rank.0
                    );
                    formed = vs.nmembers() == N;
                }
                _ => {}
            }
        }
        if !formed {
            eprintln!("node {} never formed the full view", n.endpoint().id());
            return false;
        }
    }

    // --- A cast in the old view, then kill the highest-ranked member. -
    if let Err(e) = nodes[0].cast(b"before-view-change") {
        eprintln!("cast failed: {e}");
        return false;
    }
    let victim = nodes.pop().expect("three nodes formed");
    let victim_ep = victim.endpoint();
    victim.kill();
    let killed_at = Instant::now();
    println!("node {}: killed (no Leave, no flush)", victim_ep.id());

    // --- Survivors must install the successor view within 10 periods. -
    let deadline = killed_at + hb * 10;
    let mut views = Vec::new();
    let mut casts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        let vs = loop {
            if Instant::now() >= deadline {
                eprintln!(
                    "node {}: no new view within 10 heartbeat periods",
                    n.endpoint().id()
                );
                return false;
            }
            match n.recv_timeout(Duration::from_millis(20)) {
                Some(ClusterEvent::Delivery(Delivery::View(vs))) if vs.nmembers() == N - 1 => {
                    break vs;
                }
                Some(ClusterEvent::Delivery(Delivery::Cast { bytes, .. })) => {
                    casts[i].push(bytes);
                }
                _ => {}
            }
        };
        println!(
            "node {}: installed view ltime={} with {} members after {:?}",
            n.endpoint().id(),
            vs.view_id.ltime,
            vs.nmembers(),
            killed_at.elapsed()
        );
        views.push(vs);
    }
    if views[0].view_id != views[1].view_id {
        eprintln!("survivors installed different views");
        return false;
    }
    if views.iter().any(|v| v.rank_of(victim_ep).is_some()) {
        eprintln!("the killed member survived the view change");
        return false;
    }

    // --- Exactly-once delivery across the change, old cast and new. ---
    if let Err(e) = nodes[1].cast(b"after-view-change") {
        eprintln!("post-view cast failed: {e}");
        return false;
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    for (i, n) in nodes.iter().enumerate() {
        while casts[i].len() < 2 && Instant::now() < deadline {
            if let Some(ClusterEvent::Delivery(Delivery::Cast { bytes, .. })) =
                n.recv_timeout(Duration::from_millis(20))
            {
                casts[i].push(bytes);
            }
        }
        for payload in [&b"before-view-change"[..], &b"after-view-change"[..]] {
            let copies = casts[i].iter().filter(|b| &b[..] == payload).count();
            if copies != 1 {
                eprintln!(
                    "node {}: {} copies of {:?} (want exactly 1)",
                    n.endpoint().id(),
                    copies,
                    String::from_utf8_lossy(payload)
                );
                return false;
            }
        }
    }

    // --- The counters that monitoring would scrape. --------------------
    let text = nodes[0].metrics_text();
    for series in [
        "ensemble_cluster_heartbeats_total",
        "ensemble_cluster_suspicions_total",
        "ensemble_cluster_views_installed_total",
        "ensemble_view_change_ns",
    ] {
        if !text.contains(series) {
            eprintln!("metrics exposition is missing {series}");
            return false;
        }
    }
    println!(
        "survivor metrics:\n{}",
        text.lines()
            .filter(|l| l.contains("ensemble_cluster") || l.contains("view_change_ns_count"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    true
}

// --- Partition mode: split, stall, heal, merge ------------------------

const P: usize = 6;
const MAJORITY: [u32; 4] = [0, 1, 2, 3];
const MINORITY: [u32; 2] = [4, 5];

fn run_partition() -> bool {
    let control = LoopbackHub::new(4242);
    let data = LoopbackHub::new(4243);
    let cfg = ClusterConfig::new(P);
    let seed = Endpoint::new(0);

    let mut formers = Vec::new();
    for i in 0..P as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = cfg.clone();
        formers.push(std::thread::spawn(move || {
            let state: Option<Box<dyn StateProvider>> =
                (ep == seed).then(|| Box::new(|| b"demo-state".to_vec()) as Box<dyn StateProvider>);
            ClusterNode::form(ep, seed, cfg, Box::new(c), Box::new(d), state)
        }));
    }
    let mut nodes = Vec::new();
    for f in formers {
        match f.join().expect("forming thread panicked") {
            Ok(n) => nodes.push(n),
            Err(e) => {
                eprintln!("formation failed: {e}");
                return false;
            }
        }
    }

    let mut checker = VsyncChecker::new();
    let mut casts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); P];
    for n in &nodes {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if Instant::now() >= deadline {
                eprintln!("node {} never formed", n.endpoint().id());
                return false;
            }
            if let Some(ClusterEvent::Formed(vs)) = n.recv_timeout(Duration::from_millis(10)) {
                checker.on_view(n.endpoint(), &vs);
                break;
            }
        }
    }
    println!("formed: {P} nodes in one view");

    let drain = |nodes: &[ClusterNode],
                 checker: &mut VsyncChecker,
                 casts: &mut [Vec<Vec<u8>>],
                 stalled: &mut Vec<u32>| {
        for (i, n) in nodes.iter().enumerate() {
            let ep = n.endpoint();
            while let Some(ev) = n.try_recv() {
                match ev {
                    ClusterEvent::Delivery(Delivery::View(vs)) => {
                        println!(
                            "node {}: installed view ltime={} with {} members",
                            ep.id(),
                            vs.view_id.ltime,
                            vs.nmembers()
                        );
                        checker.on_view(ep, &vs);
                    }
                    ClusterEvent::Delivery(Delivery::Cast { bytes, .. }) => {
                        checker.on_cast_delivery(ep, &bytes);
                        casts[i].push(bytes);
                    }
                    ClusterEvent::MinorityPartition { live, needed } => {
                        println!(
                            "node {}: MINORITY STALL — {live} live of {needed} needed",
                            ep.id()
                        );
                        stalled.push(ep.id());
                    }
                    ClusterEvent::Snapshot(s) => {
                        println!(
                            "node {}: merge grant carried {}-byte snapshot",
                            ep.id(),
                            s.len()
                        );
                    }
                    _ => {}
                }
            }
        }
    };
    let mut stalled = Vec::new();

    // Every phase gate below polls under one deadline-bound loop.
    macro_rules! wait_for {
        ($what:expr, $cond:expr) => {{
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                drain(&nodes, &mut checker, &mut casts, &mut stalled);
                if $cond {
                    break;
                }
                if Instant::now() >= deadline {
                    eprintln!("timed out waiting for: {}", $what);
                    return false;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }};
    }

    // Pre-split traffic: everyone delivers it.
    nodes[0].cast(b"pre-split").expect("cast");
    wait_for!(
        "pre-split cast everywhere",
        casts.iter().all(|c| c.iter().any(|b| b == b"pre-split"))
    );

    // The scripted episode: split both planes 4/2 now, heal at +1.5 s of
    // hub virtual time. Same script, same seeds, same run — every time.
    let script = PartitionScript::new()
        .at(
            0,
            PartitionOp::Split(vec![MAJORITY.to_vec(), MINORITY.to_vec()]),
        )
        .at(1_500_000_000, PartitionOp::Heal);
    control.run_script(script.clone());
    data.run_script(script);
    println!("scripted: split {MAJORITY:?} | {MINORITY:?}, heal at +1.5s");

    wait_for!(
        "minority stall",
        MINORITY.iter().all(|id| stalled.contains(id))
    );
    wait_for!(
        "majority installs the shrunk primary view",
        MAJORITY.iter().all(|&id| {
            let v = nodes[id as usize].view();
            v.nmembers() == MAJORITY.len() && v.view_id.ltime > 0
        })
    );

    // Primary-only traffic: the stalled minority must never see this.
    nodes[0].cast(b"primary-only").expect("cast");
    wait_for!(
        "primary-only cast on the majority",
        MAJORITY
            .iter()
            .all(|&id| casts[id as usize].iter().any(|b| b == b"primary-only"))
    );

    wait_for!(
        "the merged six-member view everywhere",
        nodes.iter().all(|n| {
            let v = n.view();
            v.nmembers() == P && v.view_id.ltime > 1
        })
    );

    // Post-heal traffic: symmetric again.
    nodes[4].cast(b"post-heal").expect("cast");
    wait_for!(
        "post-heal cast everywhere",
        casts.iter().all(|c| c.iter().any(|b| b == b"post-heal"))
    );
    drain(&nodes, &mut checker, &mut casts, &mut stalled);

    // The healing episode, as the flight recorder saw it.
    println!("merge/stall trace events:");
    for n in &nodes {
        for ev in n.trace_events() {
            if matches!(
                ev.kind,
                EventKind::MergeBeacon | EventKind::MergeGrant | EventKind::MinorityStall
            ) {
                println!(
                    "  node {}: [{}] {:?} {:?} aux={}",
                    n.endpoint().id(),
                    ev.layer,
                    ev.kind,
                    ev.dir,
                    ev.aux
                );
            }
        }
    }

    if MINORITY
        .iter()
        .any(|&id| casts[id as usize].iter().any(|b| b == b"primary-only"))
    {
        eprintln!("minority delivered primary-only traffic");
        return false;
    }
    let violations = checker.finish();
    if !violations.is_empty() {
        eprintln!("virtual-synchrony violations:\n{}", violations.join("\n"));
        return false;
    }
    println!("vsync invariants: 0 violations across the split/heal episode");
    true
}
