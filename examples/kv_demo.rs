//! The replicated KV service end to end: a 3-replica group over seeded
//! loopback hubs, concurrent clients, one partition → stall → heal →
//! merge round underneath them, and an offline linearizability replay
//! of everything that happened.
//!
//! This supersedes the old `replicated_kv` example: instead of a
//! simulated stack applying `SET` casts, it drives the real
//! `ensemble-kv` service — commit indices, CAS verdicts, minority
//! stalls and all — and exits nonzero if the replay finds a violation.
//!
//! ```sh
//! cargo run --example kv_demo            # deterministic, loopback only
//! cargo run --example kv_demo -- --tcp   # also serve real TCP clients
//! cargo run --example kv_demo -- --crash # durable WALs + crash episode
//! ```
//!
//! `--tcp` is best-effort: a sandbox that denies loopback binds logs
//! the downgrade and continues with simulated clients only. `--crash`
//! forms the replicas durably (one fault-injecting in-memory disk
//! each) and replaces the partition round with a crash-stop episode:
//! replica 2 is killed without a WAL flush, its disk torn, and the
//! replica restarted from its own checkpoint + log tail, rejoining
//! through the merge path — the replay then also checks the recovery
//! invariants (no acked write lost, recovered commit index monotonic).

use ensemble_kv::{
    KvClient, KvConfig, KvError, KvLinearizabilityChecker, KvListener, KvOp, KvReplica, KvResult,
    MemDisk, ReplicaFront, StorageFaults, Wal,
};
use ensemble_runtime::{FaultPlan, LoopbackHub};
use ensemble_util::{DetRng, Endpoint};
use std::time::{Duration, Instant};

const REPLICAS: usize = 3;
const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 40;
const SEED: u64 = 42;

fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let until = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < until, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn next_op(rng: &mut DetRng, client: usize) -> KvOp {
    let key = format!("key-{}", rng.below(16)).into_bytes();
    let val = format!("c{client}-{}", rng.next_u64() & 0xffff).into_bytes();
    match rng.below(100) {
        0..=49 => KvOp::Set(key, val),
        50..=74 => KvOp::Get(key),
        75..=89 => KvOp::Cas {
            key,
            expect: if rng.chance(0.5) {
                None
            } else {
                Some(val.clone())
            },
            new: val,
        },
        _ => KvOp::Del(key),
    }
}

fn run_client(client: usize, fronts: &[ReplicaFront]) -> Vec<(KvOp, KvResult)> {
    let mut rng = DetRng::new(SEED ^ (0x9E3779B97F4A7C15u64.wrapping_mul(client as u64 + 1)));
    let mut cur = client % fronts.len();
    let mut responses = Vec::with_capacity(OPS_PER_CLIENT);
    for _ in 0..OPS_PER_CLIENT {
        let op = next_op(&mut rng, client);
        let mut result = KvResult::Err(KvError::Closed);
        for _attempt in 0..fronts.len() * 2 {
            result = fronts[cur].submit_timeout(&op, Duration::from_secs(2));
            match result {
                KvResult::Err(KvError::NotServing) | KvResult::Err(KvError::Timeout) => {
                    cur = (cur + 1) % fronts.len();
                }
                _ => break,
            }
        }
        responses.push((op, result));
    }
    responses
}

fn main() {
    let tcp = std::env::args().any(|a| a == "--tcp");
    let crash = std::env::args().any(|a| a == "--crash");
    let control = LoopbackHub::with_faults(SEED, FaultPlan::default());
    let data = LoopbackHub::with_faults(SEED ^ 0x5EED, FaultPlan::default());
    let seed_ep = Endpoint::new(0);

    // One fault-injecting in-memory disk per replica (`--crash` only):
    // a reincarnated replica reopens the disk its predecessor died on.
    let disks: Vec<MemDisk> = (0..REPLICAS as u64)
        .map(|i| MemDisk::new(SEED ^ i, StorageFaults::lossy()))
        .collect();

    println!(
        "kv_demo: forming a {REPLICAS}-replica group{}",
        if crash { " (durable WALs)" } else { "" }
    );
    let mut formers = Vec::new();
    for i in 0..REPLICAS as u32 {
        let ep = Endpoint::new(i);
        let (c, d) = (control.attach(ep), data.attach(ep));
        let cfg = KvConfig::new(REPLICAS);
        let disk = crash.then(|| disks[i as usize].clone());
        formers.push(std::thread::spawn(move || match disk {
            Some(disk) => {
                let wal = Wal::on_mem_disk(&disk, &format!("r{i}"), cfg.wal);
                KvReplica::form_durable(ep, seed_ep, cfg, Box::new(c), Box::new(d), wal)
                    .map(|(r, _)| r)
            }
            None => KvReplica::form(ep, seed_ep, cfg, Box::new(c), Box::new(d)),
        }));
    }
    let mut replicas: Vec<KvReplica> = formers
        .into_iter()
        .map(|f| f.join().unwrap().expect("replica rendezvous completes"))
        .collect();
    let fronts: Vec<ReplicaFront> = replicas.iter().map(|r| r.front()).collect();

    // Best-effort TCP plane.
    let mut listeners = Vec::new();
    if tcp {
        for r in &replicas {
            match KvListener::start(r.front(), "127.0.0.1:0", (&KvConfig::new(REPLICAS)).into()) {
                Ok(l) => listeners.push(l),
                Err(e) => {
                    println!("kv_demo: TCP bind denied ({e}); loopback clients only");
                    listeners.clear();
                    break;
                }
            }
        }
    }

    // Phase 1: concurrent load against the healthy group.
    println!("kv_demo: {CLIENTS} clients, {OPS_PER_CLIENT} ops each");
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let fronts = fronts.clone();
        clients.push(std::thread::spawn(move || run_client(c, &fronts)));
    }
    let mut responses: Vec<(KvOp, KvResult)> = Vec::new();
    for c in clients {
        responses.extend(c.join().expect("client joins"));
    }

    // A real TCP client alongside, if the plane came up.
    if !listeners.is_empty() {
        let addrs = listeners.iter().map(|l| l.addr()).collect();
        let mut kv = KvClient::new(addrs, Duration::from_secs(2));
        let ops: Vec<KvOp> = (0..16)
            .map(|i| KvOp::Set(format!("tcp-{i}").into_bytes(), b"over-the-wire".to_vec()))
            .collect();
        match kv.pipeline(&ops) {
            Ok(results) => {
                println!("kv_demo: TCP client pipelined {} ops", results.len());
                responses.extend(ops.into_iter().zip(results));
            }
            Err(e) => println!("kv_demo: TCP client failed ({e:?}); continuing"),
        }
    }

    // Phase 2a (`--crash`): crash-stop replica 2 mid-run — no WAL
    // flush, disk torn like a power cut — then restart it from its own
    // checkpoint + log tail on a reincarnated endpoint.
    let mut archived: Vec<(u32, Vec<(u64, KvOp)>)> = Vec::new();
    let mut recovery: Option<(u32, u64)> = None;
    if crash {
        println!("kv_demo: crash-stopping replica 2 (no WAL flush, disk torn)");
        let victim = replicas.remove(2);
        let old_ep = victim.endpoint();
        archived.push((old_ep.id(), victim.commit_log()));
        victim.kill();
        disks[2].crash();
        wait_for(
            "survivors evict the dead incarnation",
            Duration::from_secs(30),
            || {
                replicas.iter().all(|r| {
                    r.view().is_some_and(|v| {
                        v.nmembers() == REPLICAS - 1 && !v.members.contains(&old_ep)
                    })
                })
            },
        );
        let reborn = old_ep.reincarnate();
        let (c, d) = (control.attach(reborn), data.attach(reborn));
        let mut cfg = KvConfig::new(REPLICAS);
        cfg.cluster.join_deadline = Duration::from_secs(30);
        cfg.cluster.form_timeout = Duration::from_secs(30);
        let wal = Wal::on_mem_disk(&disks[2], "r2", cfg.wal);
        let (replica, report) =
            KvReplica::form_durable(reborn, seed_ep, cfg, Box::new(c), Box::new(d), wal)
                .expect("restarted replica rejoins");
        println!(
            "kv_demo: replica 2 recovered to commit index {} ({} torn tail record(s)) and rejoined",
            report.recovered_ci(),
            report.torn_tail_records
        );
        recovery = Some((old_ep.id(), report.recovered_ci()));
        wait_for("reborn replica serves", Duration::from_secs(30), || {
            replica.is_serving()
        });
        let op = KvOp::Set(b"after-recovery".to_vec(), b"reborn-commits".to_vec());
        let r = replica.submit_timeout(&op, Duration::from_secs(5));
        assert!(
            !matches!(r, KvResult::Err(_)),
            "the reborn replica serves writes again"
        );
        responses.push((op, r));
        replicas.insert(2, replica);
    } else {
        // Phase 2b: partition the minority away, watch it stall, heal,
        // and watch the group merge back to full strength.
        println!("kv_demo: splitting replica 2 into a minority");
        let groups = vec![vec![0u32, 1], vec![2u32]];
        control.split(groups.clone());
        data.split(groups);
        wait_for("minority stall", Duration::from_secs(20), || {
            !fronts[2].is_serving()
        });
        println!("kv_demo: minority stalled (refusing writes, not diverging)");
        let op = KvOp::Set(b"during-partition".to_vec(), b"majority-commits".to_vec());
        let r = fronts[0].submit_timeout(&op, Duration::from_secs(2));
        assert!(
            !matches!(r, KvResult::Err(_)),
            "the majority keeps committing through the partition"
        );
        responses.push((op, r));
        control.heal();
        data.heal();
        wait_for("post-heal serving", Duration::from_secs(30), || {
            fronts.iter().all(|f| f.is_serving())
        });
        println!("kv_demo: healed — all replicas serving again");
    }

    // Quiesce, then replay the whole run through the checker.
    let mut last: Vec<usize> = Vec::new();
    wait_for("commit logs quiesce", Duration::from_secs(30), || {
        let now: Vec<usize> = replicas.iter().map(|r| r.commit_log().len()).collect();
        let stable = now == last;
        last = now;
        std::thread::sleep(Duration::from_millis(50));
        stable
    });
    let mut checker = KvLinearizabilityChecker::new();
    for (id, log) in archived {
        for (ci, op) in log {
            checker.on_commit(id, ci, op);
        }
    }
    if let Some((id, ci)) = recovery {
        checker.on_recovery(id, ci);
    }
    for r in &replicas {
        let id = r.endpoint().id();
        for (ci, op) in r.commit_log() {
            checker.on_commit(id, ci, op);
        }
    }
    let committed = responses
        .into_iter()
        .filter(|(_, r)| !matches!(r, KvResult::Err(_)));
    let mut completions = 0usize;
    for (op, r) in committed {
        checker.on_response(op, r);
        completions += 1;
    }
    let commits = checker.commits();
    let violations = checker.finish();

    for l in listeners {
        l.shutdown();
    }
    println!("kv_demo: {commits} commits across replicas, {completions} client completions");
    if violations.is_empty() {
        println!("kv_demo: linearizability check PASSED");
    } else {
        eprintln!("kv_demo: linearizability VIOLATED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
