//! Quickstart: a three-member group exchanging totally ordered multicasts
//! over a simulated lossy Ethernet.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{check_stack, LayerConfig, LossyModel, STACK_10};
use ensemble_util::Duration;

fn main() {
    // 1. Pick a stack. STACK_10 is the paper's 10-layer configuration:
    //    virtually synchronous reliable multicast with total order, flow
    //    control, and fragmentation.
    println!("stack: {STACK_10:?}");

    // 2. Check the configuration (§3.2's Above/Below interface check).
    check_stack(STACK_10).expect("configuration is sound");
    println!("configuration check: ok");

    // 3. Run three members over a hostile network: 10 % loss, 2 %
    //    duplication, reordering jitter.
    let model = LossyModel {
        latency: Duration::from_micros(80),
        jitter: Duration::from_micros(40),
        drop_p: 0.10,
        dup_p: 0.02,
    };
    let mut sim = Simulation::new(3, STACK_10, EngineKind::Imp, LayerConfig::fast(), model, 42)
        .expect("stack builds");

    // 4. Everybody talks.
    for i in 0..5u8 {
        sim.cast(0, format!("from-0 #{i}").as_bytes());
        sim.cast(1, format!("from-1 #{i}").as_bytes());
        sim.cast(2, format!("from-2 #{i}").as_bytes());
        sim.run_for(Duration::from_micros(500));
    }
    // Let retransmissions settle.
    sim.run_for(Duration::from_millis(100));

    // 5. Every member delivered the same messages in the same total order.
    let reference = sim.cast_deliveries(0);
    println!("\ndeliveries at every member (identical order):");
    for (origin, body) in &reference {
        println!("  ep{origin}: {}", String::from_utf8_lossy(body));
    }
    for r in 1..3 {
        assert_eq!(sim.cast_deliveries(r), reference, "agreement at rank {r}");
    }
    let stats = sim.net_stats();
    println!(
        "\nnetwork: {} packets sent, {} copies dropped, {} duplicated — all masked",
        stats.sent, stats.dropped, stats.duplicated
    );
    println!(
        "quickstart ok: {} messages, total order preserved",
        reference.len()
    );
}
