//! Failure detection and virtual synchrony: a member is partitioned
//! away, the group detects it, flushes, and installs a new view — then
//! keeps working.
//!
//! ```sh
//! cargo run --example partition_recovery
//! ```

use ensemble::sim::{EngineKind, Simulation, TraceEvent};
use ensemble::{LayerConfig, PartitionModel, PerfectModel, STACK_VSYNC};
use ensemble_util::{Duration, Endpoint};

/// Prints one span line per layer seen in `events`: when the layer was
/// first and last active (virtual µs) and what it did.
fn print_layer_spans(title: &str, events: &[TraceEvent]) {
    println!("{title} ({} trace events):", events.len());
    let mut layers: Vec<&str> = Vec::new();
    for e in events {
        if !layers.contains(&e.layer) {
            layers.push(e.layer);
        }
    }
    for layer in layers {
        let of: Vec<&TraceEvent> = events.iter().filter(|e| e.layer == layer).collect();
        let first = of.first().expect("non-empty").t_ns;
        let last = of.last().expect("non-empty").t_ns;
        let mut kinds: Vec<(&str, usize)> = Vec::new();
        for e in &of {
            match kinds.iter_mut().find(|(k, _)| *k == e.kind.name()) {
                Some((_, n)) => *n += 1,
                None => kinds.push((e.kind.name(), 1)),
            }
        }
        let detail: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}×{n}")).collect();
        println!(
            "  {layer:<10} [{:>9.1}us .. {:>9.1}us]  {}",
            first as f64 / 1e3,
            last as f64 / 1e3,
            detail.join(" ")
        );
    }
}

fn main() {
    // A failed assertion on a worker thread must fail the process, not
    // just print: CI runs this example and trusts the exit code.
    let default_panic = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default_panic(info);
        std::process::exit(101);
    }));

    let mut sim = Simulation::new(
        4,
        STACK_VSYNC,
        EngineKind::Imp,
        LayerConfig::fast(),
        PartitionModel::new(PerfectModel::ethernet()),
        11,
    )
    .expect("stack builds");
    sim.enable_obs(1 << 16);

    // Normal operation: traffic flows, the failure detector pings away.
    for i in 0..6u8 {
        sim.cast(1, &[i]);
    }
    sim.run_for(Duration::from_millis(20));
    println!(
        "view 0: {:?} — {} messages delivered at ep0",
        sim.current_view(0).members,
        sim.cast_deliveries(0).len()
    );

    // Drop the steady-state trace so the next drain isolates the
    // failure-detection and membership-change window.
    sim.drain_trace();

    // The network partitions ep3 away.
    println!("\n*** partitioning ep3 away ***");
    sim.model_mut().isolate(&[Endpoint::new(3)]);
    sim.run_for(Duration::from_millis(400));

    let recovery = sim.drain_trace();
    print_layer_spans("\nper-layer activity during suspect/elect", &recovery);
    assert!(
        recovery.iter().any(|e| e.kind.name() == "view_install"),
        "the recovery window must install a view"
    );

    let v = sim.current_view(0).clone();
    println!(
        "view {}: {:?} (coordinator {})",
        v.view_id.ltime, v.members, v.view_id.coord
    );
    assert!(
        !v.members.contains(&Endpoint::new(3)),
        "ep3 was excluded by the membership protocol"
    );
    // All survivors installed the same view and agreed on the closing
    // view's messages (virtual synchrony).
    for r in [1u32, 2] {
        assert_eq!(sim.current_view(r).view_id, v.view_id, "rank {r} view");
        assert_eq!(
            sim.cast_deliveries(r),
            sim.cast_deliveries(0),
            "rank {r} deliveries"
        );
    }
    println!("survivors agree on membership and on every delivered message");

    // Life goes on in the new view.
    for i in 0..4u8 {
        sim.cast(0, &[100 + i]);
    }
    sim.run_for(Duration::from_millis(50));
    let after: Vec<Vec<u8>> = sim
        .cast_deliveries(1)
        .into_iter()
        .filter(|(_, b)| b[0] >= 100)
        .map(|(_, b)| b)
        .collect();
    println!(
        "\nnew-view traffic: ep1 delivered {} post-partition messages",
        after.len()
    );
    assert_eq!(after.len(), 4);
    println!("partition_recovery ok");
}
