//! The push-button optimization pipeline (§4.1), end to end:
//! given only layer names, derive per-layer optimization theorems,
//! compose them through the stack, generate the compressed header layout
//! and executable bypass code, check the theorems, and measure the win.
//!
//! ```sh
//! cargo run --release --example synthesize [layer ...]
//! ```

use ensemble::Payload;
use ensemble_ir::models::{layer_defs, model, Case, ModelCtx};
use ensemble_synth::{check_layer_theorem, optimize_layer, synthesize, BypassOutput, StackBypass};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stack: Vec<&str> = if args.is_empty() {
        vec![
            "partial_appl",
            "total",
            "local",
            "frag",
            "collect",
            "pt2ptw",
            "mflow",
            "pt2pt",
            "mnak",
            "bottom",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let ctx = ModelCtx::new(3, 0);
    let defs = layer_defs();

    println!("=== static phase: per-layer optimization theorems ===\n");
    for name in &stack {
        let Some(m) = model(name, &ctx) else {
            eprintln!("no IR model for layer {name:?}");
            std::process::exit(1);
        };
        let th = optimize_layer(&m, Case::UpCast, &defs, true);
        println!("{th}");
        // The "proof": exhaustive-enough checking of the theorem.
        check_layer_theorem(&m, &th, &defs, 200, 1)
            .unwrap_or_else(|e| panic!("theorem refuted!\n{e}"));
    }
    println!("all layer theorems checked on 200 random CCP-satisfying inputs each\n");

    println!("=== dynamic phase: composing the stack ===\n");
    let t0 = Instant::now();
    let synth = synthesize(&stack, &ctx).expect("synthesis succeeds");
    let elapsed = t0.elapsed();
    for case in Case::ALL {
        if let Some(th) = synth.cases.get(&case) {
            println!("{th}");
        }
    }
    println!("cast header:  {}", synth.cast_template);
    println!("send header:  {}", synth.send_template);
    println!(
        "\nsynthesis took {elapsed:?} (the paper reports < 30 s in Nuprl; \
         the mechanism is the same, the prover is simpler)"
    );

    println!("\n=== generated code ===\n");
    let mut sender = StackBypass::compile(&synth, 0).expect("codegen");
    for case in Case::ALL {
        let (ccp, wire, update) = sender.program_sizes(case);
        println!(
            "{case:?}: CCP {ccp} ops, wire {wire} ops, state update {update} ops, \
             {}-byte compressed header",
            sender.wire_bytes(case)
        );
    }

    println!("\n=== executing the bypass ===\n");
    let synth1 = synthesize(&stack, &ModelCtx::new(3, 1)).expect("receiver synthesis");
    let mut receiver = StackBypass::compile(&synth1, 1).expect("receiver codegen");
    let payload = Payload::from_slice(b"hello, fast path");
    match sender.dn_cast(&payload) {
        BypassOutput::Done { wire, deliver } => {
            let (_, bytes) = wire.expect("wire bytes");
            println!(
                "sent {} payload bytes in a {}-byte packet (self-delivery: {})",
                payload.len(),
                bytes.len(),
                deliver.is_some()
            );
            match receiver.up_cast(0, &bytes) {
                BypassOutput::Done { deliver, .. } => {
                    let (origin, p) = deliver.expect("delivery");
                    println!(
                        "receiver delivered {:?} from rank {origin} via the bypass",
                        String::from_utf8_lossy(&p.gather())
                    );
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    println!(
        "\ndeferred non-critical work queued: {} items (drained off the critical path)",
        sender.deferred_len()
    );
    sender.drain_deferred();
    println!("synthesize ok");
}
