//! The runtime is reachable through the `ensemble` facade and behaves
//! like the simulator for the same workload: same stack constants, same
//! engine kinds, same delivery guarantees — one in virtual time, one in
//! wall-clock time over the loopback hub.

use ensemble::runtime::{Delivery, FaultPlan, LoopbackHub, Node, RuntimeConfig};
use ensemble::sim::{EngineKind, Simulation};
use ensemble::{LayerConfig, PerfectModel, ViewState, STACK_4};
use ensemble_util::Rank;
use std::time::{Duration, Instant};

const N: u32 = 200;

fn runtime_deliveries(kind: EngineKind) -> Vec<(u32, Vec<u8>)> {
    let hub = LoopbackHub::with_faults(42, FaultPlan::lossy(0.01, 0.0, 0.02));
    let vs = ViewState::initial(2);
    let mut node = Node::new(RuntimeConfig::default());
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            kind,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            kind,
            LayerConfig::fast(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");
    let receiver = std::thread::spawn(move || {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while got.len() < N as usize && Instant::now() < deadline {
            if let Some(Delivery::Cast { origin, bytes }) =
                b.recv_timeout(Duration::from_millis(100))
            {
                if bytes.len() == 4 {
                    got.push((origin, bytes));
                }
            }
        }
        got
    });
    for i in 0..N {
        a.cast(&i.to_le_bytes()).expect("cast");
    }
    hub.set_plan(FaultPlan::clean());
    let got = loop {
        if receiver.is_finished() {
            break receiver.join().expect("receiver");
        }
        a.cast(&[0xFF; 8]).expect("flush");
        std::thread::sleep(Duration::from_millis(10));
    };
    node.shutdown();
    got
}

/// The runtime delivers the same (origin, payload) stream the simulator
/// delivers for an identical workload.
#[test]
fn facade_runtime_agrees_with_simulator() {
    let mut sim = Simulation::new(
        2,
        STACK_4,
        EngineKind::Imp,
        LayerConfig::fast(),
        PerfectModel::via(),
        42,
    )
    .unwrap();
    for i in 0..N {
        sim.cast(0, &i.to_le_bytes());
    }
    sim.run_to_quiescence();
    let sim_got = sim.cast_deliveries(1);

    let rt_got = runtime_deliveries(EngineKind::Imp);
    assert_eq!(rt_got, sim_got, "runtime and simulator deliveries differ");
}

/// Both engine kinds produce the same delivery stream under the runtime.
#[test]
fn facade_engines_agree_under_runtime() {
    assert_eq!(
        runtime_deliveries(EngineKind::Imp),
        runtime_deliveries(EngineKind::Func)
    );
}

/// The synthesized bypass is installable through the facade and carries
/// clean traffic.
#[test]
fn facade_bypass_hits_on_clean_loopback() {
    let hub = LoopbackHub::new(7);
    let vs = ViewState::initial(2);
    let mut node = Node::new(RuntimeConfig::default());
    let a = node
        .join(
            STACK_4,
            vs.for_rank(Rank(0)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(hub.attach(vs.members[0])),
        )
        .expect("join a");
    let b = node
        .join(
            STACK_4,
            vs.for_rank(Rank(1)),
            EngineKind::Imp,
            LayerConfig::default(),
            Box::new(hub.attach(vs.members[1])),
        )
        .expect("join b");
    a.install_bypass().expect("bypass a");
    b.install_bypass().expect("bypass b");
    let receiver = std::thread::spawn(move || {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while got.len() < 100 && Instant::now() < deadline {
            if let Some(Delivery::Cast { bytes, .. }) = b.recv_timeout(Duration::from_millis(100)) {
                got.push(bytes[0]);
            }
        }
        got
    });
    for i in 0..100u8 {
        a.cast(&[i]).expect("cast");
    }
    let got = receiver.join().expect("receiver");
    assert_eq!(got, (0..100).collect::<Vec<u8>>());
    assert!(
        node.stats().totals().bypass_hits >= 100,
        "fast path must carry the clean traffic"
    );
    node.shutdown();
}
