//! Membership and virtual synchrony: failure detection, flush, view
//! change, exclusion.

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{LayerConfig, PartitionModel, PerfectModel, STACK_VSYNC};
use ensemble_util::{Duration, Endpoint};

fn vsync_sim(n: usize, seed: u64) -> Simulation<PartitionModel<PerfectModel>> {
    Simulation::new(
        n,
        STACK_VSYNC,
        EngineKind::Imp,
        LayerConfig::fast(),
        PartitionModel::new(PerfectModel::via()),
        seed,
    )
    .unwrap()
}

#[test]
fn explicit_suspicion_drives_view_change() {
    let mut sim = vsync_sim(3, 1);
    // The application at the coordinator declares member 2 failed.
    sim.kill(2);
    sim.suspect(0, &[2]);
    sim.run_for(Duration::from_millis(100));
    for r in [0u32, 1] {
        let v = sim.current_view(r);
        assert_eq!(v.nmembers(), 2, "rank {r}: {v:?}");
        assert!(!v.members.contains(&Endpoint::new(2)), "rank {r}");
        assert!(sim.views(r).len() >= 2, "rank {r} installed a new view");
    }
    assert!(sim.blocks(0) > 0, "the group was blocked during the flush");
}

#[test]
fn crashed_member_is_detected_and_excluded() {
    let mut sim = vsync_sim(3, 2);
    // Let the failure detector exchange a few rounds first.
    sim.run_for(Duration::from_millis(30));
    sim.kill(1);
    // The suspect layer needs `suspect_misses` quiet intervals.
    sim.run_for(Duration::from_millis(400));
    for r in [0u32, 2] {
        let v = sim.current_view(r);
        assert_eq!(v.nmembers(), 2, "rank {r}: {:?}", v.members);
        assert!(!v.members.contains(&Endpoint::new(1)), "rank {r}");
    }
}

#[test]
fn coordinator_crash_fails_over() {
    let mut sim = vsync_sim(3, 3);
    sim.run_for(Duration::from_millis(30));
    sim.kill(0);
    sim.run_for(Duration::from_millis(500));
    for r in [1u32, 2] {
        let v = sim.current_view(r);
        assert!(
            !v.members.contains(&Endpoint::new(0)),
            "rank {r} dropped the dead coordinator: {:?}",
            v.members
        );
        assert_eq!(v.nmembers(), 2, "rank {r}");
        // Rank 1 becomes the new coordinator.
        assert_eq!(v.view_id.coord, Endpoint::new(1), "rank {r}");
    }
}

#[test]
fn virtual_synchrony_messages_agree_at_view_change() {
    let mut sim = vsync_sim(3, 4);
    // Traffic before the failure.
    for i in 0..10u8 {
        sim.cast(1, &[i]);
    }
    sim.run_for(Duration::from_millis(20));
    sim.kill(2);
    sim.suspect(0, &[2]);
    sim.run_for(Duration::from_millis(200));
    // Survivors installed the same new view and delivered the same casts
    // before it (virtual synchrony's agreement on the closing view).
    let d0 = sim.cast_deliveries(0);
    let d1 = sim.cast_deliveries(1);
    assert_eq!(d0, d1, "same deliveries at the view boundary");
    assert_eq!(d0.len(), 10);
    assert_eq!(
        sim.current_view(0).view_id,
        sim.current_view(1).view_id,
        "same view installed"
    );
}

#[test]
fn group_continues_after_view_change() {
    let mut sim = vsync_sim(3, 5);
    sim.kill(2);
    sim.suspect(0, &[2]);
    sim.run_for(Duration::from_millis(200));
    assert_eq!(sim.current_view(0).nmembers(), 2);
    // New-view traffic flows (with fresh stacks).
    for i in 0..5u8 {
        sim.cast(0, &[50 + i]);
    }
    sim.run_for(Duration::from_millis(100));
    let d1 = sim.cast_deliveries(1);
    let new_view_msgs: Vec<&(u32, Vec<u8>)> = d1.iter().filter(|(_, b)| b[0] >= 50).collect();
    assert_eq!(new_view_msgs.len(), 5, "traffic in the new view: {d1:?}");
}

#[test]
fn partition_isolates_and_detector_notices() {
    let mut sim = vsync_sim(3, 6);
    sim.run_for(Duration::from_millis(30));
    sim.model_mut().isolate(&[Endpoint::new(2)]);
    sim.run_for(Duration::from_millis(500));
    // The majority side removed the isolated member.
    let v = sim.current_view(0);
    assert!(
        !v.members.contains(&Endpoint::new(2)),
        "partitioned member excluded: {:?}",
        v.members
    );
}

#[test]
fn graceful_leave_is_excluded_like_a_crash() {
    let mut sim = vsync_sim(3, 7);
    sim.run_for(Duration::from_millis(30));
    sim.leave(2);
    assert!(sim.has_exited(2), "the leaver's stack tore down");
    sim.run_for(Duration::from_millis(400));
    for r in [0u32, 1] {
        let v = sim.current_view(r);
        assert!(
            !v.members.contains(&Endpoint::new(2)),
            "rank {r}: {:?}",
            v.members
        );
    }
}

#[test]
fn repeated_failures_shrink_the_view_stepwise() {
    let mut sim = vsync_sim(4, 8);
    sim.run_for(Duration::from_millis(30));
    sim.kill(3);
    sim.suspect(0, &[3]);
    sim.run_for(Duration::from_millis(250));
    assert_eq!(sim.current_view(0).nmembers(), 3);
    sim.kill(2);
    sim.suspect(0, &[2]);
    sim.run_for(Duration::from_millis(250));
    let v = sim.current_view(0).clone();
    assert_eq!(v.nmembers(), 2, "{:?}", v.members);
    assert_eq!(sim.current_view(1).view_id, v.view_id);
    // The survivors still talk.
    sim.cast(0, b"still here");
    sim.run_for(Duration::from_millis(50));
    assert!(sim
        .cast_deliveries(1)
        .iter()
        .any(|(_, b)| b == b"still here"));
}

#[test]
fn vsync_agreement_under_loss_and_crash() {
    // Fault injection: traffic over a genuinely lossy fabric, then a
    // crash; the survivors must agree on the delivered prefix and the
    // new view.
    for seed in [1u64, 2, 3, 4, 5] {
        let mut sim = Simulation::new(
            3,
            STACK_VSYNC,
            EngineKind::Imp,
            LayerConfig::fast(),
            PartitionModel::new(ensemble::LossyModel {
                latency: Duration::from_micros(15),
                jitter: Duration::from_micros(30),
                drop_p: 0.08,
                dup_p: 0.02,
            }),
            seed,
        )
        .unwrap();
        for i in 0..8u8 {
            sim.cast(1, &[i]);
            sim.cast(0, &[100 + i]);
            sim.run_for(Duration::from_micros(400));
        }
        sim.run_for(Duration::from_millis(20));
        sim.kill(2);
        sim.suspect(0, &[2]);
        sim.run_for(Duration::from_millis(400));
        assert_eq!(
            sim.cast_deliveries(0),
            sim.cast_deliveries(1),
            "seed {seed}: virtual synchrony agreement"
        );
        assert_eq!(sim.current_view(0).nmembers(), 2, "seed {seed}");
        assert_eq!(
            sim.current_view(0).view_id,
            sim.current_view(1).view_id,
            "seed {seed}"
        );
    }
}

#[test]
fn protocol_stack_switches_at_the_view_boundary() {
    // The paper's ref. [25]: Ensemble supports switching protocol stacks
    // on the fly; the view change is the safe switching point. Here the
    // group upgrades to a signing stack when the failed member leaves.
    const SIGNED_VSYNC: &[&str] = &[
        "top",
        "partial_appl",
        "total",
        "local",
        "gmp",
        "sync",
        "elect",
        "suspect",
        "sign",
        "frag",
        "collect",
        "pt2ptw",
        "mflow",
        "pt2pt",
        "mnak",
        "bottom",
    ];
    let mut sim = vsync_sim(3, 9);
    sim.run_for(Duration::from_millis(20));
    sim.cast(1, b"before");
    sim.run_for(Duration::from_millis(10));
    sim.switch_stack_on_next_view(SIGNED_VSYNC);
    sim.kill(2);
    sim.suspect(0, &[2]);
    sim.run_for(Duration::from_millis(300));
    assert_eq!(sim.current_view(0).nmembers(), 2);
    assert_eq!(sim.stack_names(), SIGNED_VSYNC, "switched at the boundary");
    // Traffic flows through the new (signed) stack.
    sim.cast(0, b"after-switch");
    sim.run_for(Duration::from_millis(50));
    let d1 = sim.cast_deliveries(1);
    assert!(
        d1.iter().any(|(_, b)| b == b"after-switch"),
        "new-stack traffic delivered: {d1:?}"
    );
}
