//! The paper's central guarantee, checked end-to-end: the synthesized
//! bypass (MACH) is semantically equal to the original stack on
//! common-case traffic, and falls back safely otherwise. Also checks
//! HAND/MACH interoperability on the shared compressed wire format.

use ensemble::{HandBypass, HandOutput, LayerConfig, Payload, StackBypass, ViewState};
use ensemble_ir::models::{Case, ModelCtx};
use ensemble_layers::{make_stack, STACK_10};
use ensemble_stack::{Engine, FuncEngine};
use ensemble_synth::{synthesize, BypassOutput};
use ensemble_util::{DetRng, Rank, Time};

fn native_engine(rank: u16, n: usize) -> FuncEngine {
    let vs = ViewState::initial(n).for_rank(Rank(rank));
    let mut e = FuncEngine::new(make_stack(STACK_10, &vs, &LayerConfig::default()).unwrap());
    e.init(Time::ZERO);
    e
}

fn model_ctx(n: i64, rank: i64) -> ModelCtx {
    ModelCtx::new(n, rank)
}

/// Differential test: a MACH sender + MACH receiver deliver exactly what
/// a native sender + native receiver deliver, for a random common-case
/// cast workload.
#[test]
fn mach_and_native_deliver_identically() {
    let n = 3usize;
    let mut rng = DetRng::new(0xD1FF);

    // Native pair.
    let mut nat_sender = native_engine(0, n);
    let mut nat_recv = native_engine(1, n);
    // MACH pair.
    let s0 = synthesize(STACK_10, &model_ctx(n as i64, 0)).unwrap();
    let s1 = synthesize(STACK_10, &model_ctx(n as i64, 1)).unwrap();
    let mut mach_sender = StackBypass::compile(&s0, 0).unwrap();
    let mut mach_recv = StackBypass::compile(&s1, 1).unwrap();

    let mut native_deliveries: Vec<Vec<u8>> = Vec::new();
    let mut mach_deliveries: Vec<Vec<u8>> = Vec::new();
    let mut mach_self: Vec<Vec<u8>> = Vec::new();
    let mut native_self: Vec<Vec<u8>> = Vec::new();

    // Stay below the gossip/flow boundaries (the common case).
    for _ in 0..15 {
        let len = 1 + rng.below(32) as usize;
        let mut body = vec![0u8; len];
        rng.fill_bytes(&mut body);
        let payload = Payload::from_slice(&body);

        // Native path.
        let out = nat_sender.inject_dn(
            Time::ZERO,
            ensemble::DnEvent::Cast(ensemble::Msg::data(payload.clone())),
        );
        for ev in &out.app {
            native_self.push(ev.msg().unwrap().payload().gather());
        }
        let wire_msg = out.wire[0].msg().unwrap().clone();
        let b = nat_recv.inject_up(
            Time::ZERO,
            ensemble::UpEvent::Cast {
                origin: Rank(0),
                msg: wire_msg,
            },
        );
        for ev in &b.app {
            if let ensemble::UpEvent::Cast { msg, .. } = ev {
                native_deliveries.push(msg.payload().gather());
            }
        }

        // MACH path.
        match mach_sender.dn_cast(&payload) {
            BypassOutput::Done { wire, deliver } => {
                if let Some((_, p)) = deliver {
                    mach_self.push(p.gather());
                }
                let (_, bytes) = wire.expect("wire");
                match mach_recv.up_cast(0, &bytes) {
                    BypassOutput::Done { deliver, .. } => {
                        mach_deliveries.push(deliver.expect("delivery").1.gather());
                    }
                    other => panic!("receiver fallback: {other:?}"),
                }
            }
            other => panic!("sender fallback: {other:?}"),
        }
    }
    assert_eq!(native_deliveries, mach_deliveries);
    assert_eq!(native_self, mach_self, "self-deliveries agree too");
}

/// The bypass defers buffering; the native stack buffers inline. After a
/// burst, the deferred queue must cover exactly the buffered casts.
#[test]
fn deferred_work_matches_sent_casts() {
    let s0 = synthesize(STACK_10, &model_ctx(3, 0)).unwrap();
    let mut mach = StackBypass::compile(&s0, 0).unwrap();
    let mut sent = 0;
    for i in 0..10u8 {
        if let BypassOutput::Done { .. } = mach.dn_cast(&Payload::from_slice(&[i])) {
            sent += 1;
        }
    }
    // Each cast defers at least the mnak store-own item.
    assert!(mach.deferred_len() >= sent);
    assert!(mach.drain_deferred() >= sent);
}

/// The CCP guard is safe: whatever MACH rejects, the native stack
/// handles (here: out-of-order arrival, which the native stack buffers
/// and NAKs while MACH falls back).
#[test]
fn fallback_inputs_are_handled_by_the_native_stack() {
    let s0 = synthesize(STACK_10, &model_ctx(2, 0)).unwrap();
    let mut mach_sender = StackBypass::compile(&s0, 0).unwrap();
    let s1 = synthesize(STACK_10, &model_ctx(2, 1)).unwrap();
    let mut mach_recv = StackBypass::compile(&s1, 1).unwrap();
    let mut nat_recv = native_engine(1, 2);
    let mut nat_sender = native_engine(0, 2);

    // Produce two wire messages (both native and MACH encodings).
    let mk =
        |sender: &mut StackBypass, body: &[u8]| match sender.dn_cast(&Payload::from_slice(body)) {
            BypassOutput::Done { wire, .. } => wire.unwrap().1,
            other => panic!("{other:?}"),
        };
    let _m1 = mk(&mut mach_sender, b"first");
    let m2 = mk(&mut mach_sender, b"second");

    // MACH rejects the out-of-order delivery…
    assert!(matches!(mach_recv.up_cast(0, &m2), BypassOutput::Fallback));

    // …and the native stack, receiving equivalent traffic out of order,
    // recovers by buffering + NAK.
    let n1 = nat_sender.inject_dn(
        Time::ZERO,
        ensemble::DnEvent::Cast(ensemble::Msg::data(Payload::from_slice(b"first"))),
    );
    let n2 = nat_sender.inject_dn(
        Time::ZERO,
        ensemble::DnEvent::Cast(ensemble::Msg::data(Payload::from_slice(b"second"))),
    );
    let w1 = n1.wire[0].msg().unwrap().clone();
    let w2 = n2.wire[0].msg().unwrap().clone();
    let b = nat_recv.inject_up(
        Time::ZERO,
        ensemble::UpEvent::Cast {
            origin: Rank(0),
            msg: w2,
        },
    );
    assert!(b.app.is_empty(), "buffered");
    assert!(!b.wire.is_empty(), "NAK sent");
    let b = nat_recv.inject_up(
        Time::ZERO,
        ensemble::UpEvent::Cast {
            origin: Rank(0),
            msg: w1,
        },
    );
    assert_eq!(b.app.len(), 2, "both delivered in order after the gap fill");
}

/// HAND and MACH use distinct wire identifiers (their layouts differ —
/// MACH folds the view stamp into constants, HAND carries it), so each
/// must *safely reject* the other's bytes rather than mis-deliver.
#[test]
fn hand_and_mach_reject_each_other_safely() {
    const STACK_4: &[&str] = &["top", "pt2pt", "mnak", "bottom"];
    let s = synthesize(STACK_4, &model_ctx(2, 0)).unwrap();
    let mut mach_a = StackBypass::compile(&s, 0).unwrap();
    let s1 = synthesize(STACK_4, &model_ctx(2, 1)).unwrap();
    let mut mach_b = StackBypass::compile(&s1, 1).unwrap();
    let mut hand_a = HandBypass::new(2, 0);
    let mut hand_b = HandBypass::new(2, 1);

    let payload = Payload::from_slice(b"cross");
    // MACH → MACH works.
    let mach_bytes = match mach_a.dn_send(1, &payload) {
        BypassOutput::Done { wire, .. } => wire.unwrap().1,
        other => panic!("{other:?}"),
    };
    // HAND → HAND works.
    let hand_bytes = match hand_a.dn_send(1, &payload) {
        HandOutput::Wire { bytes, .. } => bytes,
        other => panic!("{other:?}"),
    };
    // Cross-feeding falls back instead of mis-delivering.
    assert!(matches!(
        hand_b.up_send(0, &mach_bytes),
        HandOutput::Fallback
    ));
    assert!(matches!(
        mach_b.up_send(0, &hand_bytes),
        BypassOutput::Fallback
    ));
    // And the intended receivers still accept.
    assert!(matches!(
        mach_b.up_send(0, &mach_bytes),
        BypassOutput::Done { .. }
    ));
    assert!(matches!(
        hand_b.up_send(0, &hand_bytes),
        HandOutput::Deliver(..)
    ));
}

/// A bypass synthesized for a later view rejects traffic from the old
/// view: the folded constants differ, so the wire identifiers differ.
#[test]
fn stale_view_bypass_traffic_is_rejected() {
    const STACK_4: &[&str] = &["top", "pt2pt", "mnak", "bottom"];
    let old = synthesize(STACK_4, &model_ctx(2, 0)).unwrap();
    let mut old_sender = StackBypass::compile(&old, 0).unwrap();
    let mut new_ctx = model_ctx(2, 1);
    new_ctx.view_ltime = 1;
    let newer = synthesize(STACK_4, &new_ctx).unwrap();
    let mut new_recv = StackBypass::compile(&newer, 1).unwrap();
    let bytes = match old_sender.dn_send(1, &Payload::from_slice(b"stale")) {
        BypassOutput::Done { wire, .. } => wire.unwrap().1,
        other => panic!("{other:?}"),
    };
    assert!(matches!(
        new_recv.up_send(0, &bytes),
        BypassOutput::Fallback
    ));
}

/// Every layer theorem used by the 10-layer synthesis is checked against
/// its model — the "proof obligations" of the pipeline, discharged.
#[test]
fn all_theorems_hold_on_randomized_inputs() {
    use ensemble_ir::models::{layer_defs, model};
    use ensemble_synth::{check_layer_theorem, optimize_layer};
    let defs = layer_defs();
    let ctx = model_ctx(3, 0);
    for name in STACK_10 {
        let m = model(name, &ctx).unwrap();
        for case in Case::ALL {
            let th = optimize_layer(&m, case, &defs, true);
            check_layer_theorem(&m, &th, &defs, 100, 0x7E57).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
