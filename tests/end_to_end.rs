//! End-to-end integration: full stacks over hostile networks.
//!
//! The reliable layers must mask exactly the faults the `LossyNetwork`
//! specification permits: loss, duplication, reordering.

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{LayerConfig, LossyModel, PerfectModel, STACK_10, STACK_4};
use ensemble_util::Duration;

fn lossy(drop_p: f64) -> LossyModel {
    LossyModel {
        latency: Duration::from_micros(40),
        jitter: Duration::from_micros(60),
        drop_p,
        dup_p: 0.05,
    }
}

#[test]
fn casts_survive_loss_duplication_and_reordering() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        lossy(0.15),
        0xE2E,
    )
    .unwrap();
    for i in 0..30u8 {
        sim.cast(1, &[i]);
        sim.run_for(Duration::from_micros(200));
    }
    // Give the NAK/retransmission machinery time to repair.
    sim.run_for(Duration::from_millis(200));
    for r in [0u32, 2] {
        let got = sim.cast_deliveries(r);
        let expected: Vec<(u32, Vec<u8>)> = (0..30u8).map(|i| (1, vec![i])).collect();
        assert_eq!(got, expected, "rank {r}: gap-free FIFO despite faults");
    }
}

#[test]
fn sends_survive_loss() {
    let mut sim = Simulation::new(
        2,
        STACK_4,
        EngineKind::Imp,
        LayerConfig::fast(),
        lossy(0.25),
        0x5E17D,
    )
    .unwrap();
    for i in 0..20u8 {
        sim.send(0, 1, &[i]);
        sim.run_for(Duration::from_micros(150));
    }
    sim.run_for(Duration::from_millis(100));
    let got = sim.send_deliveries(1);
    let expected: Vec<(u32, Vec<u8>)> = (0..20u8).map(|i| (0, vec![i])).collect();
    assert_eq!(got, expected);
}

#[test]
fn bidirectional_send_traffic() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Func,
        LayerConfig::fast(),
        lossy(0.1),
        99,
    )
    .unwrap();
    for i in 0..10u8 {
        sim.send(0, 1, &[i]);
        sim.send(1, 0, &[100 + i]);
        sim.run_for(Duration::from_micros(300));
    }
    sim.run_for(Duration::from_millis(100));
    assert_eq!(sim.send_deliveries(1).len(), 10);
    assert_eq!(sim.send_deliveries(0).len(), 10);
}

#[test]
fn stability_vector_advances_with_traffic() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        PerfectModel::via(),
        4,
    )
    .unwrap();
    // Enough casts to cross the collect gossip threshold several times.
    for i in 0..64u8 {
        sim.cast(0, &[i]);
    }
    sim.run_to_quiescence();
    let st = sim.stability(1);
    assert!(!st.is_empty(), "stability reported to the application");
    assert!(st[0] > 0, "rank 0's casts became stable: {st:?}");
}

#[test]
fn flow_control_does_not_deadlock_under_burst() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        PerfectModel::via(),
        5,
    )
    .unwrap();
    // Burst far beyond the mflow window (64).
    for i in 0..300u16 {
        sim.cast(0, &i.to_le_bytes());
    }
    sim.run_to_quiescence();
    for r in 0..3 {
        assert_eq!(
            sim.cast_deliveries(r).len(),
            300,
            "rank {r} delivered the whole burst"
        );
    }
}

#[test]
fn secure_stack_roundtrips() {
    // A custom stack with integrity and privacy layers spliced in.
    const SECURE: &[&str] = &[
        "top",
        "partial_appl",
        "total",
        "local",
        "sign",
        "encrypt",
        "frag",
        "collect",
        "pt2ptw",
        "mflow",
        "pt2pt",
        "mnak",
        "bottom",
    ];
    ensemble::check_stack(SECURE).unwrap();
    let mut sim = Simulation::new(
        2,
        SECURE,
        EngineKind::Imp,
        LayerConfig::fast(),
        lossy(0.1),
        77,
    )
    .unwrap();
    for i in 0..10u8 {
        sim.cast(0, &[i, i, i]);
        sim.run_for(Duration::from_micros(300));
    }
    sim.run_for(Duration::from_millis(100));
    let got = sim.cast_deliveries(1);
    assert_eq!(got.len(), 10);
    for (i, (o, body)) in got.iter().enumerate() {
        assert_eq!(*o, 0);
        assert_eq!(body, &vec![i as u8; 3], "decrypted payload intact");
    }
}

#[test]
fn timer_driven_stability_variant_works() {
    // The library offers two stability protocols (the paper's library has
    // several): `collect` (delivery-count triggered) and `stable`
    // (timer-gossip). Swap one for the other and the stack still works.
    const STABLE_STACK: &[&str] = &[
        "top",
        "partial_appl",
        "total",
        "local",
        "frag",
        "stable",
        "pt2ptw",
        "mflow",
        "pt2pt",
        "mnak",
        "bottom",
    ];
    ensemble::check_stack(STABLE_STACK).unwrap();
    let mut sim = Simulation::new(
        3,
        STABLE_STACK,
        EngineKind::Imp,
        LayerConfig::fast(),
        lossy(0.08),
        21,
    )
    .unwrap();
    for i in 0..20u8 {
        sim.cast(1, &[i]);
        sim.run_for(Duration::from_micros(250));
    }
    // Timer-driven gossip needs wall-clock (virtual) time to fire.
    sim.run_for(Duration::from_millis(100));
    for r in [0u32, 2] {
        let got = sim.cast_deliveries(r);
        assert_eq!(got.len(), 20, "rank {r}");
    }
    let st = sim.stability(0);
    assert!(
        st.iter().any(|&v| v > 0),
        "timer gossip advanced stability: {st:?}"
    );
}

#[test]
fn engines_agree_under_identical_fault_schedules() {
    let run = |kind: EngineKind| {
        let mut sim =
            Simulation::new(3, STACK_10, kind, LayerConfig::fast(), lossy(0.12), 0xA9).unwrap();
        for i in 0..15u8 {
            sim.cast(2, &[i]);
            sim.run_for(Duration::from_micros(250));
        }
        sim.run_for(Duration::from_millis(150));
        (sim.cast_deliveries(0), sim.cast_deliveries(1))
    };
    // Same seed → same drop schedule → identical outcomes, regardless of
    // engine ("the configurations must be equivalent", §4.2).
    assert_eq!(run(EngineKind::Imp), run(EngineKind::Func));
}
