//! Total-order agreement across the real stacks, including under faults
//! and with property-based workloads.

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{LayerConfig, LossyModel, PerfectModel, STACK_10};
use ensemble_ioa::props::total_order_agreement;
use ensemble_util::Duration;

fn agreement_holds(sim: &Simulation<impl ensemble::net::LinkModel>, n: u32) {
    let per: Vec<Vec<(u32, Vec<u8>)>> = (0..n).map(|r| sim.cast_deliveries(r)).collect();
    assert!(
        total_order_agreement(&per),
        "delivery sequences disagree: {per:?}"
    );
}

#[test]
fn concurrent_senders_agree() {
    let mut sim = Simulation::new(
        4,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        PerfectModel::ethernet(),
        1,
    )
    .unwrap();
    // All four members cast interleaved.
    for round in 0..10u8 {
        for sender in 0..4u8 {
            sim.cast(sender as u32, &[sender * 60 + round]);
        }
        sim.run_for(Duration::from_micros(120));
    }
    sim.run_to_quiescence();
    agreement_holds(&sim, 4);
    // And everyone delivered everything.
    for r in 0..4 {
        assert_eq!(sim.cast_deliveries(r).len(), 40, "rank {r}");
    }
}

#[test]
fn agreement_survives_loss() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        LossyModel {
            latency: Duration::from_micros(30),
            jitter: Duration::from_micros(80),
            drop_p: 0.2,
            dup_p: 0.05,
        },
        0xBADBEEF,
    )
    .unwrap();
    for i in 0..12u8 {
        sim.cast(1, &[i]);
        sim.cast(2, &[100 + i]);
        sim.run_for(Duration::from_micros(400));
    }
    sim.run_for(Duration::from_millis(300));
    agreement_holds(&sim, 3);
    assert_eq!(sim.cast_deliveries(0).len(), 24, "all repaired");
}

#[test]
fn nonsequencer_casts_are_ordered_by_the_sequencer() {
    let mut sim = Simulation::new(
        2,
        STACK_10,
        EngineKind::Func,
        LayerConfig::fast(),
        PerfectModel::via(),
        3,
    )
    .unwrap();
    // Only the non-sequencer casts.
    for i in 0..8u8 {
        sim.cast(1, &[i]);
    }
    sim.run_to_quiescence();
    let expected: Vec<(u32, Vec<u8>)> = (0..8u8).map(|i| (1, vec![i])).collect();
    assert_eq!(sim.cast_deliveries(0), expected);
    assert_eq!(sim.cast_deliveries(1), expected, "sender included");
}

/// Deterministic randomized sweep standing in for the proptest version
/// below: random interleavings of casters, payloads, and pauses always
/// agree. Driven by [`ensemble_util::DetRng`] so it needs no external
/// crates and reproduces bit-for-bit.
#[test]
fn random_workloads_agree_det() {
    let mut meta = ensemble_util::DetRng::new(0x0007_07A1);
    for case in 0..12u64 {
        let mut rng = meta.fork();
        let nops = rng.range(1, 39) as usize;
        let ops: Vec<(u32, usize)> = (0..nops)
            .map(|_| (rng.below(3) as u32, rng.range(1, 23) as usize))
            .collect();
        let seed = rng.below(1000);
        let mut sim = Simulation::new(
            3,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            PerfectModel::via(),
            seed,
        )
        .unwrap();
        let mut sent = 0usize;
        for (sender, len) in &ops {
            sim.cast(*sender, &vec![*sender as u8; *len]);
            sent += 1;
            if sent.is_multiple_of(5) {
                sim.run_for(Duration::from_micros(50));
            }
        }
        sim.run_to_quiescence();
        let per: Vec<Vec<(u32, Vec<u8>)>> = (0..3).map(|r| sim.cast_deliveries(r)).collect();
        assert!(total_order_agreement(&per), "case {case}");
        for (r, d) in per.iter().enumerate() {
            assert_eq!(d.len(), ops.len(), "case {case}: rank {r} delivered all");
        }
    }
}

/// Deterministic randomized sweep: under loss, whatever prefix is
/// delivered agrees.
#[test]
fn lossy_random_workloads_agree_det() {
    let mut meta = ensemble_util::DetRng::new(0x0007_07A2);
    for case in 0..8u64 {
        let mut rng = meta.fork();
        let nmsgs = rng.range(1, 19) as usize;
        let drop = rng.below(30) as f64 / 100.0;
        let seed = rng.below(500);
        let mut sim = Simulation::new(
            3,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            LossyModel {
                latency: Duration::from_micros(20),
                jitter: Duration::from_micros(40),
                drop_p: drop,
                dup_p: 0.02,
            },
            seed,
        )
        .unwrap();
        for i in 0..nmsgs {
            sim.cast((i % 3) as u32, &[i as u8]);
            sim.run_for(Duration::from_micros(200));
        }
        sim.run_for(Duration::from_millis(100));
        let per: Vec<Vec<(u32, Vec<u8>)>> = (0..3).map(|r| sim.cast_deliveries(r)).collect();
        assert!(total_order_agreement(&per), "case {case}");
    }
}

// The original proptest property tests, kept behind a feature because the
// default build must resolve with no crates.io access. To run them, re-add
// `proptest = "1"` as a dev-dependency of `ensemble` and pass
// `--features proptests`.
#[cfg(feature = "proptests")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of casters, payloads, and pauses always agree.
    #[test]
    fn random_workloads_agree(
        ops in prop::collection::vec((0u32..3, 1usize..24), 1..40),
        seed in 0u64..1000,
    ) {
        let mut sim = Simulation::new(
            3,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            PerfectModel::via(),
            seed,
        )
        .unwrap();
        let mut sent = 0usize;
        for (sender, len) in &ops {
            sim.cast(*sender, &vec![*sender as u8; *len]);
            sent += 1;
            if sent.is_multiple_of(5) {
                sim.run_for(Duration::from_micros(50));
            }
        }
        sim.run_to_quiescence();
        let per: Vec<Vec<(u32, Vec<u8>)>> =
            (0..3).map(|r| sim.cast_deliveries(r)).collect();
        prop_assert!(total_order_agreement(&per));
        for (r, d) in per.iter().enumerate() {
            prop_assert_eq!(d.len(), ops.len(), "rank {} delivered all", r);
        }
    }

    /// Under loss, whatever prefix is delivered agrees.
    #[test]
    fn lossy_random_workloads_agree(
        nmsgs in 1usize..20,
        drop in 0u32..30,
        seed in 0u64..500,
    ) {
        let mut sim = Simulation::new(
            3,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            LossyModel {
                latency: Duration::from_micros(20),
                jitter: Duration::from_micros(40),
                drop_p: drop as f64 / 100.0,
                dup_p: 0.02,
            },
            seed,
        )
        .unwrap();
        for i in 0..nmsgs {
            sim.cast((i % 3) as u32, &[i as u8]);
            sim.run_for(Duration::from_micros(200));
        }
        sim.run_for(Duration::from_millis(100));
        let per: Vec<Vec<(u32, Vec<u8>)>> =
            (0..3).map(|r| sim.cast_deliveries(r)).collect();
        prop_assert!(total_order_agreement(&per));
    }
    }
}
