//! Cross-crate verification: the IOA properties checked on real stack
//! executions, and configuration checking on selected stacks.
//!
//! §3 of the paper separates *specification* (IOA) from *implementation*
//! (OCaml, here the Rust layers). This suite ties the two: trace
//! predicates defined for the abstract automata are applied to executions
//! of the actual protocol stacks over faulty networks.

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{check_stack, select_stack, LayerConfig, LossyModel, Property, STACK_10};
use ensemble_ioa::props::{is_prefix, total_order_agreement};
use ensemble_ioa::protocol::{FifoProtocol, TotalProtocol};
use ensemble_ioa::specs::{FifoNetwork, TotalOrderSpec};
use ensemble_ioa::{check_refinement, RefineError, RefineOptions, Value};
use ensemble_util::Duration;

fn msgs() -> Vec<Value> {
    vec![Value::sym("a"), Value::sym("b")]
}

/// The headline §3.1 check, at a larger bound than the unit tests.
#[test]
fn sliding_window_refines_fifo_network_deeply() {
    let imp = FifoProtocol::new(msgs(), 3);
    let spec = FifoNetwork::new(vec![1], msgs(), 3);
    let opts = RefineOptions {
        max_depth: 30,
        max_nodes: 400_000,
        ..RefineOptions::default()
    };
    let stats = check_refinement(&imp, &spec, opts).unwrap_or_else(|e| panic!("{e}"));
    // The bounded model is exhausted (max_sends = 3): ~1k product nodes,
    // every one of them a checked simulation step.
    assert!(stats.nodes > 500, "{stats:?}");
}

#[test]
fn buggy_total_protocol_counterexample_is_minimal_shaped() {
    let imp = TotalProtocol::new_buggy(2, msgs(), 2);
    let spec = TotalOrderSpec::new(2, msgs(), 2);
    match check_refinement(&imp, &spec, RefineOptions::default()) {
        Err(RefineError::Violation { trace }) => {
            // Cast(1,m); Deliver(1,m) eagerly; then the sequencer's own
            // traffic exposes the disagreement. BFS yields a shortest
            // counterexample, which must involve both processes.
            let text = format!("{trace:?}");
            assert!(text.contains("Deliver"), "{text}");
            assert!(trace.len() >= 3, "{text}");
        }
        other => panic!("expected violation, got {other:?}"),
    }
}

/// Every stack the property-driven selector produces passes the
/// Above/Below interface check (§3.2's configuration hardening).
#[test]
fn all_selected_stacks_type_check() {
    use Property::*;
    let singles = [
        ReliableCast,
        ReliableSend,
        Fifo,
        TotalOrder,
        LocalDelivery,
        BigMessages,
        CastFlowControl,
        SendFlowControl,
        Stability,
        FailureDetection,
        Membership,
        VirtualSynchrony,
        Integrity,
        Privacy,
    ];
    for p in singles {
        let s = select_stack(&[p]);
        check_stack(&s).unwrap_or_else(|e| panic!("{p:?} → {s:?}: {e}"));
    }
    // And all pairs.
    for a in singles {
        for b in singles {
            let s = select_stack(&[a, b]);
            check_stack(&s).unwrap_or_else(|e| panic!("{a:?}+{b:?} → {s:?}: {e}"));
        }
    }
}

/// The FIFO trace property, checked on the real 10-layer stack under
/// loss: per-origin delivered sequences must be prefixes of the cast
/// sequences.
#[test]
fn real_stack_executions_satisfy_fifo_property() {
    for seed in 0..5u64 {
        let mut sim = Simulation::new(
            3,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            LossyModel {
                latency: Duration::from_micros(25),
                jitter: Duration::from_micros(50),
                drop_p: 0.15,
                dup_p: 0.05,
            },
            seed,
        )
        .unwrap();
        let mut sent: Vec<Vec<u8>> = Vec::new();
        for i in 0..20u8 {
            sim.cast(1, &[i]);
            sent.push(vec![i]);
            sim.run_for(Duration::from_micros(150));
        }
        sim.run_for(Duration::from_millis(50));
        for r in [0u32, 2] {
            let delivered: Vec<Vec<u8>> =
                sim.cast_deliveries(r).into_iter().map(|(_, b)| b).collect();
            assert!(
                is_prefix(&delivered, &sent),
                "seed {seed} rank {r}: {delivered:?}"
            );
        }
    }
}

/// Agreement checked against the same predicate the IOA models use.
#[test]
fn real_stack_executions_satisfy_agreement_property() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Func,
        LayerConfig::fast(),
        LossyModel {
            latency: Duration::from_micros(25),
            jitter: Duration::from_micros(70),
            drop_p: 0.1,
            dup_p: 0.03,
        },
        0xA6EE,
    )
    .unwrap();
    for i in 0..10u8 {
        sim.cast(0, &[i]);
        sim.cast(2, &[200 + i]);
        sim.run_for(Duration::from_micros(300));
    }
    sim.run_for(Duration::from_millis(120));
    let per: Vec<Vec<(u32, Vec<u8>)>> = (0..3).map(|r| sim.cast_deliveries(r)).collect();
    assert!(total_order_agreement(&per), "{per:?}");
}
