//! Arbitrary-size messages through fragmentation, over faults.

use ensemble::sim::{EngineKind, Simulation};
use ensemble::{LayerConfig, LossyModel, PerfectModel, STACK_10};
use ensemble_util::{DetRng, Duration};

#[test]
fn large_cast_reassembles() {
    let mut sim = Simulation::new(
        3,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        PerfectModel::ethernet(),
        2,
    )
    .unwrap();
    let body: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
    sim.cast(0, &body);
    sim.run_to_quiescence();
    for r in 0..3 {
        let d = sim.cast_deliveries(r);
        assert_eq!(d.len(), 1, "rank {r}");
        assert_eq!(d[0].1, body, "rank {r} got the bytes back");
    }
}

#[test]
fn large_send_reassembles_under_loss() {
    let mut sim = Simulation::new(
        2,
        STACK_10,
        EngineKind::Imp,
        LayerConfig::fast(),
        LossyModel {
            latency: Duration::from_micros(20),
            jitter: Duration::from_micros(30),
            drop_p: 0.1,
            dup_p: 0.02,
        },
        0xF4A6,
    )
    .unwrap();
    let mut rng = DetRng::new(1);
    let mut body = vec![0u8; 6_000];
    rng.fill_bytes(&mut body);
    sim.send(0, 1, &body);
    sim.run_for(Duration::from_millis(200));
    let d = sim.send_deliveries(1);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].1, body);
}

#[test]
fn mixed_sizes_keep_order() {
    let mut sim = Simulation::new(
        2,
        STACK_10,
        EngineKind::Func,
        LayerConfig::fast(),
        PerfectModel::via(),
        5,
    )
    .unwrap();
    let sizes = [1usize, 2000, 4, 1400, 1401, 3000, 10];
    for (i, &s) in sizes.iter().enumerate() {
        sim.cast(0, &vec![i as u8; s]);
    }
    sim.run_to_quiescence();
    let d = sim.cast_deliveries(1);
    assert_eq!(d.len(), sizes.len());
    for (i, (_, body)) in d.iter().enumerate() {
        assert_eq!(body.len(), sizes[i], "message {i} size");
        assert!(body.iter().all(|&b| b == i as u8), "message {i} content");
    }
}

/// Deterministic randomized sweep standing in for the proptest version
/// below: random payload sizes straddling the fragment boundary
/// round-trip intact and in order.
#[test]
fn random_sizes_roundtrip_det() {
    let mut meta = DetRng::new(0xF4A6_0001);
    for case in 0..10u64 {
        let mut rng = meta.fork();
        let n = rng.range(1, 9) as usize;
        let sizes: Vec<usize> = (0..n).map(|_| rng.range(1, 3_999) as usize).collect();
        let seed = rng.below(300);
        let mut sim = Simulation::new(
            2,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            PerfectModel::via(),
            seed,
        )
        .unwrap();
        for (i, &s) in sizes.iter().enumerate() {
            sim.cast(0, &vec![(i % 251) as u8; s]);
        }
        sim.run_to_quiescence();
        let d = sim.cast_deliveries(1);
        assert_eq!(d.len(), sizes.len(), "case {case}");
        for (i, (_, body)) in d.iter().enumerate() {
            assert_eq!(body.len(), sizes[i], "case {case}, message {i}");
        }
    }
}

// The original proptest property test, kept behind a feature because the
// default build must resolve with no crates.io access. To run it, re-add
// `proptest = "1"` as a dev-dependency of `ensemble` and pass
// `--features proptests`.
#[cfg(feature = "proptests")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random payload sizes straddling the fragment boundary round-trip
    /// intact and in order.
    #[test]
    fn random_sizes_roundtrip(
        sizes in prop::collection::vec(1usize..4_000, 1..10),
        seed in 0u64..300,
    ) {
        let mut sim = Simulation::new(
            2,
            STACK_10,
            EngineKind::Imp,
            LayerConfig::fast(),
            PerfectModel::via(),
            seed,
        )
        .unwrap();
        for (i, &s) in sizes.iter().enumerate() {
            sim.cast(0, &vec![(i % 251) as u8; s]);
        }
        sim.run_to_quiescence();
        let d = sim.cast_deliveries(1);
        prop_assert_eq!(d.len(), sizes.len());
        for (i, (_, body)) in d.iter().enumerate() {
            prop_assert_eq!(body.len(), sizes[i]);
        }
    }
    }
}
